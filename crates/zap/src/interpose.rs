//! The syscall interposition layer — Zap's "thin layer between applications
//! and the OS".
//!
//! Every syscall from a pod process passes through [`ZapState`]'s
//! [`SyscallHook`] implementation, which:
//!
//! * exposes only **virtual pids** (`getpid`, `kill`, `waitpid`, `spawn`);
//! * confines sockets to the pod's VIF address by rewriting `bind` and
//!   implicitly binding before `connect` (§4.2);
//! * virtualizes the network-hardware view: `SIOCGIFHWADDR` returns the
//!   pod's (possibly fake) MAC and `SIOCGIFADDR` its VIF IP (§4.2);
//! * transparently delivers restore-time **alternate receive buffer** data
//!   through `recv`/`read` until the buffers drain, after which the
//!   interception deactivates (§4.1);
//! * records which shared-memory and semaphore keys the pod touches, so a
//!   checkpoint knows exactly which kernel objects belong to the pod.

use std::collections::BTreeMap;

use simnet::addr::SockAddr;
use simos::kernel::Kernel;
use simos::proc::Pid;
use simos::syscall::{ioctl, nr, HookDecision, SyscallHook};
use simos::Errno;

use crate::pod::{Pod, PodId};

/// The shared Zap state: all pods on one node.
///
/// This is the object installed as the kernel's syscall hook; the
/// [`crate::Zap`] manager holds another handle to it.
#[derive(Debug, Default)]
pub struct ZapState {
    /// Pods by id.
    pub pods: BTreeMap<PodId, Pod>,
    /// Which pod owns each real pid.
    pub pid_owner: BTreeMap<Pid, PodId>,
    /// Next pod id.
    pub next_pod: u64,
}

impl ZapState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pod owning `pid`, if any.
    pub fn pod_of_pid(&self, pid: Pid) -> Option<PodId> {
        self.pid_owner.get(&pid).copied()
    }

    fn pod_mut_of_pid(&mut self, pid: Pid) -> Option<&mut Pod> {
        let id = self.pid_owner.get(&pid).copied()?;
        self.pods.get_mut(&id)
    }
}

impl SyscallHook for ZapState {
    fn on_syscall(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        num: u64,
        args: [u64; 5],
    ) -> HookDecision {
        let Some(pod_id) = self.pod_of_pid(pid) else {
            return HookDecision::Pass; // not a pod process
        };
        match num {
            nr::GETPID => {
                let pod = self.pods.get(&pod_id).expect("owner exists");
                HookDecision::Done(pod.vpid_of(pid).unwrap_or(0) as u64)
            }
            nr::KILL => {
                let pod = self.pods.get(&pod_id).expect("owner exists");
                match pod.pid_of(args[0] as u32) {
                    Some(real) => {
                        let mut a = args;
                        a[0] = real as u64;
                        HookDecision::PassArgs(a)
                    }
                    None => HookDecision::Done(Errno::Srch.to_ret()),
                }
            }
            nr::WAITPID => {
                let pod = self.pods.get(&pod_id).expect("owner exists");
                match pod.pid_of(args[0] as u32) {
                    Some(real) => {
                        let mut a = args;
                        a[0] = real as u64;
                        HookDecision::PassArgs(a)
                    }
                    None => HookDecision::Done(Errno::Child.to_ret()),
                }
            }
            nr::SPAWN => {
                // Service the spawn ourselves so the guest receives a
                // virtual pid and the child joins the pod.
                match kernel.spawn_thread(pid, args[0], args[1], args[2]) {
                    Ok(child) => {
                        let pod = self.pods.get_mut(&pod_id).expect("owner exists");
                        let vpid = pod.adopt(child);
                        self.pid_owner.insert(child, pod_id);
                        HookDecision::Done(vpid as u64)
                    }
                    Err(e) => HookDecision::Done(e.to_ret()),
                }
            }
            nr::FORK => {
                // Same virtualization for fork: the parent sees the child's
                // virtual pid (the child's 0 is set by the kernel fork).
                match kernel.fork_process(pid) {
                    Ok(child) => {
                        let pod = self.pods.get_mut(&pod_id).expect("owner exists");
                        let vpid = pod.adopt(child);
                        self.pid_owner.insert(child, pod_id);
                        HookDecision::Done(vpid as u64)
                    }
                    Err(e) => HookDecision::Done(e.to_ret()),
                }
            }
            nr::BIND => {
                // Confine the socket to the pod's address: any IP argument
                // other than the VIF IP (including ANY) is replaced.
                let pod = self.pods.get(&pod_id).expect("owner exists");
                let mut a = args;
                a[1] = pod.cfg.ip.to_bits() as u64;
                HookDecision::PassArgs(a)
            }
            nr::CONNECT => {
                // Implicitly bind to the pod IP before the kernel's connect
                // picks the host's primary address.
                let pod_ip = self.pods.get(&pod_id).expect("owner exists").cfg.ip;
                if let Some(sid) = kernel.socket_of(pid, args[0] as u32) {
                    let unbound = kernel
                        .net
                        .tcp_local_addr(sid)
                        .map(|a| a.ip.is_unspecified())
                        .unwrap_or(true);
                    if unbound && kernel.net.tcp_info(sid).is_err() {
                        let _ = kernel.net.bind(sid, SockAddr::new(pod_ip, 0));
                    }
                }
                HookDecision::Pass
            }
            nr::IOCTL => {
                let pod = self.pods.get(&pod_id).expect("owner exists");
                match args[1] {
                    ioctl::SIOCGIFHWADDR => {
                        // Return the pod's visible (possibly fake) MAC, not
                        // the physical NIC's — the DHCP-identity trick.
                        let mac = pod.cfg.mac_mode.pod_visible_mac();
                        let mut v = [0u8; 8];
                        v[..6].copy_from_slice(&mac.octets());
                        match kernel.write_guest(pid, args[2], &v) {
                            Ok(()) => HookDecision::Done(0),
                            Err(e) => HookDecision::Done(e.to_ret()),
                        }
                    }
                    ioctl::SIOCGIFADDR => {
                        let ip = pod.cfg.ip.to_bits() as u64;
                        match kernel.write_guest(pid, args[2], &ip.to_le_bytes()) {
                            Ok(()) => HookDecision::Done(0),
                            Err(e) => HookDecision::Done(e.to_ret()),
                        }
                    }
                    _ => HookDecision::Pass,
                }
            }
            nr::RECV | nr::READ => {
                // Restore-time alternate buffer delivery (§4.1).
                let intercepting = self
                    .pods
                    .get(&pod_id)
                    .map(|p| p.intercepting)
                    .unwrap_or(false);
                if !intercepting {
                    return HookDecision::Pass;
                }
                let Some(sid) = kernel.socket_of(pid, args[0] as u32) else {
                    return HookDecision::Pass;
                };
                let pod = self.pods.get_mut(&pod_id).expect("owner exists");
                let data: Vec<u8> = match pod.alt_recv.get_mut(&sid) {
                    Some(q) if !q.is_empty() => {
                        let n = q.len().min(args[2] as usize);
                        q.drain(..n).collect()
                    }
                    _ => {
                        // This socket's buffer is dry; deactivate the
                        // interception once every buffer has drained.
                        if !pod.any_alt_recv() {
                            pod.intercepting = false;
                        }
                        return HookDecision::Pass;
                    }
                };
                if !pod.any_alt_recv() {
                    pod.intercepting = false;
                }
                match kernel.write_guest(pid, args[1], &data) {
                    Ok(()) => HookDecision::Done(data.len() as u64),
                    Err(e) => HookDecision::Done(e.to_ret()),
                }
            }
            nr::SHMGET => {
                let pod = self.pod_mut_of_pid(pid).expect("owner exists");
                pod.shm_keys.insert(args[0]);
                HookDecision::Pass
            }
            nr::SEMGET => {
                let pod = self.pod_mut_of_pid(pid).expect("owner exists");
                pod.sem_keys.insert(args[0]);
                HookDecision::Pass
            }
            _ => HookDecision::Pass,
        }
    }
}
