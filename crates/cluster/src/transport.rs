//! The control-plane transport seam.
//!
//! Everything above this module — coordinator wiring, agent wiring,
//! heartbeats, failover — moves [`CtlMsg`] frames through the
//! [`CtlTransport`] trait and never touches a node's network stack
//! directly. That is the layering DMTCP's coordinator/plugin split proved
//! out (and its InfiniBand port exploited: swap the transport, keep the
//! protocol): the protocol engine is written once against this seam, and
//! a backend is free to carry frames however it likes.
//!
//! The trait speaks only engine-owned types — [`CtlAddr`] node-index
//! addressing and [`CtlInstant`] clock readings (`crate::runtime`), never
//! `simnet::SockAddr` or `des::SimTime` — so a backend over real sockets
//! implements these four methods and the engine above compiles unchanged.
//!
//! The first backend is [`SimnetCtl`]: unreliable datagrams over the
//! simulated UDP/IP/Ethernet substrate. Frames it sends are subject to
//! everything the fabric does to real traffic — link serialization delay,
//! switch forwarding, seeded loss, and the fault plane's
//! drop/duplicate/reorder injections — which is exactly why the protocol
//! layers must tolerate delivery faults rather than assume a reliable
//! channel. The second is the net runtime's loopback-UDP transport
//! (`crate::netrt`), which carries the same frames over real
//! `std::net::UdpSocket`s.

use bytes::Bytes;
use simnet::addr::SockAddr;
use simnet::stack::SocketId;

use cruz::error::CruzError;
use cruz::proto::{CtlMsg, AGENT_PORT};

use crate::node::{node_ip, Node};
use crate::runtime::{CtlAddr, CtlInstant};

pub use crate::node::CtlSock;

/// Bind/send/receive of control-plane frames on behalf of a node.
///
/// The contract is deliberately minimal and datagram-shaped:
///
/// * **Unreliable** — `send` is fire-and-forget. Frames may be dropped,
///   duplicated or reordered in flight (the simnet backend subjects them
///   to the seeded fault plane); the protocol layers above own retry and
///   idempotence.
/// * **Non-blocking** — `recv` drains at most one decodable frame and
///   never waits; the event loop polls it at node-service points.
/// * **Addressed** — nodes are named by index ([`CtlAddr`]), never by
///   wire address; [`CtlTransport::agent_addr`] maps an index to the
///   well-known agent endpoint so callers never derive addresses
///   themselves.
pub trait CtlTransport {
    /// Binds a fresh control endpoint on `node` at `port` (`0` requests an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// [`CruzError::ControlSocket`] when the node's stack refuses the bind
    /// (port taken, sockets exhausted).
    fn bind(&mut self, node: usize, port: u16) -> Result<CtlSock, CruzError>;

    /// Sends one control frame from `sock` on `node` to `dst`,
    /// fire-and-forget. A refused or unroutable send is dropped silently —
    /// indistinguishable, to the protocol, from loss in flight.
    fn send(&mut self, node: usize, sock: CtlSock, dst: CtlAddr, msg: &CtlMsg, now: CtlInstant);

    /// Receives the next decodable control frame queued on `sock`, with
    /// its source address. Undecodable datagrams are discarded. `None`
    /// when the queue is empty.
    fn recv(&mut self, node: usize, sock: CtlSock) -> Option<(CtlAddr, CtlMsg)>;

    /// The well-known control-plane address of `node`'s agent endpoint.
    fn agent_addr(&self, node: usize) -> CtlAddr;
}

/// The simulated-UDP backend: control frames ride real datagrams through
/// each node's [`simnet`] stack, the switch, and the per-link
/// bandwidth/latency model — so control-plane cost and control-plane loss
/// are emergent, not modelled. [`CtlAddr`]s map onto the `10.0.0.(n+1)`
/// subnet at the seam; the engine above never sees a wire address.
pub struct SimnetCtl<'a> {
    nodes: &'a mut [Node],
}

impl<'a> SimnetCtl<'a> {
    pub(crate) fn new(nodes: &'a mut [Node]) -> SimnetCtl<'a> {
        SimnetCtl { nodes }
    }

    /// The wire address of an engine-level endpoint.
    fn wire_addr(addr: CtlAddr) -> SockAddr {
        SockAddr::new(node_ip(addr.node as usize), addr.port)
    }

    /// The engine-level endpoint a wire source address names: the node
    /// whose `10.0.0.(n+1)` address it is. Frames from outside the node
    /// subnet have no engine name and are discarded by `recv`.
    fn engine_addr(addr: SockAddr) -> Option<CtlAddr> {
        let o = addr.ip.octets();
        if o[0] == 10 && o[1] == 0 && o[2] == 0 && o[3] >= 1 {
            Some(CtlAddr::new((o[3] - 1) as usize, addr.port))
        } else {
            None
        }
    }
}

impl CtlTransport for SimnetCtl<'_> {
    fn bind(&mut self, node: usize, port: u16) -> Result<CtlSock, CruzError> {
        let k = &mut self.nodes[node].kernel;
        let s = k.net.udp_socket();
        k.net
            .bind(s, SockAddr::new(node_ip(node), port))
            .map_err(CruzError::ControlSocket)?;
        Ok(CtlSock(s.0))
    }

    fn send(&mut self, node: usize, sock: CtlSock, dst: CtlAddr, msg: &CtlMsg, now: CtlInstant) {
        // Fire-and-forget by contract: a refused or unroutable send is,
        // to the protocol, indistinguishable from loss in flight, and the
        // layers above own retry. cruz-lint: allow(swallowed-error)
        let _ = self.nodes[node].kernel.net.udp_send_to(
            SocketId(sock.0),
            Self::wire_addr(dst),
            Bytes::from(msg.encode()),
            now.into(),
        );
    }

    fn recv(&mut self, node: usize, sock: CtlSock) -> Option<(CtlAddr, CtlMsg)> {
        let net = &mut self.nodes[node].kernel.net;
        while let Ok(Some((from, bytes))) = net.udp_recv_from(SocketId(sock.0)) {
            if let Some(msg) = CtlMsg::decode(&bytes) {
                if let Some(addr) = Self::engine_addr(from) {
                    return Some((addr, msg));
                }
            }
        }
        None
    }

    fn agent_addr(&self, node: usize) -> CtlAddr {
        CtlAddr::new(node, AGENT_PORT)
    }
}
