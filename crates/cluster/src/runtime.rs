//! The sim-agnostic runtime seam: engine-owned time, addressing and the
//! deadline vocabulary the protocol layers schedule against.
//!
//! The coordinator/agent engine (ops, drain, heartbeat) is written once
//! against three small abstractions, none of which names the simulator:
//!
//! * [`CtlInstant`]/[`CtlDuration`] — an opaque monotonic clock reading
//!   and span, nanosecond-granular. The DES backend feeds virtual time
//!   through them; the `std::net` backend feeds wall-clock elapsed time.
//! * [`CtlAddr`] — stable node-index addressing for control-plane frames,
//!   so the protocol never derives (or parses) wire addresses itself.
//!   Each backend maps it onto its own endpoint notion (a simulated
//!   `10.0.0.x` socket address, a real loopback UDP port).
//! * [`Deadline`] + [`Timers`] — the protocol registers *what should
//!   happen when* and the runtime owns *how that firing is driven*: the
//!   sim backend turns each deadline into a DES event (its internal step
//!   log), the net backend keeps a deadline heap polled against the real
//!   clock.
//!
//! This is the split DMTCP's coordinator/plugin architecture proved out:
//! swap the transport and clock, keep the protocol. `SimRuntime` remains
//! the deterministic oracle (pinned by the golden traces); `NetRuntime`
//! carries the same engine over real sockets and OS threads.

use des::{SimDuration, SimTime};
use zap::image::PodImage;

use cruz::proto::{CtlMsg, ProtocolMode};

/// An opaque monotonic instant owned by the engine, in nanoseconds from
/// the runtime's epoch (simulation start, or net-runtime construction).
///
/// Deliberately *not* `des::SimTime`: the protocol layers compare and
/// schedule against instants without knowing whether a simulator or a
/// wall clock produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtlInstant(u64);

impl CtlInstant {
    /// The runtime's epoch.
    pub const ZERO: CtlInstant = CtlInstant(0);

    /// An instant `nanos` after the runtime's epoch.
    pub const fn from_nanos(nanos: u64) -> CtlInstant {
        CtlInstant(nanos)
    }

    /// Nanoseconds since the runtime's epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant advanced by `d` (saturating).
    pub const fn plus(self, d: CtlDuration) -> CtlInstant {
        CtlInstant(self.0.saturating_add(d.as_nanos()))
    }
}

/// A span between two [`CtlInstant`]s, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtlDuration(u64);

impl CtlDuration {
    /// A span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> CtlDuration {
        CtlDuration(nanos)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
}

// Lossless bridges to the simulator's clock types. `SimTime` is plain
// nanoseconds too, so the DES backend's conversion is the identity — which
// is what keeps the refactor byte-identical under the golden traces.
impl From<SimTime> for CtlInstant {
    fn from(t: SimTime) -> CtlInstant {
        CtlInstant(t.as_nanos())
    }
}

impl From<CtlInstant> for SimTime {
    fn from(t: CtlInstant) -> SimTime {
        SimTime::from_nanos(t.as_nanos())
    }
}

impl From<SimDuration> for CtlDuration {
    fn from(d: SimDuration) -> CtlDuration {
        CtlDuration(d.as_nanos())
    }
}

impl From<CtlDuration> for SimDuration {
    fn from(d: CtlDuration) -> SimDuration {
        SimDuration::from_nanos(d.as_nanos())
    }
}

/// A control-plane endpoint named by node index, not wire address.
///
/// The protocol engine only ever needs "the agent endpoint of node 3" or
/// "reply to whoever sent this"; how that maps onto an IP/port (simnet)
/// or a loopback UDP socket (net runtime) is the backend's business.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtlAddr {
    /// The node hosting the endpoint.
    pub node: u32,
    /// The endpoint's port in the backend's port space (`0` = ephemeral;
    /// a backend receiving a frame reports the sender's actual port).
    pub port: u16,
}

impl CtlAddr {
    /// The endpoint `port` on `node`.
    pub fn new(node: usize, port: u16) -> CtlAddr {
        CtlAddr {
            node: node as u32,
            port,
        }
    }
}

/// One registered future obligation of the protocol engine.
///
/// This is the engine's *timer vocabulary*: every time-dependent protocol
/// action — service-delay completions, failure-detection deadlines, retry
/// rounds, periodic drivers — is armed as one of these through
/// [`Timers::arm`] rather than scheduled as a raw DES event. The sim
/// backend maps each variant 1:1 onto its internal `Event` step log (same
/// times, same order, so golden traces are unchanged); the net backend
/// fires them from a deadline heap against the wall clock.
#[allow(missing_docs)] // variant fields are documented where non-obvious
pub enum Deadline {
    /// A decoded control frame is handed to a node's agent after its
    /// control-CPU service delay.
    AgentCtl {
        node: usize,
        msg: CtlMsg,
        reply_to: CtlAddr,
    },
    /// A node's local save/restore work completes.
    AgentLocalDone { node: usize, op: u64 },
    /// A node's checkpoint images become durable on disk.
    AgentDurable { node: usize, op: u64 },
    /// COW capture: the background drain of a node's armed snapshots
    /// completes.
    CkptDrain { node: usize, op: u64 },
    /// A decoded agent reply is handed to an operation's coordinator after
    /// its control-CPU service delay.
    CoordCtl { op: u64, from: usize, msg: CtlMsg },
    /// The coordinator CPU frees up to transmit one queued protocol
    /// message.
    CoordSend { op: u64, to: usize, msg: CtlMsg },
    /// An operation's failure-detection deadline expires.
    CoordTimeout { op: u64 },
    /// A backed-off retransmission round for an operation's unacked sends.
    CoordRetry { op: u64, attempt: u32 },
    /// One heartbeat round for a job: ping every app node, arm the
    /// timeout.
    Heartbeat { job: String },
    /// The deadline of one heartbeat round: any pinged node that has not
    /// ponged since `sent_at` is declared dead.
    HeartbeatTimeout {
        job: String,
        sent_at: CtlInstant,
        pinged: Vec<usize>,
    },
    /// The periodic-checkpoint driver's next tick for a job.
    PeriodicCkpt {
        job: String,
        interval: CtlDuration,
        mode: ProtocolMode,
        cow: bool,
    },
    /// A migrated pod's image finishes its transfer and restores at the
    /// destination.
    MigrateFinish {
        job: String,
        pod: String,
        dst: usize,
        image: Box<PodImage>,
    },
    /// A periodic background scrub of a job's replicated checkpoint
    /// store.
    StoreScrub { job: String, interval: CtlDuration },
}

/// Clock reading and deadline registration — the only way the protocol
/// layers touch time.
///
/// A runtime promises to fire each armed [`Deadline`] exactly once, at or
/// after `at`, in `(at, arm order)` order for deadlines it fires at the
/// same instant. The DES backend gets both properties from its event
/// queue (insertion-order tie-breaking); the net backend approximates
/// "at" with wall-clock polling but keeps the same ordering contract.
pub trait Timers {
    /// The engine's current instant.
    fn now(&self) -> CtlInstant;

    /// Registers `d` to fire at `at`. Arming a deadline in the past fires
    /// it as soon as the runtime next dispatches.
    fn arm(&mut self, at: CtlInstant, d: Deadline);
}

/// The cross-backend comparison point of the twin-runtime property: an
/// FNV-1a digest over `(pod name, image bytes)` pairs, folded in the
/// order given (callers sort by pod name first).
///
/// Both [`crate::simrt::SimRuntime`] and [`crate::netrt::NetRuntime`]
/// compute this over the image bytes read back from their stores after a
/// restore; for a workload that ran to completion before capture the
/// bytes — and therefore this digest — must match exactly.
pub fn image_set_digest(pods: &[(String, Vec<u8>)]) -> u64 {
    let mut h = des::digest::OFFSET;
    for (name, bytes) in pods {
        h = des::digest::fold(h, name.as_bytes());
        h = des::digest::fold_u64(h, bytes.len() as u64);
        h = des::digest::fold(h, bytes);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_bridges_are_lossless() {
        let t = SimTime::from_nanos(123_456_789);
        let i = CtlInstant::from(t);
        assert_eq!(SimTime::from(i), t);
        assert_eq!(i.as_nanos(), 123_456_789);

        let d = SimDuration::from_micros(35);
        let cd = CtlDuration::from(d);
        assert_eq!(SimDuration::from(cd), d);
    }

    #[test]
    fn instant_arithmetic_saturates() {
        let late = CtlInstant::from_nanos(u64::MAX - 1);
        assert_eq!(
            late.plus(CtlDuration::from_nanos(100)),
            CtlInstant::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn image_digest_is_order_and_length_sensitive() {
        let a = ("p0".to_string(), vec![1u8, 2, 3]);
        let b = ("p1".to_string(), vec![4u8]);
        let fwd = image_set_digest(&[a.clone(), b.clone()]);
        let rev = image_set_digest(&[b, a]);
        assert_ne!(fwd, rev);
        // Length framing: ("p0", [1]) + ("p1", []) must differ from
        // ("p0", []) + ("p1", [1]) even though the concatenation agrees.
        let x = image_set_digest(&[("p0".into(), vec![1]), ("p1".into(), vec![])]);
        let y = image_set_digest(&[("p0".into(), vec![]), ("p1".into(), vec![1])]);
        assert_ne!(x, y);
    }

    #[test]
    fn addr_is_node_indexed() {
        let a = CtlAddr::new(3, 7770);
        assert_eq!(a.node, 3);
        assert_eq!(a.port, 7770);
        assert_ne!(a, CtlAddr::new(4, 7770));
    }
}
