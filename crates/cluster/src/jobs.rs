//! Job specifications, placement, and the world's job-management surface
//! (the LSF-integration analogue).

use simnet::addr::IpAddr;
use simos::proc::ProcState;
use simos::program::Program;
use zap::image::{MacMode, PodImage};
use zap::pod::{PodId, Vpid};
use zap::PodConfig;

use cruz::error::CruzError;

use crate::runtime::{Deadline, Timers};
use crate::state::{ClusterError, World};

/// One pod of a job: where it runs and what it executes.
#[derive(Debug, Clone)]
pub struct PodSpec {
    /// Pod name (unique within the job; keys checkpoint images).
    pub name: String,
    /// The pod's externally routable IP.
    pub ip: IpAddr,
    /// VIF MAC configuration.
    pub mac_mode: MacMode,
    /// Node index the pod initially runs on.
    pub node: usize,
    /// Guest programs to spawn inside the pod.
    pub programs: Vec<Program>,
}

/// A distributed job: a set of pods plus the node hosting the coordinator.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// The pods.
    pub pods: Vec<PodSpec>,
    /// Node the checkpoint coordinator runs on (as in the paper, distinct
    /// from the application nodes).
    pub coordinator_node: usize,
}

/// Live placement of one pod.
#[derive(Debug, Clone)]
pub struct PodPlacement {
    /// Pod name.
    pub name: String,
    /// The pod's IP (stable across migration).
    pub ip: IpAddr,
    /// MAC configuration.
    pub mac_mode: MacMode,
    /// Node currently hosting the pod.
    pub node: usize,
    /// The pod's id on that node (`None` while not instantiated, e.g.
    /// between crash and restart).
    pub pod_id: Option<PodId>,
}

/// Runtime state of a launched job.
#[derive(Debug, Clone)]
pub struct JobRuntime {
    /// The job name.
    pub name: String,
    /// Current placements.
    pub placements: Vec<PodPlacement>,
    /// Coordinator node.
    pub coordinator_node: usize,
}

impl JobRuntime {
    /// Placements hosted on `node`.
    pub fn pods_on_node(&self, node: usize) -> Vec<&PodPlacement> {
        self.placements.iter().filter(|p| p.node == node).collect()
    }

    /// The distinct nodes hosting at least one pod.
    pub fn app_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.placements.iter().map(|p| p.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Looks up a placement by pod name.
    pub fn placement(&self, name: &str) -> Option<&PodPlacement> {
        self.placements.iter().find(|p| p.name == name)
    }

    /// Mutable lookup by pod name.
    pub fn placement_mut(&mut self, name: &str) -> Option<&mut PodPlacement> {
        self.placements.iter_mut().find(|p| p.name == name)
    }
}

impl World {
    // ---- job management --------------------------------------------------

    /// Launches a job: creates its pods and spawns their programs.
    ///
    /// # Errors
    ///
    /// [`ClusterError::JobExists`], [`ClusterError::BadNode`] or Zap errors.
    pub fn launch_job(&mut self, spec: &JobSpec) -> Result<(), ClusterError> {
        if self.jobs.contains_key(&spec.name) {
            return Err(ClusterError::JobExists);
        }
        if spec.coordinator_node >= self.nodes.len() {
            return Err(ClusterError::BadNode(spec.coordinator_node));
        }
        let mut placements = Vec::new();
        for pod in &spec.pods {
            if pod.node >= self.nodes.len() {
                return Err(ClusterError::BadNode(pod.node));
            }
            let slot = &mut self.nodes[pod.node];
            let pod_id = slot.zap.create_pod(
                &mut slot.kernel,
                PodConfig {
                    name: format!("{}:{}", spec.name, pod.name),
                    ip: pod.ip,
                    mac_mode: pod.mac_mode,
                },
            )?;
            for prog in &pod.programs {
                slot.zap.spawn_in_pod(&mut slot.kernel, pod_id, prog)?;
            }
            placements.push(PodPlacement {
                name: pod.name.clone(),
                ip: pod.ip,
                mac_mode: pod.mac_mode,
                node: pod.node,
                pod_id: Some(pod_id),
            });
        }
        self.jobs.insert(
            spec.name.clone(),
            JobRuntime {
                name: spec.name.clone(),
                placements,
                coordinator_node: spec.coordinator_node,
            },
        );
        for pod in &spec.pods {
            self.postprocess(pod.node);
        }
        if self.params.recovery.enabled {
            self.enable_recovery(&spec.name)?;
        }
        Ok(())
    }

    /// True once every process of every pod of the job has exited.
    pub fn job_finished(&self, job: &str) -> bool {
        let Some(jr) = self.jobs.get(job) else {
            return false;
        };
        jr.placements.iter().all(|p| match p.pod_id {
            Some(pid) => self.nodes[p.node]
                .zap
                .pod_finished(&self.nodes[p.node].kernel, pid),
            None => false,
        })
    }

    /// The console of a pod process (by pod name and virtual pid).
    pub fn pod_console(&self, job: &str, pod: &str, vpid: Vpid) -> Option<Vec<String>> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        node.zap.console_of(&node.kernel, p.pod_id?, vpid)
    }

    /// The exit code of a pod process, if it has exited.
    pub fn pod_exit_code(&self, job: &str, pod: &str, vpid: Vpid) -> Option<u64> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        let real = node.zap.real_pid(p.pod_id?, vpid)?;
        match node.kernel.process(real)?.state {
            ProcState::Zombie(code) => Some(code),
            _ => None,
        }
    }

    /// Reads guest memory of a pod process (host-side observation; used by
    /// benchmarks to sample progress counters).
    pub fn peek_guest(
        &self,
        job: &str,
        pod: &str,
        vpid: Vpid,
        addr: u64,
        len: usize,
    ) -> Option<Vec<u8>> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        let real = node.zap.real_pid(p.pod_id?, vpid)?;
        node.kernel.read_guest(real, addr, len).ok()
    }

    // ---- live migration (single pod, peers untouched) ----------------------

    /// Migrates one pod to `dst` while the rest of the job keeps running —
    /// the §4.2 scenario (remote endpoints need not be under Zap control).
    /// The pod is frozen, checkpointed, torn down at the source, and
    /// restored+resumed at the destination after the modelled transfer
    /// time.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`]/[`ClusterError::BadNode`]; Zap errors.
    pub fn migrate_pod(&mut self, job: &str, pod: &str, dst: usize) -> Result<(), ClusterError> {
        if dst >= self.nodes.len() {
            return Err(ClusterError::BadNode(dst));
        }
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        let (src, pod_id, ip) = {
            let jr = self.jobs.get(job).ok_or(ClusterError::NoSuchJob)?;
            let p = jr.placement(pod).ok_or(ClusterError::NoSuchJob)?;
            (p.node, p.pod_id.ok_or(ClusterError::NoSuchJob)?, p.ip)
        };
        // Freeze & extract at the source now; drop traffic meanwhile.
        {
            let slot = &mut self.nodes[src];
            slot.kernel.net.filter_mut().add_drop_rule(ip);
        }
        let image = {
            let slot = &mut self.nodes[src];
            let img = slot
                .zap
                .checkpoint_pod(&mut slot.kernel, pod_id, self.now)?;
            slot.zap.destroy_pod(&mut slot.kernel, pod_id)?;
            slot.kernel.net.filter_mut().remove_drop_rule(ip);
            img
        };
        let bytes = image.encoded_len() as u64;
        // Source disk write, then destination disk read (via the shared fs).
        let t_extract = self.params.extract_time(bytes);
        let w = self.nodes[src]
            .kernel
            .disk
            .submit_write(self.now + t_extract, bytes);
        if self.nodes[src].kernel.disk.take_write_fault().is_some() {
            // The spool write failed or tore: the transfer never reaches the
            // destination and the pod (already torn down at the source) is
            // lost. The job manager sees a migration failure; with recovery
            // enabled the heartbeat plane restarts the job from its last
            // committed epoch.
            if let Some(jr) = self.jobs.get_mut(job) {
                if let Some(p) = jr.placement_mut(pod) {
                    p.pod_id = None;
                }
            }
            self.migration_failures.push((
                job.to_string(),
                pod.to_string(),
                CruzError::Protocol("injected disk fault tore the migration spool"),
            ));
            self.postprocess(src);
            return Ok(());
        }
        let r = self.nodes[dst].kernel.disk.submit_read(w, bytes);
        self.arm(
            r.into(),
            Deadline::MigrateFinish {
                job: job.to_owned(),
                pod: pod.to_owned(),
                dst,
                image: Box::new(image),
            },
        );
        *self.migrations.entry(job.to_owned()).or_insert(0) += 1;
        self.postprocess(src);
        Ok(())
    }

    pub(crate) fn on_migrate_finish(&mut self, job: &str, pod: &str, dst: usize, image: &PodImage) {
        if let Some(m) = self.migrations.get_mut(job) {
            *m = m.saturating_sub(1);
        }
        if !self.nodes[dst].alive {
            return;
        }
        // The restore installs image content into fresh address spaces, so
        // any digests remembered from the source node's captures are stale.
        self.digest_caches.remove(job);
        let slot = &mut self.nodes[dst];
        let pod_id = match slot.zap.restart_pod(&mut slot.kernel, image, self.now) {
            Ok(id) => id,
            Err(e) => {
                // The destination refused the restore; the pod stays where
                // it was and the failure is reported, not panicked.
                self.migration_failures
                    .push((job.to_string(), pod.to_string(), CruzError::Zap(e)));
                return;
            }
        };
        let resumed = slot.zap.resume_pod(&mut slot.kernel, pod_id, self.now);
        if let Err(e) = resumed {
            // The pod restored but will not run; report it alongside the
            // refused-restore failures so the migration's caller can see.
            self.migration_failures
                .push((job.to_string(), pod.to_string(), CruzError::Zap(e)));
        }
        if let Some(jr) = self.jobs.get_mut(job) {
            if let Some(p) = jr.placement_mut(pod) {
                p.node = dst;
                p.pod_id = Some(pod_id);
            }
        }
        self.postprocess(dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::addr::MacAddr;

    fn runtime() -> JobRuntime {
        JobRuntime {
            name: "j".into(),
            coordinator_node: 9,
            placements: vec![
                PodPlacement {
                    name: "a".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 1]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(1)),
                    node: 0,
                    pod_id: None,
                },
                PodPlacement {
                    name: "b".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 2]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(2)),
                    node: 2,
                    pod_id: None,
                },
                PodPlacement {
                    name: "c".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 3]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(3)),
                    node: 0,
                    pod_id: None,
                },
            ],
        }
    }

    #[test]
    fn placement_queries() {
        let r = runtime();
        assert_eq!(r.app_nodes(), vec![0, 2]);
        assert_eq!(r.pods_on_node(0).len(), 2);
        assert_eq!(r.pods_on_node(1).len(), 0);
        assert!(r.placement("b").is_some());
        assert!(r.placement("zzz").is_none());
    }
}
