//! Job specifications and placement (the LSF-integration analogue).

use simnet::addr::IpAddr;
use simos::program::Program;
use zap::image::MacMode;
use zap::pod::PodId;

/// One pod of a job: where it runs and what it executes.
#[derive(Debug, Clone)]
pub struct PodSpec {
    /// Pod name (unique within the job; keys checkpoint images).
    pub name: String,
    /// The pod's externally routable IP.
    pub ip: IpAddr,
    /// VIF MAC configuration.
    pub mac_mode: MacMode,
    /// Node index the pod initially runs on.
    pub node: usize,
    /// Guest programs to spawn inside the pod.
    pub programs: Vec<Program>,
}

/// A distributed job: a set of pods plus the node hosting the coordinator.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// The pods.
    pub pods: Vec<PodSpec>,
    /// Node the checkpoint coordinator runs on (as in the paper, distinct
    /// from the application nodes).
    pub coordinator_node: usize,
}

/// Live placement of one pod.
#[derive(Debug, Clone)]
pub struct PodPlacement {
    /// Pod name.
    pub name: String,
    /// The pod's IP (stable across migration).
    pub ip: IpAddr,
    /// MAC configuration.
    pub mac_mode: MacMode,
    /// Node currently hosting the pod.
    pub node: usize,
    /// The pod's id on that node (`None` while not instantiated, e.g.
    /// between crash and restart).
    pub pod_id: Option<PodId>,
}

/// Runtime state of a launched job.
#[derive(Debug, Clone)]
pub struct JobRuntime {
    /// The job name.
    pub name: String,
    /// Current placements.
    pub placements: Vec<PodPlacement>,
    /// Coordinator node.
    pub coordinator_node: usize,
}

impl JobRuntime {
    /// Placements hosted on `node`.
    pub fn pods_on_node(&self, node: usize) -> Vec<&PodPlacement> {
        self.placements.iter().filter(|p| p.node == node).collect()
    }

    /// The distinct nodes hosting at least one pod.
    pub fn app_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.placements.iter().map(|p| p.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Looks up a placement by pod name.
    pub fn placement(&self, name: &str) -> Option<&PodPlacement> {
        self.placements.iter().find(|p| p.name == name)
    }

    /// Mutable lookup by pod name.
    pub fn placement_mut(&mut self, name: &str) -> Option<&mut PodPlacement> {
        self.placements.iter_mut().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::addr::MacAddr;

    fn runtime() -> JobRuntime {
        JobRuntime {
            name: "j".into(),
            coordinator_node: 9,
            placements: vec![
                PodPlacement {
                    name: "a".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 1]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(1)),
                    node: 0,
                    pod_id: None,
                },
                PodPlacement {
                    name: "b".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 2]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(2)),
                    node: 2,
                    pod_id: None,
                },
                PodPlacement {
                    name: "c".into(),
                    ip: IpAddr::from_octets([10, 0, 1, 3]),
                    mac_mode: MacMode::Dedicated(MacAddr::from_index(3)),
                    node: 0,
                    pod_id: None,
                },
            ],
        }
    }

    #[test]
    fn placement_queries() {
        let r = runtime();
        assert_eq!(r.app_nodes(), vec![0, 2]);
        assert_eq!(r.pods_on_node(0).len(), 2);
        assert_eq!(r.pods_on_node(1).len(), 0);
        assert!(r.placement("b").is_some());
        assert!(r.placement("zzz").is_none());
    }
}
