//! Failure detection and self-healing recovery: heartbeat rounds, dead
//! declarations, fencing, rollback, spare selection and coordinator
//! failover.
//!
//! All wire traffic here — pings from the coordinator node, pongs drained
//! by `World::pump_heartbeat`, abort broadcasts after a failover — moves
//! through the [`crate::transport::CtlTransport`] seam like every other
//! control frame, so detection latency includes real (simulated) network
//! and control-CPU delays.

use std::collections::BTreeMap;

use des::SimTime;

use cruz::error::CruzError;
use cruz::proto::{CtlMsg, ProtocolMode};

use crate::params::SparePolicy;
use crate::recovery::{RecoveryCause, RecoveryOutcome, RecoveryReport};
use crate::runtime::{Deadline, Timers};
use crate::state::{ClusterError, World};
use crate::transport::{CtlSock, CtlTransport};

/// Per-job heartbeat bookkeeping (socket on the coordinator node, ping
/// sequence, last pong time per node).
pub(crate) struct HeartbeatState {
    sock: CtlSock,
    seq: u64,
    last_pong: BTreeMap<usize, SimTime>,
}

impl World {
    /// Puts a job under the self-healing recovery manager: the coordinator
    /// node pings every app node each heartbeat interval; nodes that miss
    /// the deadline are declared dead, in-flight operations are aborted,
    /// uncommitted epochs discarded, and the job restarts from its last
    /// committed epoch on spare nodes. Jobs launched while
    /// `params.recovery.enabled` is set are enrolled automatically.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`]; socket-exhaustion protocol errors.
    pub fn enable_recovery(&mut self, job: &str) -> Result<(), ClusterError> {
        let Some(jr) = self.jobs.get(job) else {
            return Err(ClusterError::NoSuchJob);
        };
        if self.hb.contains_key(job) {
            return Ok(());
        }
        let coord_node = jr.coordinator_node;
        let sock = self.bind_ctl_sock(coord_node)?;
        self.hb.insert(
            job.to_owned(),
            HeartbeatState {
                sock,
                seq: 0,
                last_pong: BTreeMap::new(),
            },
        );
        self.arm(
            (self.now + self.params.recovery.heartbeat_interval).into(),
            Deadline::Heartbeat {
                job: job.to_owned(),
            },
        );
        Ok(())
    }

    /// One heartbeat round: ping every app node from the coordinator, arm
    /// the round's timeout, reschedule. The driver retires itself when the
    /// job finishes or recovery gives the job up.
    pub(crate) fn on_heartbeat(&mut self, job: &str) {
        if !self.hb.contains_key(job) {
            return;
        }
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            self.hb.remove(job);
            return;
        }
        // The heartbeat driver doubles as the watchdog for the control
        // plane itself: a dead coordinator node is re-homed first.
        let coord_node = match self.jobs.get(job) {
            Some(jr) => jr.coordinator_node,
            None => return,
        };
        if !self.nodes[coord_node].alive {
            self.coordinator_failover(job);
            if !self.hb.contains_key(job) {
                return; // failover gave up (no alive node to re-home to)
            }
        }
        let (sock, seq, coord_node) = {
            let Some(jr) = self.jobs.get(job) else { return };
            let Some(hb) = self.hb.get_mut(job) else {
                return;
            };
            hb.seq += 1;
            (hb.sock, hb.seq, jr.coordinator_node)
        };
        let pinged = self
            .jobs
            .get(job)
            .map(|jr| jr.app_nodes())
            .unwrap_or_default();
        let now = self.now;
        let mut ctl = self.ctl();
        for &n in &pinged {
            let dst = ctl.agent_addr(n);
            ctl.send(coord_node, sock, dst, &CtlMsg::Ping { seq }, now.into());
        }
        self.postprocess(coord_node);
        self.arm(
            (self.now + self.params.recovery.heartbeat_timeout).into(),
            Deadline::HeartbeatTimeout {
                job: job.to_owned(),
                sent_at: self.now.into(),
                pinged,
            },
        );
        self.arm(
            (self.now + self.params.recovery.heartbeat_interval).into(),
            Deadline::Heartbeat {
                job: job.to_owned(),
            },
        );
    }

    /// The deadline of one heartbeat round: pinged nodes that have not
    /// ponged since the round was sent — and still host this job's pods —
    /// are declared dead and handed to the recovery manager.
    pub(crate) fn on_heartbeat_timeout(&mut self, job: &str, sent_at: SimTime, pinged: Vec<usize>) {
        let Some(hb) = self.hb.get(job) else {
            return;
        };
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            return;
        }
        let dead: Vec<usize> = pinged
            .into_iter()
            .filter(|&n| {
                let answered = hb.last_pong.get(&n).map(|&t| t >= sent_at).unwrap_or(false);
                let hosting = self
                    .jobs
                    .get(job)
                    .map(|jr| jr.placements.iter().any(|p| p.node == n))
                    .unwrap_or(false);
                !answered && hosting
            })
            .collect();
        if dead.is_empty() {
            return;
        }
        self.recover_job(job, &dead, sent_at);
    }

    /// The recovery pass: abort in-flight operations, fence the declared
    /// dead (a lost pong must not leave two copies of a pod running), roll
    /// the store back to its last committed epoch, pick spares, restart.
    fn recover_job(&mut self, job: &str, dead: &[usize], sent_at: SimTime) {
        let detected_at = self.now;
        let crashed_at = self
            .crash_log
            .iter()
            .filter(|(n, _)| dead.contains(n))
            .map(|&(_, t)| t)
            .min();
        let mut base_report = RecoveryReport {
            job: job.to_owned(),
            cause: RecoveryCause::HeartbeatTimeout,
            dead_nodes: dead.to_vec(),
            crashed_at,
            ping_sent_at: sent_at,
            detected_at,
            aborted_ops: Vec::new(),
            rollback_epoch: None,
            restart_op: None,
            scrubbed_replicas: Vec::new(),
            recovered_at: None,
            outcome: RecoveryOutcome::InProgress,
        };
        let spent = self.recoveries.entry(job.to_owned()).or_insert(0);
        if *spent >= self.params.recovery.max_recoveries {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        }
        *spent += 1;
        // Abort everything in flight for the job: a dead participant can
        // never answer, and the restart needs the job quiescent.
        let inflight: Vec<u64> = self
            .ops
            .iter()
            .filter(|(_, o)| o.job == job && !o.complete && !o.aborted)
            .map(|(&id, _)| id)
            .collect();
        for &op in &inflight {
            self.fail_op(op, CruzError::Protocol("participant declared dead"));
        }
        // Fence: destroy this job's pods on declared-dead nodes that are in
        // fact alive (lost pongs) — the STONITH analogue — and unbind every
        // placement on a dead node so the restart re-homes it.
        let fenced: Vec<(usize, zap::pod::PodId)> = self
            .jobs
            .get(job)
            .map(|jr| {
                jr.placements
                    .iter()
                    .filter(|p| dead.contains(&p.node))
                    .filter_map(|p| {
                        let pid = p.pod_id?;
                        self.nodes[p.node].alive.then_some((p.node, pid))
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (n, pid) in fenced {
            let slot = &mut self.nodes[n];
            // Fencing a node already declared dead: if the destroy fails
            // the pod is gone anyway, which is the outcome fencing wants.
            // cruz-lint: allow(swallowed-error)
            let _ = slot.zap.destroy_pod(&mut slot.kernel, pid);
            self.postprocess(n);
        }
        if let Some(jr) = self.jobs.get_mut(job) {
            for p in jr.placements.iter_mut() {
                if dead.contains(&p.node) {
                    p.pod_id = None;
                }
            }
        }
        // Roll the store back: half-written epochs can never commit now,
        // and chunks stranded by torn writes or mid-drain crashes are
        // reclaimed before the restart reads the store.
        let store = self.store(job);
        // With a replicated store, scrub first: replicas that crashed or
        // tore mid-append are rebuilt from the reference log and rejoin
        // the set, so the discard/GC ops below (and the restart's reads)
        // see k healthy, byte-identical copies.
        if store.replica_count() > 1 {
            let rep = store.scrub_and_repair();
            base_report.scrubbed_replicas = rep.repaired.clone();
            self.scrub_reports.push((self.now, job.to_owned(), rep));
        }
        for e in store.uncommitted_epochs() {
            store.discard_epoch(e);
        }
        store.gc_orphan_chunks();
        // The heal left every replica log carrying the fault's full
        // history — the discarded epoch's blobs included. Compact to the
        // minimal self-contained form so write amplification tracks the
        // retained state (≈2k) instead of accreting per incident.
        if store.replica_count() > 1 {
            store.compact_logs();
        }
        let Some(rollback) = store.latest_committed_epoch() else {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                aborted_ops: inflight,
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        };
        let Some(placement) = self.pick_spares(job, dead) else {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                aborted_ops: inflight,
                rollback_epoch: Some(rollback),
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        };
        match self.start_restart(job, rollback, &placement, ProtocolMode::Blocking) {
            Ok(restart_op) => {
                let idx = self.recovery_reports.len();
                self.recovery_reports.push(RecoveryReport {
                    aborted_ops: inflight,
                    rollback_epoch: Some(rollback),
                    restart_op: Some(restart_op),
                    ..base_report
                });
                self.pending_recovery.insert(restart_op, idx);
            }
            Err(_) => {
                // e.g. a migration still in flight; the next heartbeat
                // round retries with a fresh pass.
                self.recovery_reports.push(RecoveryReport {
                    aborted_ops: inflight,
                    rollback_epoch: Some(rollback),
                    outcome: RecoveryOutcome::Failed,
                    ..base_report
                });
            }
        }
    }

    /// Picks replacement nodes for pods displaced off `dead` nodes, per the
    /// configured [`SparePolicy`]. Returns `None` when no eligible spare
    /// exists (every alive non-coordinator node already hosts the job).
    fn pick_spares(&self, job: &str, dead: &[usize]) -> Option<Vec<(String, usize)>> {
        let jr = self.jobs.get(job)?;
        let coord = jr.coordinator_node;
        let occupied: Vec<usize> = jr
            .placements
            .iter()
            .filter(|p| !dead.contains(&p.node))
            .map(|p| p.node)
            .collect();
        let eligible: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| {
                self.nodes[n].alive && n != coord && !dead.contains(&n) && !occupied.contains(&n)
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let displaced: Vec<String> = jr
            .placements
            .iter()
            .filter(|p| dead.contains(&p.node))
            .map(|p| p.name.clone())
            .collect();
        let out = match self.params.recovery.spare_policy {
            SparePolicy::Pack => displaced
                .into_iter()
                .map(|name| (name, eligible[0]))
                .collect(),
            SparePolicy::FirstFree => displaced
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, eligible[i.min(eligible.len() - 1)]))
                .collect(),
        };
        Some(out)
    }

    /// Re-homes a job's control plane after its coordinator node died: new
    /// heartbeat socket on the lowest-index alive node, and every operation
    /// orphaned by the dead coordinator is aborted from the new home so
    /// frozen pods resume. The agents accept the abort because it carries
    /// the orphaned op's epoch; a stale one arriving after a later restart
    /// is ignored by their epoch guard.
    fn coordinator_failover(&mut self, job: &str) {
        let Some(old) = self.jobs.get(job).map(|jr| jr.coordinator_node) else {
            return;
        };
        let Some(new) = (0..self.nodes.len()).find(|&n| self.nodes[n].alive) else {
            self.hb.remove(job);
            return;
        };
        let Ok(sock) = self.bind_ctl_sock(new) else {
            self.hb.remove(job);
            return;
        };
        if let Some(jr) = self.jobs.get_mut(job) {
            jr.coordinator_node = new;
        }
        if let Some(hb) = self.hb.get_mut(job) {
            hb.sock = sock;
            hb.last_pong.clear();
        }
        let orphans: Vec<u64> = self
            .ops
            .iter()
            .filter(|(_, o)| o.job == job && o.coord_node == old && !o.complete && !o.aborted)
            .map(|(&id, _)| id)
            .collect();
        for &op in &orphans {
            let agents = self
                .ops
                .get(&op)
                .map(|o| o.agents_nodes.clone())
                .unwrap_or_default();
            let now = self.now;
            {
                let mut ctl = self.ctl();
                for n in agents {
                    let dst = ctl.agent_addr(n);
                    ctl.send(new, sock, dst, &CtlMsg::Abort { epoch: op }, now.into());
                }
            }
            if let Some(o) = self.ops.get_mut(&op) {
                o.aborted = true;
                if o.error.is_none() {
                    o.error = Some(CruzError::Protocol("coordinator failed over"));
                }
            }
            self.op_aborted_cleanup(op);
        }
        self.postprocess(new);
        let crashed_at = self
            .crash_log
            .iter()
            .filter(|&&(n, _)| n == old)
            .map(|&(_, t)| t)
            .min();
        self.recovery_reports.push(RecoveryReport {
            job: job.to_owned(),
            cause: RecoveryCause::CoordinatorFailover,
            dead_nodes: vec![old],
            crashed_at,
            ping_sent_at: self.now,
            detected_at: self.now,
            aborted_ops: orphans,
            rollback_epoch: None,
            restart_op: None,
            scrubbed_replicas: Vec::new(),
            recovered_at: Some(self.now),
            outcome: RecoveryOutcome::Recovered,
        });
    }

    /// Arms a periodic background scrub of a job's replicated store: every
    /// `interval`, replica logs and tree digests are compared and any
    /// divergent or crashed replica is rebuilt from the reference log. A
    /// no-op driver when replication is off (k = 1).
    pub fn schedule_store_scrub(&mut self, job: &str, interval: des::SimDuration) {
        self.arm(
            (self.now + interval).into(),
            Deadline::StoreScrub {
                job: job.to_owned(),
                interval: interval.into(),
            },
        );
    }

    /// One background scrub tick: repair, record, re-arm. The driver
    /// retires itself when the job disappears.
    pub(crate) fn on_store_scrub(&mut self, job: &str, interval: des::SimDuration) {
        if !self.jobs.contains_key(job) {
            return;
        }
        let store = self.store(job);
        if store.replica_count() > 1 {
            let rep = store.scrub_and_repair();
            if !rep.repaired.is_empty() || !rep.revived.is_empty() {
                self.scrub_reports.push((self.now, job.to_owned(), rep));
            }
        }
        self.arm(
            (self.now + interval).into(),
            Deadline::StoreScrub {
                job: job.to_owned(),
                interval: interval.into(),
            },
        );
    }

    /// Drains heartbeat pongs for jobs whose coordinator lives on node `n`.
    /// The responder is identified by the sender's node index, which the
    /// transport seam reports directly.
    pub(crate) fn pump_heartbeat(&mut self, n: usize) {
        let hb_socks: Vec<(String, CtlSock)> = self
            .hb
            .iter()
            .filter(|(job, _)| {
                self.jobs
                    .get(job.as_str())
                    .map(|jr| jr.coordinator_node == n)
                    .unwrap_or(false)
            })
            .map(|(job, h)| (job.clone(), h.sock))
            .collect();
        for (job, sock) in hb_socks {
            while let Some((from, msg)) = self.ctl().recv(n, sock) {
                if let CtlMsg::Pong { .. } = msg {
                    if let Some(h) = self.hb.get_mut(&job) {
                        h.last_pong.insert(from.node as usize, self.now);
                    }
                }
            }
        }
    }
}
