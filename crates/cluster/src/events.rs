//! The engine's event vocabulary and per-event trace fingerprints.
//!
//! Every state change in the simulated cluster is one [`Event`] popped off
//! the world's queue; the layers above (ops, drain, heartbeat) communicate
//! with the future exclusively by pushing these. Each dispatched event
//! folds a cheap [`fingerprint`](Event::fingerprint) into the world's
//! running trace digest, which is how two runs of the same seed prove they
//! took the same path.

use des::{digest, SimDuration, SimTime};
use simnet::EthFrame;
use zap::image::PodImage;

use cruz::proto::{CtlMsg, ProtocolMode};

use crate::runtime::CtlAddr;

/// One scheduled occurrence in the simulated cluster.
#[allow(missing_docs)] // variant fields are documented where non-obvious
pub enum Event {
    /// A node's kernel gets a run slice.
    NodeRun(usize),
    /// A node's timer wheel fires.
    NodeTick(usize),
    /// A frame reaches the switch ingress from a node's uplink.
    FrameAtSwitch { from_port: usize, frame: EthFrame },
    /// A frame reaches a node's NIC from its downlink.
    FrameAtNode { port: usize, frame: EthFrame },
    /// A decoded control frame is handed to a node's agent after its
    /// control-CPU service delay.
    AgentCtl {
        node: usize,
        msg: CtlMsg,
        reply_to: CtlAddr,
    },
    /// A node's local save/restore work completes.
    AgentLocalDone { node: usize, op: u64 },
    /// A node's checkpoint images become durable on disk (the §5.2 commit
    /// gate when capture and durability are split).
    AgentDurable { node: usize, op: u64 },
    /// COW capture: the background drain of a node's armed memory snapshots
    /// completes (pages encoded, chunked, and handed to the disk).
    CkptDrain { node: usize, op: u64 },
    /// A decoded agent reply is handed to an operation's coordinator after
    /// its control-CPU service delay.
    CoordCtl { op: u64, from: usize, msg: CtlMsg },
    /// The coordinator CPU frees up to transmit one queued protocol message.
    CoordSend { op: u64, to: usize, msg: CtlMsg },
    /// An operation's failure-detection deadline expires.
    CoordTimeout { op: u64 },
    /// A backed-off retransmission round for an operation's unacked sends.
    CoordRetry { op: u64, attempt: u32 },
    /// One heartbeat round for a job: ping every app node, arm the timeout.
    Heartbeat { job: String },
    /// The deadline of one heartbeat round: any pinged node that has not
    /// ponged since `sent_at` is declared dead.
    HeartbeatTimeout {
        job: String,
        sent_at: SimTime,
        pinged: Vec<usize>,
    },
    /// A duplicated or reordered frame copy re-entering a node's NIC; never
    /// re-rolled against the fault plan (one fate per original frame).
    FrameAtNodeInjected { port: usize, frame: EthFrame },
    /// The periodic-checkpoint driver's next tick for a job.
    PeriodicCkpt {
        job: String,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    },
    /// A migrated pod's image finishes its transfer and restores at the
    /// destination.
    MigrateFinish {
        job: String,
        pod: String,
        dst: usize,
        image: Box<PodImage>,
    },
    /// A periodic background scrub of a job's replicated checkpoint store:
    /// compare replica logs and tree digests, repair divergence, re-arm.
    StoreScrub { job: String, interval: SimDuration },
}

impl Event {
    /// A cheap per-event fingerprint folded into the world's trace digest:
    /// the variant tag plus its routing fields. Enough to distinguish any
    /// two event orderings without hashing payload bytes on the hot path.
    pub fn fingerprint(&self) -> u64 {
        let mix = |tag: u64, a: u64, b: u64| {
            digest::fold_u64(
                digest::fold_u64(digest::fold_u64(digest::OFFSET, tag), a),
                b,
            )
        };
        match self {
            Event::NodeRun(n) => mix(1, *n as u64, 0),
            Event::NodeTick(n) => mix(2, *n as u64, 0),
            Event::FrameAtSwitch { from_port, frame } => {
                mix(3, *from_port as u64, frame.wire_len() as u64)
            }
            Event::FrameAtNode { port, frame } => mix(4, *port as u64, frame.wire_len() as u64),
            Event::AgentCtl { node, msg, .. } => mix(5, *node as u64, msg.epoch()),
            Event::AgentLocalDone { node, op } => mix(6, *node as u64, *op),
            Event::AgentDurable { node, op } => mix(7, *node as u64, *op),
            Event::CkptDrain { node, op } => mix(14, *node as u64, *op),
            Event::CoordCtl { op, from, msg } => {
                digest::fold_u64(mix(8, *op, *from as u64), msg.epoch())
            }
            Event::CoordSend { op, to, msg } => {
                digest::fold_u64(mix(9, *op, *to as u64), msg.epoch())
            }
            Event::CoordTimeout { op } => mix(10, *op, 0),
            Event::CoordRetry { op, attempt } => mix(11, *op, *attempt as u64),
            Event::Heartbeat { job } => {
                let mut h = mix(15, 0, 0);
                for b in job.bytes() {
                    h = digest::fold_u64(h, b as u64);
                }
                h
            }
            Event::HeartbeatTimeout {
                job,
                sent_at,
                pinged,
            } => {
                let mut h = mix(16, sent_at.as_nanos(), pinged.len() as u64);
                for b in job.bytes() {
                    h = digest::fold_u64(h, b as u64);
                }
                h
            }
            Event::FrameAtNodeInjected { port, frame } => {
                mix(17, *port as u64, frame.wire_len() as u64)
            }
            Event::PeriodicCkpt { job, interval, .. } => {
                let mut h = mix(12, interval.as_nanos(), 0);
                for b in job.bytes() {
                    h = digest::fold_u64(h, b as u64);
                }
                h
            }
            Event::MigrateFinish { job, pod, dst, .. } => {
                let mut h = mix(13, *dst as u64, 0);
                for b in job.bytes().chain(pod.bytes()) {
                    h = digest::fold_u64(h, b as u64);
                }
                h
            }
            Event::StoreScrub { job, interval } => {
                let mut h = mix(18, interval.as_nanos(), 0);
                for b in job.bytes() {
                    h = digest::fold_u64(h, b as u64);
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_routing() {
        assert_ne!(
            Event::NodeRun(0).fingerprint(),
            Event::NodeRun(1).fingerprint()
        );
        assert_ne!(
            Event::NodeRun(3).fingerprint(),
            Event::NodeTick(3).fingerprint()
        );
        assert_ne!(
            Event::CoordTimeout { op: 1 }.fingerprint(),
            Event::CoordRetry { op: 1, attempt: 0 }.fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_pure() {
        let ev = Event::Heartbeat { job: "j".into() };
        assert_eq!(ev.fingerprint(), ev.fingerprint());
    }
}
