//! Base node types shared by every layer of the cluster engine.
//!
//! This module sits at the bottom of the cluster layer map (DESIGN.md
//! §14): it imports nothing else from this crate, so the transport seam
//! and every protocol layer above it can name a node — or hold a control
//! socket handle — without creating a dependency that points up the stack
//! at the world driver.

use des::SimTime;
use simnet::addr::IpAddr;
use simos::kernel::Kernel;
use zap::Zap;

use cruz::agent::Agent;

use crate::runtime::CtlAddr;

/// An opaque handle to one bound control-plane endpoint on one node.
///
/// Backends map it onto whatever their socket notion is; holders can only
/// pass it back into the transport that issued it. (Re-exported through
/// `crate::transport`, which is where users meet it.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CtlSock(pub(crate) u64);

impl CtlSock {
    /// A handle that no transport ever issues — the pre-bind placeholder.
    pub(crate) const UNBOUND: CtlSock = CtlSock(u64::MAX);
}

/// One simulated machine.
pub struct Node {
    /// The node's kernel (OS, stack, disk).
    pub kernel: Kernel,
    /// The node's Zap layer.
    pub zap: Zap,
    pub(crate) agent: Agent,
    pub(crate) agent_sock: CtlSock,
    pub(crate) agent_coord_addr: Option<CtlAddr>,
    pub(crate) alive: bool,
    pub(crate) run_scheduled: bool,
    pub(crate) timer_scheduled: Option<SimTime>,
    /// When this node's control-plane CPU frees up: sending and processing
    /// coordination messages serialize here (the N-proportional component
    /// of Fig. 5(b)).
    pub(crate) ctl_cpu_free: SimTime,
}

/// The IP of node `i`: `10.0.0.(i+1)`.
pub fn node_ip(i: usize) -> IpAddr {
    IpAddr::from_octets([10, 0, 0, (i + 1) as u8])
}
