//! Coordinated-operation runtime: install, message flow, retry/timeout,
//! abort and persistence.
//!
//! This layer owns the lifetime of one coordinated checkpoint or restart:
//! binding the coordinator's control socket (through the
//! [`crate::transport::CtlTransport`] seam), serializing its
//! sends on the control-plane CPU, executing agent actions against the Zap
//! layer and the disk, and tearing the operation down on commit, abort or
//! injected failure. The stop-the-world capture path lives here; the COW
//! arm/drain schedule is in [`crate::drain`].

use std::collections::BTreeMap;

use des::{SimDuration, SimTime};
use simnet::addr::SockAddr;
use simos::disk::WriteFault;
use zap::image::PodImage;
use zap::ArmedPodCheckpoint;

use cruz::agent::AgentAction;
use cruz::coordinator::{CoordEffect, CoordStats, Coordinator};
use cruz::error::CruzError;
use cruz::proto::{CtlMsg, OpKind, ProtocolMode};
use cruz::store::PreparedPut;

use crate::events::Event;
use crate::fault::ProtocolPoint;
use crate::jobs::PodPlacement;
use crate::params::CkptCaptureMode;
use crate::recovery::RecoveryOutcome;
use crate::state::{ClusterError, World};
use crate::transport::{CtlSock, CtlTransport};

/// Per-operation state the engine tracks from install to completion.
pub(crate) struct OpRuntime {
    pub(crate) coord: Coordinator,
    pub(crate) kind: OpKind,
    pub(crate) cow: bool,
    /// How this checkpoint captures memory (stop-the-world or COW arm/drain).
    pub(crate) capture: CkptCaptureMode,
    /// Base epoch for incremental image capture (`None` = full).
    pub(crate) incremental_base: Option<u64>,
    pub(crate) job: String,
    /// Epoch used for image storage (for restarts: the epoch restored).
    pub(crate) image_epoch: u64,
    pub(crate) coord_node: usize,
    pub(crate) coord_sock: CtlSock,
    pub(crate) agents_nodes: Vec<usize>,
    pub(crate) pending_ckpt: BTreeMap<usize, Vec<(String, PreparedPut)>>,
    /// COW capture: snapshots armed at freeze, awaiting their background
    /// drain — (arm-complete time, per-pod armed checkpoints).
    pub(crate) pending_arm: BTreeMap<usize, (SimTime, Vec<(String, ArmedPodCheckpoint)>)>,
    /// COW capture: pre-image bytes copied on each node because post-resume
    /// guest writes raced the drain.
    pub(crate) cow_copied: BTreeMap<usize, u64>,
    pub(crate) pending_restore: BTreeMap<usize, Vec<(String, Vec<u8>)>>,
    pub(crate) local_ops: BTreeMap<usize, (SimTime, SimTime)>,
    pub(crate) resumed_at: BTreeMap<usize, SimTime>,
    pub(crate) complete: bool,
    pub(crate) aborted: bool,
    /// First control-plane failure hit while driving this operation; set
    /// when the op is force-aborted instead of panicking the world.
    pub(crate) error: Option<CruzError>,
}

/// Options of a coordinated checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CkptOptions {
    /// Protocol variant (Fig. 2 blocking or Fig. 4 optimized).
    pub mode: ProtocolMode,
    /// §5.2 copy-on-write: blackout covers capture only; `durable` gates
    /// the commit.
    pub cow: bool,
    /// Incremental: save only pages dirtied since the job's latest
    /// committed epoch (falls back to full when none exists).
    pub incremental: bool,
    /// Memory-capture mode override; `None` uses `ClusterParams::capture`.
    /// [`CkptCaptureMode::Cow`] shrinks the freeze to the snapshot-arm
    /// window and implies the §5.2 durability split (`cow` above).
    pub capture: Option<CkptCaptureMode>,
    /// Failure-detection timeout (abort + rollback on expiry).
    pub timeout: Option<SimDuration>,
}

impl Default for CkptOptions {
    fn default() -> Self {
        CkptOptions {
            mode: ProtocolMode::Blocking,
            cow: false,
            incremental: false,
            capture: None,
            timeout: None,
        }
    }
}

/// A report of one finished (or running) coordinated operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind.
    pub kind: OpKind,
    /// Coordinator timing observations.
    pub stats: CoordStats,
    /// Per-node local save/restore windows: (node, start, end).
    pub local_ops: Vec<(usize, SimTime, SimTime)>,
    /// When each node's pods resumed execution.
    pub resumed_at: Vec<(usize, SimTime)>,
    /// Whether the operation completed.
    pub complete: bool,
    /// Whether it was aborted.
    pub aborted: bool,
    /// COW capture only: per-node pre-image bytes copied because guest
    /// writes raced the background drain — the bounded extra cost COW pays
    /// for shrinking the freeze window.
    pub cow_copied_bytes: Vec<(usize, u64)>,
}

impl OpReport {
    /// How long each node's pods were frozen: local-op start to resume.
    /// The quantity the Fig. 4 optimization shrinks on fast-saving nodes.
    pub fn blocked_durations(&self) -> Vec<(usize, SimDuration)> {
        self.local_ops
            .iter()
            .filter_map(|&(n, start, _)| {
                let resumed = self.resumed_at.iter().find(|(rn, _)| *rn == n)?.1;
                Some((n, resumed.saturating_duration_since(start)))
            })
            .collect()
    }

    /// The Fig. 5(b) quantity: total checkpoint latency minus the largest
    /// local save time — what coordination itself costs.
    pub fn coordination_overhead(&self) -> Option<SimDuration> {
        let latency = self.stats.checkpoint_latency()?;
        let max_local = self
            .local_ops
            .iter()
            .map(|(_, s, e)| e.duration_since(*s))
            .max()?;
        Some(latency.saturating_sub(max_local))
    }
}

impl World {
    // ---- coordinated operations -------------------------------------------

    /// Starts a coordinated checkpoint of `job`. Returns the operation id
    /// (also the stored epoch).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_opts(job, mode, false, timeout)
    }

    /// Like [`World::start_checkpoint`], with the §5.2 copy-on-write
    /// optimization selectable: when `cow` is true the blackout covers only
    /// state *capture*; image writes complete in the background and gate
    /// the commit record via `durable` messages.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_opts(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        cow: bool,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_with(
            job,
            CkptOptions {
                mode,
                cow,
                timeout,
                ..CkptOptions::default()
            },
        )
    }

    /// The fully-general checkpoint entry point.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_with(
        &mut self,
        job: &str,
        opts: CkptOptions,
    ) -> Result<u64, ClusterError> {
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        let jr = self.jobs.get(job).ok_or(ClusterError::NoSuchJob)?;
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        // The dedup store makes every epoch full-fidelity while writing only
        // novel chunks, so it subsumes incremental delta chains.
        let incremental_base = if opts.incremental && !self.params.store.dedup {
            self.store(job).latest_committed_epoch()
        } else {
            None
        };
        let capture = opts.capture.unwrap_or(self.params.capture);
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Checkpoint,
            opts.mode,
            op,
            (0..agents_nodes.len()).collect(),
        );
        // With recovery on, every operation gets a failure-detection
        // timeout even if the caller set none: a crashed participant must
        // abort the op, not hang it forever.
        let timeout = opts.timeout.or_else(|| {
            self.params
                .recovery
                .enabled
                .then_some(self.params.recovery.op_timeout)
        });
        if let Some(t) = timeout {
            coord = coord.with_timeout(t);
        }
        // COW capture needs the §5.2 message flow: `done` at arm-complete
        // resumes pods early, `durable` after the background drain gates the
        // commit record.
        if opts.cow || capture == CkptCaptureMode::Cow {
            coord = coord.with_cow();
        }
        self.install_op_inc(
            op,
            op,
            OpKind::Checkpoint,
            job,
            coord_node,
            agents_nodes,
            coord,
            incremental_base,
            capture,
        )?;
        Ok(op)
    }

    /// Starts a coordinated restart of `job` from a committed epoch. The
    /// `placement` list re-homes pods (pod name → node); unmentioned pods
    /// keep their previous node assignment.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`], [`ClusterError::NoSuchEpoch`].
    pub fn start_restart(
        &mut self,
        job: &str,
        epoch: u64,
        placement: &[(String, usize)],
        _mode: ProtocolMode,
    ) -> Result<u64, ClusterError> {
        if !self.store(job).is_committed(epoch) {
            return Err(ClusterError::NoSuchEpoch(epoch));
        }
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        // Restored pods get their memory from the stored epoch, not from
        // the captures the digest cache remembers.
        self.digest_caches.remove(job);
        // Tear down surviving pods first (restart-in-place, or rolling a
        // live job back to an earlier epoch): their addresses must be free
        // before the restore recreates them.
        let survivors: Vec<(usize, zap::pod::PodId)> = self
            .jobs
            .get(job)
            .ok_or(ClusterError::NoSuchJob)?
            .placements
            .iter()
            .filter_map(|p| {
                let pod_id = p.pod_id?;
                self.nodes[p.node].alive.then_some((p.node, pod_id))
            })
            .collect();
        for (node, pod_id) in survivors {
            // A survivor that refuses teardown would leave its addresses
            // bound and wreck the restore; abort the restart instead.
            let slot = &mut self.nodes[node];
            slot.zap.destroy_pod(&mut slot.kernel, pod_id)?;
            self.postprocess(node);
        }
        let jr = self.jobs.get_mut(job).ok_or(ClusterError::NoSuchJob)?;
        for (pod, node) in placement {
            if let Some(p) = jr.placement_mut(pod) {
                p.node = *node;
            }
        }
        for p in jr.placements.iter_mut() {
            p.pod_id = None; // instantiated at restore time
        }
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Restart,
            ProtocolMode::Blocking,
            op,
            (0..agents_nodes.len()).collect(),
        );
        if self.params.recovery.enabled {
            coord = coord.with_timeout(self.params.recovery.op_timeout);
        }
        // `_mode` is accepted for API symmetry only: a restart always
        // blocks until every node restored.
        self.install_op(
            op,
            epoch,
            OpKind::Restart,
            job,
            coord_node,
            agents_nodes,
            coord,
        )?;
        Ok(op)
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        coord: Coordinator,
    ) -> Result<(), ClusterError> {
        self.install_op_inc(
            op,
            image_epoch,
            kind,
            job,
            coord_node,
            agents_nodes,
            coord,
            None,
            CkptCaptureMode::StopTheWorld,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op_inc(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        mut coord: Coordinator,
        incremental_base: Option<u64>,
        capture: CkptCaptureMode,
    ) -> Result<(), ClusterError> {
        let coord_sock = self.bind_ctl_sock(coord_node)?;
        let (msgs, _) = coord.start(self.now);
        let deadline = coord.deadline();
        let cow = coord.cow();
        self.ops.insert(
            op,
            OpRuntime {
                coord,
                kind,
                cow,
                capture,
                incremental_base,
                job: job.to_owned(),
                image_epoch,
                coord_node,
                coord_sock,
                agents_nodes,
                pending_ckpt: BTreeMap::new(),
                pending_arm: BTreeMap::new(),
                cow_copied: BTreeMap::new(),
                pending_restore: BTreeMap::new(),
                local_ops: BTreeMap::new(),
                resumed_at: BTreeMap::new(),
                complete: false,
                aborted: false,
                error: None,
            },
        );
        self.schedule_coord_sends(op, msgs);
        if let Some(d) = deadline {
            self.queue.push(d, Event::CoordTimeout { op });
        }
        if let Some(p) = self.params.ctl_retry {
            if let Some(d) = p.delay(0) {
                self.queue
                    .push(self.now + d, Event::CoordRetry { op, attempt: 0 });
            }
        }
        Ok(())
    }

    /// Binds an ephemeral control-plane endpoint on a node, through the
    /// transport seam.
    pub(crate) fn bind_ctl_sock(&mut self, node: usize) -> Result<CtlSock, ClusterError> {
        Ok(self.ctl().bind(node, 0)?)
    }

    pub(crate) fn schedule_coord_sends(&mut self, op: u64, msgs: Vec<(usize, CtlMsg)>) {
        // The coordinator CPU serializes message transmission. Together with
        // the serialized receive path in `poll_ctl`, this is the
        // N-proportional component of the Fig. 5(b) overhead.
        let Some(coord_node) = self.ops.get(&op).map(|o| o.coord_node) else {
            return;
        };
        for (agent, msg) in msgs {
            let at = self.ctl_slot(coord_node);
            self.queue.push(at, Event::CoordSend { op, to: agent, msg });
        }
    }

    /// A report of an operation's progress/outcome.
    pub fn op_report(&self, op: u64) -> Option<OpReport> {
        let o = self.ops.get(&op)?;
        Some(OpReport {
            kind: o.kind,
            stats: o.coord.stats.clone(),
            local_ops: o.local_ops.iter().map(|(&n, &(s, e))| (n, s, e)).collect(),
            resumed_at: o.resumed_at.iter().map(|(&n, &t)| (n, t)).collect(),
            complete: o.complete,
            aborted: o.aborted,
            cow_copied_bytes: o.cow_copied.iter().map(|(&n, &b)| (n, b)).collect(),
        })
    }

    /// True once the operation completed (successfully or by abort).
    pub fn op_finished(&self, op: u64) -> bool {
        self.ops
            .get(&op)
            .map(|o| o.complete || o.aborted)
            .unwrap_or(false)
    }

    /// The control-plane error that force-aborted an operation, if any.
    pub fn op_error(&self, op: u64) -> Option<&CruzError> {
        self.ops.get(&op)?.error.as_ref()
    }

    /// Migrations whose destination refused the restore: (job, pod, error).
    pub fn migration_failures(&self) -> &[(String, String, CruzError)] {
        &self.migration_failures
    }

    /// Force-aborts an operation on a control-plane failure: the op is
    /// marked aborted, the error recorded, abort messages broadcast to
    /// every participant (so frozen pods resume rather than hang), and the
    /// epoch's partial images discarded. One corrupt image or refused Zap
    /// action kills one operation, not the whole world.
    pub(crate) fn fail_op(&mut self, op: u64, err: CruzError) {
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.error.is_none() {
                o.error = Some(err);
            }
            if o.complete || o.aborted {
                return;
            }
            o.aborted = true;
            o.coord.force_abort().0
        };
        self.schedule_coord_sends(op, msgs);
        self.op_aborted_cleanup(op);
    }

    /// Post-abort bookkeeping shared by every abort path: a checkpoint's
    /// uncommitted epoch is discarded and any chunks stranded by a torn or
    /// interrupted write are reclaimed; a pending recovery pass waiting on
    /// this op is marked failed.
    pub(crate) fn op_aborted_cleanup(&mut self, op: u64) {
        if let Some(o) = self.ops.get(&op) {
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
                store.gc_orphan_chunks();
            }
            // An aborted op may have re-baselined dirty tracking (e.g. a
            // COW arm that never drained) without a completed prepare, so
            // remembered page digests can no longer be trusted.
            let job = o.job.clone();
            self.digest_caches.remove(&job);
        }
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                if r.outcome == RecoveryOutcome::InProgress {
                    r.outcome = RecoveryOutcome::Failed;
                }
            }
        }
    }

    /// Stamps a recovery pass whose restart operation just completed.
    fn op_completed(&mut self, op: u64) {
        let now = self.now;
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                r.recovered_at = Some(now);
                r.outcome = RecoveryOutcome::Recovered;
            }
        }
    }

    /// Arms a periodic checkpoint driver for `job` (the LSF-integration
    /// analogue): every `interval`, a coordinated checkpoint starts unless
    /// one is already running; the driver retires itself once the job
    /// finishes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn schedule_periodic_checkpoints(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) -> Result<(), ClusterError> {
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        self.queue.push(
            self.now + interval,
            Event::PeriodicCkpt {
                job: job.to_owned(),
                interval,
                mode,
                cow,
            },
        );
        Ok(())
    }

    pub(crate) fn on_periodic_ckpt(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) {
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            return; // driver retires
        }
        if !self.job_busy(job) {
            if let Err(e) = self.start_checkpoint_opts(job, mode, cow, None) {
                // A failed tick must not kill the periodic driver; record
                // the cause and try again next interval.
                let now = self.now;
                self.soft_faults.push((now, "periodic-checkpoint", e));
            }
        }
        self.queue.push(
            self.now + interval,
            Event::PeriodicCkpt {
                job: job.to_owned(),
                interval,
                mode,
                cow,
            },
        );
    }

    // ---- agent wiring -------------------------------------------------------

    pub(crate) fn on_agent_ctl(&mut self, node: usize, msg: CtlMsg, reply_to: SockAddr) {
        if !self.nodes[node].alive {
            return;
        }
        // Liveness probes answer from the node itself — a pong proves the
        // whole receive path (NIC, kernel, control CPU), not just the wire.
        if let CtlMsg::Ping { seq } = msg {
            let sock = self.nodes[node].agent_sock;
            let now = self.now;
            self.ctl()
                .send(node, sock, reply_to, &CtlMsg::Pong { seq }, now);
            self.postprocess(node);
            return;
        }
        if matches!(
            msg,
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                ..
            }
        ) && self.maybe_crash(node, ProtocolPoint::CheckpointReceived)
        {
            return;
        }
        if matches!(msg, CtlMsg::Start { .. }) {
            self.nodes[node].agent_coord_addr = Some(reply_to);
        }
        let op = msg.epoch();
        let actions = self.nodes[node].agent.on_ctl(msg, self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    pub(crate) fn on_agent_durable(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        let (job, image_epoch, images) = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.aborted {
                // The epoch was already discarded by the rollback; persisting
                // now would leave orphan images the store can never commit.
                o.pending_ckpt.remove(&node);
                return;
            }
            (
                o.job.clone(),
                o.image_epoch,
                o.pending_ckpt.remove(&node).unwrap_or_default(),
            )
        };
        let store = self.store(&job);
        for (pod_name, put) in images {
            store.put_prepared(&pod_name, image_epoch, put);
        }
        let actions = self.nodes[node].agent.on_local_durable(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    pub(crate) fn on_agent_local_done(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        // Materialize the pending work at its completion time.
        let (kind, cow) = match self.ops.get(&op) {
            Some(o) => (o.kind, o.cow),
            None => return,
        };
        // Fault plan: kill the node right at the protocol point — local
        // work finished but neither reported nor durable (checkpoint), or
        // mid-restore (restart).
        let point = match kind {
            OpKind::Checkpoint => ProtocolPoint::LocalDoneToDurable,
            OpKind::Restart => ProtocolPoint::Restore,
        };
        if self.maybe_crash(node, point) {
            return;
        }
        match kind {
            OpKind::Checkpoint if !cow => {
                let Some((job, image_epoch, images, aborted)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.image_epoch,
                        o.pending_ckpt.remove(&node).unwrap_or_default(),
                        o.aborted,
                    )
                }) else {
                    return;
                };
                if aborted {
                    // The epoch was already discarded by the abort path;
                    // persisting this straggler would strand orphan chunks
                    // and dangling refs the store can never commit.
                    return;
                }
                let store = self.store(&job);
                for (pod_name, put) in images {
                    store.put_prepared(&pod_name, image_epoch, put);
                }
            }
            OpKind::Checkpoint => {} // COW: images persist at AgentDurable
            OpKind::Restart => {
                let Some((job, images)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.pending_restore.remove(&node).unwrap_or_default(),
                    )
                }) else {
                    return;
                };
                for (pod_name, bytes) in images {
                    let image = match PodImage::decode(&bytes) {
                        Ok(img) => img,
                        Err(e) => {
                            self.fail_op(op, CruzError::BadImage(e));
                            return;
                        }
                    };
                    let slot = &mut self.nodes[node];
                    let pod_id = match slot.zap.restart_pod(&mut slot.kernel, &image, self.now) {
                        Ok(id) => id,
                        Err(e) => {
                            self.fail_op(op, CruzError::Zap(e));
                            return;
                        }
                    };
                    if let Some(jr) = self.jobs.get_mut(&job) {
                        if let Some(p) = jr.placement_mut(&pod_name) {
                            p.pod_id = Some(pod_id);
                            p.node = node;
                        }
                    }
                }
            }
        }
        let actions = self.nodes[node].agent.on_local_done(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    fn run_agent_actions(&mut self, node: usize, op: u64, actions: Vec<AgentAction>) {
        for action in actions {
            match action {
                AgentAction::DisableComm => self.set_comm(node, op, false),
                AgentAction::EnableComm => self.set_comm(node, op, true),
                AgentAction::BeginLocalCheckpoint { .. } => self.begin_local_checkpoint(node, op),
                AgentAction::BeginLocalRestore { .. } => self.begin_local_restore(node, op),
                AgentAction::ResumePods => self.resume_pods(node, op),
                AgentAction::RollBack { .. } => self.roll_back(node, op),
                AgentAction::Send(msg) => self.agent_send(node, msg),
            }
        }
    }

    pub(crate) fn job_pods_on_node(&self, op: u64, node: usize) -> Vec<PodPlacement> {
        let Some(o) = self.ops.get(&op) else {
            return Vec::new();
        };
        let Some(jr) = self.jobs.get(&o.job) else {
            return Vec::new();
        };
        jr.pods_on_node(node).into_iter().cloned().collect()
    }

    pub(crate) fn set_comm(&mut self, node: usize, op: u64, enabled: bool) {
        for p in self.job_pods_on_node(op, node) {
            let f = self.nodes[node].kernel.net.filter_mut();
            if enabled {
                f.remove_drop_rule(p.ip);
            } else {
                f.add_drop_rule(p.ip);
            }
        }
    }

    fn begin_local_checkpoint(&mut self, node: usize, op: u64) {
        let Some((cow, capture, base, job)) = self
            .ops
            .get(&op)
            .map(|o| (o.cow, o.capture, o.incremental_base, o.job.clone()))
        else {
            return;
        };
        if capture == CkptCaptureMode::Cow {
            self.begin_local_checkpoint_cow(node, op, base);
            return;
        }
        let pods = self.job_pods_on_node(op, node);
        let dedup = self.params.store.dedup;
        let store = self.store(&job);
        // The job's page-digest cache rides outside `self` for the loop; a
        // capture failure drops it, which doubles as invalidation.
        let mut cache = self.digest_caches.remove(&job).unwrap_or_default();
        let mut images: Vec<(String, PreparedPut)> = Vec::new();
        // Pipelined write-out schedule for the dedup path: each novel chunk
        // becomes available when capture has serialized up to it, and the
        // manifest when the pod's image is complete.
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let extracted = match base {
                Some(b) => slot
                    .zap
                    .checkpoint_pod_incremental(&mut slot.kernel, pod_id, self.now, b)
                    .map(|img| (img, Vec::new())),
                None if dedup => slot
                    .zap
                    .checkpoint_pod_dirty(&mut slot.kernel, pod_id, self.now),
                None => slot
                    .zap
                    .checkpoint_pod(&mut slot.kernel, pod_id, self.now)
                    .map(|img| (img, Vec::new())),
            };
            let (img, dirty) = match extracted {
                Ok(v) => v,
                Err(e) => {
                    self.fail_op(op, CruzError::Zap(e));
                    return;
                }
            };
            if dedup {
                let (bytes, cuts) = img.encode_with_page_cuts();
                let hints = cruz::pagecache::page_hints(&img, &cuts, &dirty);
                // Same pool as the COW drain: hash/encode shards across
                // `params.store.threads` workers, clean pages skip it.
                let prepared = store.prepare_chunked_hinted(
                    &bytes,
                    &hints,
                    &self.params.store,
                    &p.name,
                    &mut cache,
                );
                let pod_base = total;
                for (raw_end, stored) in prepared.novel_writes() {
                    let ready = self.now + self.params.extract_time(pod_base + raw_end);
                    batch.push((ready, stored));
                }
                total += bytes.len() as u64;
                batch.push((
                    self.now + self.params.extract_time(total),
                    prepared.manifest_len(),
                ));
                images.push((p.name.clone(), PreparedPut::Chunked(prepared)));
            } else {
                let bytes = img.encode();
                total += bytes.len() as u64;
                images.push((p.name.clone(), PreparedPut::Plain(bytes)));
            }
        }
        self.digest_caches.insert(job, cache);
        let t_extract = self.params.extract_time(total);
        let captured_at = self.now + t_extract;
        // Plain: one write of the whole image, starting once capture ends.
        // Dedup: one batched operation (single seek) streaming novel chunks
        // as capture produces them; the trailing manifest is ready at
        // capture end, so the batch never completes before `captured_at`.
        let durable_at = if dedup {
            self.nodes[node]
                .kernel
                .disk
                .submit_write_batch(self.now, &batch)
        } else {
            self.nodes[node]
                .kernel
                .disk
                .submit_write(captured_at, total)
        };
        if let Some(fault) = self.nodes[node].kernel.disk.take_write_fault() {
            self.apply_ckpt_disk_fault(op, fault, images);
            return;
        }
        if cow {
            // §5.2/COW: the blackout ends when the state is captured; the
            // disk write proceeds in the background and gates the commit.
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, captured_at));
            }
            self.queue
                .push(captured_at, Event::AgentLocalDone { node, op });
            self.queue
                .push(durable_at, Event::AgentDurable { node, op });
        } else {
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, durable_at));
            }
            self.queue
                .push(durable_at, Event::AgentLocalDone { node, op });
        }
    }

    /// An injected disk fault struck a checkpoint write: the write syscall
    /// reports the failure, durability is never claimed, and the operation
    /// force-aborts. A torn write additionally leaves a partial prefix of
    /// the image on disk — chunks with no manifest referencing them — which
    /// the abort path's orphan-chunk garbage collection reclaims.
    pub(crate) fn apply_ckpt_disk_fault(
        &mut self,
        op: u64,
        fault: WriteFault,
        images: Vec<(String, PreparedPut)>,
    ) {
        if let WriteFault::Torn(frac) = fault {
            if let Some(o) = self.ops.get(&op) {
                let store = self.store(&o.job.clone());
                for (pod_name, put) in &images {
                    store.put_torn(pod_name, o.image_epoch, put, frac);
                }
            }
        }
        self.fail_op(op, CruzError::Protocol("injected disk write fault"));
    }

    fn begin_local_restore(&mut self, node: usize, op: u64) {
        let (job, image_epoch) = match self.ops.get(&op) {
            Some(o) => (o.job.clone(), o.image_epoch),
            None => return,
        };
        let store = self.store(&job);
        let pods = self.job_pods_on_node(op, node);
        let mut images = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            // Walk the incremental chain down to the full base image; the
            // restore reads (and pays for) every link.
            let mut chain: Vec<Vec<u8>> = Vec::new();
            let mut epoch = Some(image_epoch);
            while let Some(e) = epoch {
                let Some(bytes) = store.get_image(&p.name, e) else {
                    break;
                };
                // Charge what the disk actually serves: the plain file, or
                // the manifest plus every distinct chunk it references.
                total += store.stored_len(&p.name, e).unwrap_or(bytes.len() as u64);
                let base = match PodImage::decode(&bytes) {
                    Ok(img) => img.base_epoch,
                    Err(e) => {
                        self.fail_op(op, CruzError::BadImage(e));
                        return;
                    }
                };
                chain.push(bytes);
                epoch = base;
            }
            if chain.is_empty() {
                continue;
            }
            // Fold base-first. The chain is non-empty, so the fold seed is
            // the bottom (full) image.
            let merged = chain
                .pop()
                .ok_or(CruzError::Protocol("image chain emptied mid-fold"))
                .and_then(|base_bytes| PodImage::decode(&base_bytes).map_err(CruzError::from))
                .and_then(|mut merged| {
                    if merged.base_epoch.is_some() {
                        return Err(CruzError::Protocol(
                            "image chain does not bottom out at a full image",
                        ));
                    }
                    while let Some(delta_bytes) = chain.pop() {
                        let delta = PodImage::decode(&delta_bytes)?;
                        merged = merged.apply_delta(&delta)?;
                    }
                    Ok(merged)
                });
            let merged = match merged {
                Ok(m) => m,
                Err(e) => {
                    self.fail_op(op, e);
                    return;
                }
            };
            images.push((p.name.clone(), merged.encode()));
        }
        let done_at = self.nodes[node].kernel.disk.submit_read(self.now, total);
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_restore.insert(node, images);
            o.local_ops.insert(node, (self.now, done_at));
        }
        self.queue.push(done_at, Event::AgentLocalDone { node, op });
    }

    pub(crate) fn resume_pods(&mut self, node: usize, op: u64) {
        for p in self.job_pods_on_node(op, node) {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let resumed = slot.zap.resume_pod(&mut slot.kernel, pod_id, self.now);
            if let Err(e) = resumed {
                // A pod that will not resume stays frozen; surface the
                // cause instead of silently dropping it.
                let now = self.now;
                self.soft_faults.push((now, "resume-pod", e.into()));
            }
        }
        let now = self.now;
        if let Some(o) = self.ops.get_mut(&op) {
            o.resumed_at.entry(node).or_insert(now);
        }
    }

    fn roll_back(&mut self, node: usize, op: u64) {
        // Abort path: disarm any undrained COW snapshot, resume pods, lift
        // filters, discard this epoch's images.
        if let Some(o) = self.ops.get_mut(&op) {
            if let Some((_, armed)) = o.pending_arm.remove(&node) {
                for (_, a) in armed {
                    a.cancel();
                }
            }
        }
        self.resume_pods(node, op);
        self.set_comm(node, op, true);
        if let Some(o) = self.ops.get(&op) {
            // Only a checkpoint abort owns its epoch. An aborted *restart*
            // is reading a committed epoch — discarding it would destroy
            // the very checkpoint recovery needs to retry from.
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
            }
        }
    }

    fn agent_send(&mut self, node: usize, msg: CtlMsg) {
        let Some(addr) = self.nodes[node].agent_coord_addr else {
            return;
        };
        let sock = self.nodes[node].agent_sock;
        let now = self.now;
        self.ctl().send(node, sock, addr, &msg, now);
    }

    // ---- coordinator wiring -------------------------------------------------

    pub(crate) fn on_coord_ctl(&mut self, op: u64, from: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_message(from, msg, self.now);
        let job = o.job.clone();
        let image_epoch = o.image_epoch;
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            match fx {
                CoordEffect::Commit { .. } => {
                    let store = self.store(&job);
                    store.commit(image_epoch);
                    if self.params.prune_old_epochs {
                        store.prune_below(image_epoch);
                    }
                }
                CoordEffect::Complete { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.complete = true;
                    }
                    self.op_completed(op);
                }
                CoordEffect::Aborted { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.aborted = true;
                    }
                    self.op_aborted_cleanup(op);
                }
            }
        }
    }

    pub(crate) fn on_coord_send(&mut self, op: u64, to: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get(&op) else {
            return;
        };
        let node = o.agents_nodes[to];
        let coord_node = o.coord_node;
        let sock = o.coord_sock;
        let now = self.now;
        let mut ctl = self.ctl();
        let dst = ctl.agent_addr(node);
        ctl.send(coord_node, sock, dst, &msg, now);
        self.postprocess(coord_node);
    }

    pub(crate) fn on_coord_retry(&mut self, op: u64, attempt: u32) {
        let Some(policy) = self.params.ctl_retry else {
            return;
        };
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            // An op that settled (or was force-aborted) stops retrying:
            // backed-off retransmissions never outlive their operation.
            if o.complete || o.aborted {
                return;
            }
            o.coord.on_retry(self.now)
        };
        self.schedule_coord_sends(op, msgs);
        let next = attempt + 1;
        if let Some(d) = policy.delay(next) {
            self.queue
                .push(self.now + d, Event::CoordRetry { op, attempt: next });
        }
    }

    pub(crate) fn on_coord_timeout(&mut self, op: u64) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_timeout(self.now);
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            if let CoordEffect::Aborted { .. } = fx {
                if let Some(o) = self.ops.get_mut(&op) {
                    o.aborted = true;
                }
                self.op_aborted_cleanup(op);
            }
        }
    }

    // ---- receive pumps ------------------------------------------------------

    /// Drains a node's agent endpoint: each decodable control frame costs
    /// one control-CPU slot and becomes an [`Event::AgentCtl`].
    pub(crate) fn pump_agent(&mut self, n: usize) {
        let sock = self.nodes[n].agent_sock;
        while let Some((from, msg)) = self.ctl().recv(n, sock) {
            let mut at = self.ctl_slot(n);
            // Start/continue handling configures the packet filter and
            // signals pods before anything else runs.
            if matches!(msg, CtlMsg::Start { .. } | CtlMsg::Continue { .. }) {
                at += self.params.agent_op_cpu;
                self.nodes[n].ctl_cpu_free = at;
            }
            self.queue.push(
                at,
                Event::AgentCtl {
                    node: n,
                    msg,
                    reply_to: from,
                },
            );
        }
    }

    /// Drains coordinator sockets hosted on a node: each agent reply costs
    /// one control-CPU slot and becomes an [`Event::CoordCtl`].
    pub(crate) fn pump_coord(&mut self, n: usize) {
        let op_socks: Vec<(u64, CtlSock)> = self
            .ops
            .iter()
            .filter(|(_, o)| o.coord_node == n && !o.complete && !o.aborted)
            .map(|(&id, o)| (id, o.coord_sock))
            .collect();
        for (op, sock) in op_socks {
            while let Some((from, msg)) = self.ctl().recv(n, sock) {
                // Identify the agent by source address.
                let Some(agent_idx) = self.ops.get(&op).and_then(|o| {
                    o.agents_nodes
                        .iter()
                        .position(|&an| World::node_ip(an) == from.ip)
                }) else {
                    continue;
                };
                let at = self.ctl_slot(n);
                self.queue.push(
                    at,
                    Event::CoordCtl {
                        op,
                        from: agent_idx,
                        msg,
                    },
                );
            }
        }
    }
}
