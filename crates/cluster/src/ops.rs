//! Coordinated-operation runtime, coordinator side: install, message
//! flow, retry/timeout, abort and completion bookkeeping.
//!
//! This layer owns the lifetime of one coordinated checkpoint or restart:
//! binding the coordinator's control socket (through the
//! [`crate::transport::CtlTransport`] seam), serializing its sends on the
//! control-plane CPU, and tearing the operation down on commit, abort or
//! injected failure. Every future action is registered through the
//! [`crate::runtime::Timers`] seam rather than scheduled as a raw DES
//! event, so the same code drives both the simulated and the real-socket
//! runtime. The agent half — executing protocol actions against the Zap
//! layer and the disk — is in [`crate::ops_agent`]; the COW arm/drain
//! schedule is in [`crate::drain`].

use std::collections::BTreeMap;

use des::{SimDuration, SimTime};
use zap::ArmedPodCheckpoint;

use cruz::coordinator::{CoordEffect, CoordStats, Coordinator};
use cruz::error::CruzError;
use cruz::proto::{CtlMsg, OpKind, ProtocolMode};
use cruz::store::PreparedPut;

use crate::params::CkptCaptureMode;
use crate::recovery::RecoveryOutcome;
use crate::runtime::{Deadline, Timers};
use crate::state::{ClusterError, World};
use crate::transport::{CtlSock, CtlTransport};

/// Per-operation state the engine tracks from install to completion.
pub(crate) struct OpRuntime {
    pub(crate) coord: Coordinator,
    pub(crate) kind: OpKind,
    pub(crate) cow: bool,
    /// How this checkpoint captures memory (stop-the-world or COW arm/drain).
    pub(crate) capture: CkptCaptureMode,
    /// Base epoch for incremental image capture (`None` = full).
    pub(crate) incremental_base: Option<u64>,
    pub(crate) job: String,
    /// Epoch used for image storage (for restarts: the epoch restored).
    pub(crate) image_epoch: u64,
    pub(crate) coord_node: usize,
    pub(crate) coord_sock: CtlSock,
    pub(crate) agents_nodes: Vec<usize>,
    pub(crate) pending_ckpt: BTreeMap<usize, Vec<(String, PreparedPut)>>,
    /// COW capture: snapshots armed at freeze, awaiting their background
    /// drain — (arm-complete time, per-pod armed checkpoints).
    pub(crate) pending_arm: BTreeMap<usize, (SimTime, Vec<(String, ArmedPodCheckpoint)>)>,
    /// COW capture: pre-image bytes copied on each node because post-resume
    /// guest writes raced the drain.
    pub(crate) cow_copied: BTreeMap<usize, u64>,
    pub(crate) pending_restore: BTreeMap<usize, Vec<(String, Vec<u8>)>>,
    pub(crate) local_ops: BTreeMap<usize, (SimTime, SimTime)>,
    pub(crate) resumed_at: BTreeMap<usize, SimTime>,
    pub(crate) complete: bool,
    pub(crate) aborted: bool,
    /// First control-plane failure hit while driving this operation; set
    /// when the op is force-aborted instead of panicking the world.
    pub(crate) error: Option<CruzError>,
}

/// Options of a coordinated checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CkptOptions {
    /// Protocol variant (Fig. 2 blocking or Fig. 4 optimized).
    pub mode: ProtocolMode,
    /// §5.2 copy-on-write: blackout covers capture only; `durable` gates
    /// the commit.
    pub cow: bool,
    /// Incremental: save only pages dirtied since the job's latest
    /// committed epoch (falls back to full when none exists).
    pub incremental: bool,
    /// Memory-capture mode override; `None` uses `ClusterParams::capture`.
    /// [`CkptCaptureMode::Cow`] shrinks the freeze to the snapshot-arm
    /// window and implies the §5.2 durability split (`cow` above).
    pub capture: Option<CkptCaptureMode>,
    /// Failure-detection timeout (abort + rollback on expiry).
    pub timeout: Option<SimDuration>,
}

impl Default for CkptOptions {
    fn default() -> Self {
        CkptOptions {
            mode: ProtocolMode::Blocking,
            cow: false,
            incremental: false,
            capture: None,
            timeout: None,
        }
    }
}

/// A report of one finished (or running) coordinated operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind.
    pub kind: OpKind,
    /// Coordinator timing observations.
    pub stats: CoordStats,
    /// Per-node local save/restore windows: (node, start, end).
    pub local_ops: Vec<(usize, SimTime, SimTime)>,
    /// When each node's pods resumed execution.
    pub resumed_at: Vec<(usize, SimTime)>,
    /// Whether the operation completed.
    pub complete: bool,
    /// Whether it was aborted.
    pub aborted: bool,
    /// COW capture only: per-node pre-image bytes copied because guest
    /// writes raced the background drain — the bounded extra cost COW pays
    /// for shrinking the freeze window.
    pub cow_copied_bytes: Vec<(usize, u64)>,
}

impl OpReport {
    /// How long each node's pods were frozen: local-op start to resume.
    /// The quantity the Fig. 4 optimization shrinks on fast-saving nodes.
    pub fn blocked_durations(&self) -> Vec<(usize, SimDuration)> {
        self.local_ops
            .iter()
            .filter_map(|&(n, start, _)| {
                let resumed = self.resumed_at.iter().find(|(rn, _)| *rn == n)?.1;
                Some((n, resumed.saturating_duration_since(start)))
            })
            .collect()
    }

    /// The Fig. 5(b) quantity: total checkpoint latency minus the largest
    /// local save time — what coordination itself costs.
    pub fn coordination_overhead(&self) -> Option<SimDuration> {
        let latency = self.stats.checkpoint_latency()?;
        let max_local = self
            .local_ops
            .iter()
            .map(|(_, s, e)| e.duration_since(*s))
            .max()?;
        Some(latency.saturating_sub(max_local))
    }
}

impl World {
    // ---- coordinated operations -------------------------------------------

    /// Starts a coordinated checkpoint of `job`. Returns the operation id
    /// (also the stored epoch).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_opts(job, mode, false, timeout)
    }

    /// Like [`World::start_checkpoint`], with the §5.2 copy-on-write
    /// optimization selectable: when `cow` is true the blackout covers only
    /// state *capture*; image writes complete in the background and gate
    /// the commit record via `durable` messages.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_opts(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        cow: bool,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_with(
            job,
            CkptOptions {
                mode,
                cow,
                timeout,
                ..CkptOptions::default()
            },
        )
    }

    /// The fully-general checkpoint entry point.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_with(
        &mut self,
        job: &str,
        opts: CkptOptions,
    ) -> Result<u64, ClusterError> {
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        let jr = self.jobs.get(job).ok_or(ClusterError::NoSuchJob)?;
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        // The dedup store makes every epoch full-fidelity while writing only
        // novel chunks, so it subsumes incremental delta chains.
        let incremental_base = if opts.incremental && !self.params.store.dedup {
            self.store(job).latest_committed_epoch()
        } else {
            None
        };
        let capture = opts.capture.unwrap_or(self.params.capture);
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Checkpoint,
            opts.mode,
            op,
            (0..agents_nodes.len()).collect(),
        );
        // With recovery on, every operation gets a failure-detection
        // timeout even if the caller set none: a crashed participant must
        // abort the op, not hang it forever.
        let timeout = opts.timeout.or_else(|| {
            self.params
                .recovery
                .enabled
                .then_some(self.params.recovery.op_timeout)
        });
        if let Some(t) = timeout {
            coord = coord.with_timeout(t);
        }
        // COW capture needs the §5.2 message flow: `done` at arm-complete
        // resumes pods early, `durable` after the background drain gates the
        // commit record.
        if opts.cow || capture == CkptCaptureMode::Cow {
            coord = coord.with_cow();
        }
        self.install_op_inc(
            op,
            op,
            OpKind::Checkpoint,
            job,
            coord_node,
            agents_nodes,
            coord,
            incremental_base,
            capture,
        )?;
        Ok(op)
    }

    /// Starts a coordinated restart of `job` from a committed epoch. The
    /// `placement` list re-homes pods (pod name → node); unmentioned pods
    /// keep their previous node assignment.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`], [`ClusterError::NoSuchEpoch`].
    pub fn start_restart(
        &mut self,
        job: &str,
        epoch: u64,
        placement: &[(String, usize)],
        _mode: ProtocolMode,
    ) -> Result<u64, ClusterError> {
        if !self.store(job).is_committed(epoch) {
            return Err(ClusterError::NoSuchEpoch(epoch));
        }
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        // Restored pods get their memory from the stored epoch, not from
        // the captures the digest cache remembers.
        self.digest_caches.remove(job);
        // Tear down surviving pods first (restart-in-place, or rolling a
        // live job back to an earlier epoch): their addresses must be free
        // before the restore recreates them.
        let survivors: Vec<(usize, zap::pod::PodId)> = self
            .jobs
            .get(job)
            .ok_or(ClusterError::NoSuchJob)?
            .placements
            .iter()
            .filter_map(|p| {
                let pod_id = p.pod_id?;
                self.nodes[p.node].alive.then_some((p.node, pod_id))
            })
            .collect();
        for (node, pod_id) in survivors {
            // A survivor that refuses teardown would leave its addresses
            // bound and wreck the restore; abort the restart instead.
            let slot = &mut self.nodes[node];
            slot.zap.destroy_pod(&mut slot.kernel, pod_id)?;
            self.postprocess(node);
        }
        let jr = self.jobs.get_mut(job).ok_or(ClusterError::NoSuchJob)?;
        for (pod, node) in placement {
            if let Some(p) = jr.placement_mut(pod) {
                p.node = *node;
            }
        }
        for p in jr.placements.iter_mut() {
            p.pod_id = None; // instantiated at restore time
        }
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Restart,
            ProtocolMode::Blocking,
            op,
            (0..agents_nodes.len()).collect(),
        );
        if self.params.recovery.enabled {
            coord = coord.with_timeout(self.params.recovery.op_timeout);
        }
        // `_mode` is accepted for API symmetry only: a restart always
        // blocks until every node restored.
        self.install_op(
            op,
            epoch,
            OpKind::Restart,
            job,
            coord_node,
            agents_nodes,
            coord,
        )?;
        Ok(op)
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        coord: Coordinator,
    ) -> Result<(), ClusterError> {
        self.install_op_inc(
            op,
            image_epoch,
            kind,
            job,
            coord_node,
            agents_nodes,
            coord,
            None,
            CkptCaptureMode::StopTheWorld,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op_inc(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        mut coord: Coordinator,
        incremental_base: Option<u64>,
        capture: CkptCaptureMode,
    ) -> Result<(), ClusterError> {
        let coord_sock = self.bind_ctl_sock(coord_node)?;
        let (msgs, _) = coord.start(self.now);
        let deadline = coord.deadline();
        let cow = coord.cow();
        self.ops.insert(
            op,
            OpRuntime {
                coord,
                kind,
                cow,
                capture,
                incremental_base,
                job: job.to_owned(),
                image_epoch,
                coord_node,
                coord_sock,
                agents_nodes,
                pending_ckpt: BTreeMap::new(),
                pending_arm: BTreeMap::new(),
                cow_copied: BTreeMap::new(),
                pending_restore: BTreeMap::new(),
                local_ops: BTreeMap::new(),
                resumed_at: BTreeMap::new(),
                complete: false,
                aborted: false,
                error: None,
            },
        );
        self.schedule_coord_sends(op, msgs);
        if let Some(d) = deadline {
            self.arm(d.into(), Deadline::CoordTimeout { op });
        }
        if let Some(p) = self.params.ctl_retry {
            if let Some(d) = p.delay(0) {
                self.arm(
                    (self.now + d).into(),
                    Deadline::CoordRetry { op, attempt: 0 },
                );
            }
        }
        Ok(())
    }

    /// Binds an ephemeral control-plane endpoint on a node, through the
    /// transport seam.
    pub(crate) fn bind_ctl_sock(&mut self, node: usize) -> Result<CtlSock, ClusterError> {
        Ok(self.ctl().bind(node, 0)?)
    }

    pub(crate) fn schedule_coord_sends(&mut self, op: u64, msgs: Vec<(usize, CtlMsg)>) {
        // The coordinator CPU serializes message transmission. Together with
        // the serialized receive path in `poll_ctl`, this is the
        // N-proportional component of the Fig. 5(b) overhead.
        let Some(coord_node) = self.ops.get(&op).map(|o| o.coord_node) else {
            return;
        };
        for (agent, msg) in msgs {
            let at = self.ctl_slot(coord_node);
            self.arm(at.into(), Deadline::CoordSend { op, to: agent, msg });
        }
    }

    /// A report of an operation's progress/outcome.
    pub fn op_report(&self, op: u64) -> Option<OpReport> {
        let o = self.ops.get(&op)?;
        Some(OpReport {
            kind: o.kind,
            stats: o.coord.stats.clone(),
            local_ops: o.local_ops.iter().map(|(&n, &(s, e))| (n, s, e)).collect(),
            resumed_at: o.resumed_at.iter().map(|(&n, &t)| (n, t)).collect(),
            complete: o.complete,
            aborted: o.aborted,
            cow_copied_bytes: o.cow_copied.iter().map(|(&n, &b)| (n, b)).collect(),
        })
    }

    /// True once the operation completed (successfully or by abort).
    pub fn op_finished(&self, op: u64) -> bool {
        self.ops
            .get(&op)
            .map(|o| o.complete || o.aborted)
            .unwrap_or(false)
    }

    /// The control-plane error that force-aborted an operation, if any.
    pub fn op_error(&self, op: u64) -> Option<&CruzError> {
        self.ops.get(&op)?.error.as_ref()
    }

    /// Migrations whose destination refused the restore: (job, pod, error).
    pub fn migration_failures(&self) -> &[(String, String, CruzError)] {
        &self.migration_failures
    }

    /// Force-aborts an operation on a control-plane failure: the op is
    /// marked aborted, the error recorded, abort messages broadcast to
    /// every participant (so frozen pods resume rather than hang), and the
    /// epoch's partial images discarded. One corrupt image or refused Zap
    /// action kills one operation, not the whole world.
    pub(crate) fn fail_op(&mut self, op: u64, err: CruzError) {
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.error.is_none() {
                o.error = Some(err);
            }
            if o.complete || o.aborted {
                return;
            }
            o.aborted = true;
            o.coord.force_abort().0
        };
        self.schedule_coord_sends(op, msgs);
        self.op_aborted_cleanup(op);
    }

    /// Post-abort bookkeeping shared by every abort path: a checkpoint's
    /// uncommitted epoch is discarded and any chunks stranded by a torn or
    /// interrupted write are reclaimed; a pending recovery pass waiting on
    /// this op is marked failed.
    pub(crate) fn op_aborted_cleanup(&mut self, op: u64) {
        if let Some(o) = self.ops.get(&op) {
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
                store.gc_orphan_chunks();
            }
            // An aborted op may have re-baselined dirty tracking (e.g. a
            // COW arm that never drained) without a completed prepare, so
            // remembered page digests can no longer be trusted.
            let job = o.job.clone();
            self.digest_caches.remove(&job);
        }
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                if r.outcome == RecoveryOutcome::InProgress {
                    r.outcome = RecoveryOutcome::Failed;
                }
            }
        }
    }

    /// Stamps a recovery pass whose restart operation just completed.
    fn op_completed(&mut self, op: u64) {
        let now = self.now;
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                r.recovered_at = Some(now);
                r.outcome = RecoveryOutcome::Recovered;
            }
        }
    }

    /// Arms a periodic checkpoint driver for `job` (the LSF-integration
    /// analogue): every `interval`, a coordinated checkpoint starts unless
    /// one is already running; the driver retires itself once the job
    /// finishes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn schedule_periodic_checkpoints(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) -> Result<(), ClusterError> {
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        self.arm(
            (self.now + interval).into(),
            Deadline::PeriodicCkpt {
                job: job.to_owned(),
                interval: interval.into(),
                mode,
                cow,
            },
        );
        Ok(())
    }

    pub(crate) fn on_periodic_ckpt(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) {
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            return; // driver retires
        }
        if !self.job_busy(job) {
            if let Err(e) = self.start_checkpoint_opts(job, mode, cow, None) {
                // A failed tick must not kill the periodic driver; record
                // the cause and try again next interval.
                let now = self.now;
                self.soft_faults.push((now, "periodic-checkpoint", e));
            }
        }
        self.arm(
            (self.now + interval).into(),
            Deadline::PeriodicCkpt {
                job: job.to_owned(),
                interval: interval.into(),
                mode,
                cow,
            },
        );
    }

    // ---- coordinator wiring -------------------------------------------------

    pub(crate) fn on_coord_ctl(&mut self, op: u64, from: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_message(from, msg, self.now);
        let job = o.job.clone();
        let image_epoch = o.image_epoch;
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            match fx {
                CoordEffect::Commit { .. } => {
                    let store = self.store(&job);
                    store.commit(image_epoch);
                    if self.params.prune_old_epochs {
                        store.prune_below(image_epoch);
                        // With retention pruning on, only the newest epoch
                        // survives — compact the replica logs down to it so
                        // write amplification tracks the retained state,
                        // not the job's age. No-op at k = 1.
                        store.compact_logs();
                    }
                }
                CoordEffect::Complete { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.complete = true;
                    }
                    self.op_completed(op);
                }
                CoordEffect::Aborted { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.aborted = true;
                    }
                    self.op_aborted_cleanup(op);
                }
            }
        }
    }

    pub(crate) fn on_coord_send(&mut self, op: u64, to: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get(&op) else {
            return;
        };
        let node = o.agents_nodes[to];
        let coord_node = o.coord_node;
        let sock = o.coord_sock;
        let now = self.now;
        let mut ctl = self.ctl();
        let dst = ctl.agent_addr(node);
        ctl.send(coord_node, sock, dst, &msg, now.into());
        self.postprocess(coord_node);
    }

    pub(crate) fn on_coord_retry(&mut self, op: u64, attempt: u32) {
        let Some(policy) = self.params.ctl_retry else {
            return;
        };
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            // An op that settled (or was force-aborted) stops retrying:
            // backed-off retransmissions never outlive their operation.
            if o.complete || o.aborted {
                return;
            }
            o.coord.on_retry(self.now)
        };
        self.schedule_coord_sends(op, msgs);
        let next = attempt + 1;
        if let Some(d) = policy.delay(next) {
            self.arm(
                (self.now + d).into(),
                Deadline::CoordRetry { op, attempt: next },
            );
        }
    }

    pub(crate) fn on_coord_timeout(&mut self, op: u64) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_timeout(self.now);
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            if let CoordEffect::Aborted { .. } = fx {
                if let Some(o) = self.ops.get_mut(&op) {
                    o.aborted = true;
                }
                self.op_aborted_cleanup(op);
            }
        }
    }

    /// Drains coordinator sockets hosted on a node: each agent reply costs
    /// one control-CPU slot and becomes a [`Deadline::CoordCtl`] firing.
    pub(crate) fn pump_coord(&mut self, n: usize) {
        let op_socks: Vec<(u64, CtlSock)> = self
            .ops
            .iter()
            .filter(|(_, o)| o.coord_node == n && !o.complete && !o.aborted)
            .map(|(&id, o)| (id, o.coord_sock))
            .collect();
        for (op, sock) in op_socks {
            while let Some((from, msg)) = self.ctl().recv(n, sock) {
                // Identify the agent by the sender's node index.
                let Some(agent_idx) = self.ops.get(&op).and_then(|o| {
                    o.agents_nodes
                        .iter()
                        .position(|&an| an == from.node as usize)
                }) else {
                    continue;
                };
                let at = self.ctl_slot(n);
                self.arm(
                    at.into(),
                    Deadline::CoordCtl {
                        op,
                        from: agent_idx,
                        msg,
                    },
                );
            }
        }
    }
}
