//! Deterministic fault-injection plans for the cluster world.
//!
//! A [`FaultPlan`] names, ahead of time, every failure a run will suffer:
//! node crashes pinned to protocol points, disk-write faults pinned to the
//! n-th write on a node, and control-frame drop/duplicate/reorder
//! probabilities. Plans are either hand-built or drawn from a seed with
//! [`FaultPlan::random`], and serialize byte-exactly so a plan can be
//! stored next to a trace and replayed later: the same plan against the
//! same world seed reproduces the identical event trace.

use des::rng::SimRng;
use des::SimDuration;
use simnet::fault::FrameFaults;
use simos::disk::WriteFault;

pub use cruz::replog::{ReplicaFault, ReplicaFaultKind, StoreOpPoint};

/// Named points in the checkpoint/restore protocol where a crash can be
/// injected. Each is counted per node, so `nth` selects which occurrence
/// of the point actually kills the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolPoint {
    /// The agent just received a `start(checkpoint)` message and has not
    /// yet acted on it.
    CheckpointReceived = 0,
    /// The agent finished its local save but the image is not yet durable
    /// (the window the paper's two-phase commit exists to cover).
    LocalDoneToDurable = 1,
    /// Mid copy-on-write drain: pods already resumed, pages still flowing
    /// to the store.
    CowDrain = 2,
    /// Mid restore: the agent is rebuilding pods from a stored image.
    Restore = 3,
}

impl ProtocolPoint {
    /// All points, in wire-tag order.
    pub const ALL: [ProtocolPoint; 4] = [
        ProtocolPoint::CheckpointReceived,
        ProtocolPoint::LocalDoneToDurable,
        ProtocolPoint::CowDrain,
        ProtocolPoint::Restore,
    ];

    fn from_tag(tag: u8) -> Option<ProtocolPoint> {
        ProtocolPoint::ALL.get(tag as usize).copied()
    }
}

/// Crash one node the `nth` time it reaches `point` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Node to kill.
    pub node: usize,
    /// Protocol point that triggers the crash.
    pub point: ProtocolPoint,
    /// Which occurrence of the point fires the crash (0 = first).
    pub nth: u32,
}

/// Fail or tear one disk write on a node, counted from plan installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// Node whose checkpoint disk misbehaves.
    pub node: usize,
    /// Which write operation (0-based from installation) is struck.
    pub nth_write: u64,
    /// Outright failure or a torn (partial) write.
    pub fault: WriteFault,
}

/// A complete, replayable description of every fault a run will inject.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG stream (frame-fate draws). Kept in
    /// the plan so a serialized plan replays byte-for-byte.
    pub seed: u64,
    /// Node crashes pinned to protocol points.
    pub crashes: Vec<CrashFault>,
    /// Disk-write faults pinned to write ordinals.
    pub disk: Vec<DiskFault>,
    /// Control-frame drop/duplicate/reorder probabilities.
    pub frames: FrameFaults,
    /// Checkpoint-store replica faults (crash, torn log append, torn chunk
    /// write) pinned to store-protocol points. Introduced by format
    /// version 2; version-1 plans decode with this empty.
    pub replicas: Vec<ReplicaFault>,
}

const MAGIC: &[u8; 4] = b"CRZF";
const VERSION: u16 = 2;

impl FaultPlan {
    /// An empty plan: installs the fault plane (and its RNG stream) without
    /// scheduling any faults.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            crashes: Vec::new(),
            disk: Vec::new(),
            frames: FrameFaults::none(),
            replicas: Vec::new(),
        }
    }

    /// Draws a random plan from `seed`. Crash and disk faults target nodes
    /// `0..nodes` (pass the app-node count so coordinators and spares stay
    /// up); frame faults strike every node. The same `(seed, nodes)` pair
    /// always yields the same plan.
    pub fn random(seed: u64, nodes: usize) -> FaultPlan {
        let mut rng = SimRng::from_seed(seed);
        let n = nodes.max(1) as u64;
        let crashes = (0..rng.range(0, 3))
            .map(|_| CrashFault {
                node: rng.range(0, n) as usize,
                point: ProtocolPoint::from_tag(rng.range(0, 4) as u8)
                    .unwrap_or(ProtocolPoint::CheckpointReceived),
                nth: rng.range(0, 2) as u32,
            })
            .collect();
        let disk = (0..rng.range(0, 3))
            .map(|_| DiskFault {
                node: rng.range(0, n) as usize,
                nth_write: rng.range(0, 6),
                fault: if rng.chance(0.5) {
                    WriteFault::Fail
                } else {
                    WriteFault::Torn(rng.range(1, 256) as u8)
                },
            })
            .collect();
        let frames = if rng.chance(0.5) {
            FrameFaults::none()
        } else {
            FrameFaults {
                drop: rng.unit_f64() * 0.02,
                duplicate: rng.unit_f64() * 0.02,
                reorder: rng.unit_f64() * 0.02,
                delay: SimDuration::from_micros(rng.range(50, 800)),
            }
        };
        FaultPlan {
            seed,
            crashes,
            disk,
            frames,
            replicas: Vec::new(),
        }
    }

    /// Serializes the plan byte-exactly (magic `CRZF`, version 2). The
    /// replica-fault section always travels, even when empty — the
    /// version bump pays for a fixed layout, while [`FaultPlan::decode`]
    /// keeps accepting version-1 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(MAGIC);
        v.extend_from_slice(&VERSION.to_le_bytes());
        v.extend_from_slice(&self.seed.to_le_bytes());
        v.extend_from_slice(&(self.crashes.len() as u32).to_le_bytes());
        for c in &self.crashes {
            v.extend_from_slice(&(c.node as u32).to_le_bytes());
            v.push(c.point as u8);
            v.extend_from_slice(&c.nth.to_le_bytes());
        }
        v.extend_from_slice(&(self.disk.len() as u32).to_le_bytes());
        for d in &self.disk {
            v.extend_from_slice(&(d.node as u32).to_le_bytes());
            v.extend_from_slice(&d.nth_write.to_le_bytes());
            match d.fault {
                WriteFault::Fail => v.extend_from_slice(&[0, 0]),
                WriteFault::Torn(frac) => v.extend_from_slice(&[1, frac]),
            }
        }
        for p in [self.frames.drop, self.frames.duplicate, self.frames.reorder] {
            v.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        v.extend_from_slice(&self.frames.delay.as_nanos().to_le_bytes());
        v.extend_from_slice(&(self.replicas.len() as u32).to_le_bytes());
        for r in &self.replicas {
            v.extend_from_slice(&(r.replica as u32).to_le_bytes());
            v.push(r.point.tag());
            v.extend_from_slice(&r.nth.to_le_bytes());
            match r.kind {
                ReplicaFaultKind::Crash => v.extend_from_slice(&[0, 0]),
                ReplicaFaultKind::TornLog(frac) => v.extend_from_slice(&[1, frac]),
                ReplicaFaultKind::TornChunk(frac) => v.extend_from_slice(&[2, frac]),
            }
        }
        v
    }

    /// Decodes a plan produced by [`FaultPlan::encode`]. Returns `None` on
    /// any malformed input.
    pub fn decode(bytes: &[u8]) -> Option<FaultPlan> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let u32_at = |at: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?))
        };
        let u64_at = |at: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(at, 8)?.try_into().ok()?))
        };
        if take(&mut at, 4)? != MAGIC {
            return None;
        }
        // Version 1 predates the replica-fault section; its bytes end at
        // the frame-delay field and decode to an empty `replicas`.
        let version = u16::from_le_bytes(take(&mut at, 2)?.try_into().ok()?);
        if version != 1 && version != VERSION {
            return None;
        }
        let seed = u64_at(&mut at)?;
        let ncrash = u32_at(&mut at)?;
        let mut crashes = Vec::with_capacity(ncrash as usize);
        for _ in 0..ncrash {
            let node = u32_at(&mut at)? as usize;
            let point = ProtocolPoint::from_tag(take(&mut at, 1)?[0])?;
            let nth = u32_at(&mut at)?;
            crashes.push(CrashFault { node, point, nth });
        }
        let ndisk = u32_at(&mut at)?;
        let mut disk = Vec::with_capacity(ndisk as usize);
        for _ in 0..ndisk {
            let node = u32_at(&mut at)? as usize;
            let nth_write = u64_at(&mut at)?;
            let kind = take(&mut at, 2)?;
            let fault = match kind[0] {
                0 => WriteFault::Fail,
                1 => WriteFault::Torn(kind[1]),
                _ => return None,
            };
            disk.push(DiskFault {
                node,
                nth_write,
                fault,
            });
        }
        // Probabilities travel as raw bits, so the codec is byte-exact and
        // replay never re-parses a float. cruz-lint: allow(float-in-sim)
        let drop = f64::from_bits(u64_at(&mut at)?);
        let duplicate = f64::from_bits(u64_at(&mut at)?); // cruz-lint: allow(float-in-sim)
        let reorder = f64::from_bits(u64_at(&mut at)?); // cruz-lint: allow(float-in-sim)
        let delay = SimDuration::from_nanos(u64_at(&mut at)?);
        let mut replicas = Vec::new();
        if version >= 2 {
            let nrep = u32_at(&mut at)?;
            for _ in 0..nrep {
                let replica = u32_at(&mut at)? as usize;
                let point = StoreOpPoint::from_tag(take(&mut at, 1)?[0])?;
                let nth = u32_at(&mut at)?;
                let kind = take(&mut at, 2)?;
                let kind = match kind[0] {
                    0 => ReplicaFaultKind::Crash,
                    1 => ReplicaFaultKind::TornLog(kind[1]),
                    2 => ReplicaFaultKind::TornChunk(kind[1]),
                    _ => return None,
                };
                replicas.push(ReplicaFault {
                    replica,
                    point,
                    nth,
                    kind,
                });
            }
        }
        if at != bytes.len() {
            return None;
        }
        Some(FaultPlan {
            seed,
            crashes,
            disk,
            frames: FrameFaults {
                drop,
                duplicate,
                reorder,
                delay,
            },
            replicas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 4);
        let b = FaultPlan::random(7, 4);
        assert_eq!(a, b);
        // Different seeds should eventually differ.
        assert!((0..32).any(|s| FaultPlan::random(s, 4) != a));
    }

    #[test]
    fn encode_decode_round_trips_byte_exactly() {
        for seed in 0..24 {
            let plan = FaultPlan::random(seed, 6);
            let bytes = plan.encode();
            let back = FaultPlan::decode(&bytes).expect("decodes");
            assert_eq!(back, plan);
            assert_eq!(back.encode(), bytes, "re-encode is byte-identical");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FaultPlan::decode(b"").is_none());
        assert!(FaultPlan::decode(b"CRZX").is_none());
        let mut ok = FaultPlan::none(1).encode();
        ok.push(0); // trailing junk
        assert!(FaultPlan::decode(&ok).is_none());
        ok.pop();
        ok.pop();
        assert!(FaultPlan::decode(&ok).is_none(), "truncated");
    }

    #[test]
    fn hand_built_plan_round_trips() {
        let plan = FaultPlan {
            seed: 99,
            crashes: vec![CrashFault {
                node: 1,
                point: ProtocolPoint::CowDrain,
                nth: 2,
            }],
            disk: vec![
                DiskFault {
                    node: 0,
                    nth_write: 3,
                    fault: WriteFault::Fail,
                },
                DiskFault {
                    node: 1,
                    nth_write: 0,
                    fault: WriteFault::Torn(128),
                },
            ],
            frames: FrameFaults {
                drop: 0.01,
                duplicate: 0.005,
                reorder: 0.0,
                delay: SimDuration::from_micros(250),
            },
            replicas: vec![
                ReplicaFault {
                    replica: 1,
                    point: StoreOpPoint::Put,
                    nth: 0,
                    kind: ReplicaFaultKind::TornLog(40),
                },
                ReplicaFault {
                    replica: 2,
                    point: StoreOpPoint::Commit,
                    nth: 3,
                    kind: ReplicaFaultKind::Crash,
                },
                ReplicaFault {
                    replica: 0,
                    point: StoreOpPoint::Gc,
                    nth: 1,
                    kind: ReplicaFaultKind::TornChunk(200),
                },
            ],
        };
        assert_eq!(FaultPlan::decode(&plan.encode()), Some(plan));
    }

    #[test]
    fn version_1_bytes_still_decode() {
        // A v2 encoding with an empty replica section is the v1 layout
        // plus a zero count: strip the count and stamp version 1 to get
        // exactly what an old encoder produced.
        let plan = FaultPlan::random(11, 4);
        assert!(plan.replicas.is_empty());
        let mut v1 = plan.encode();
        v1.truncate(v1.len() - 4);
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(FaultPlan::decode(&v1), Some(plan));
        // But a truncated or junk-extended v1 body still fails.
        let mut junk = v1.clone();
        junk.push(0);
        assert!(FaultPlan::decode(&junk).is_none());
        junk.pop();
        junk.pop();
        assert!(FaultPlan::decode(&junk).is_none());
    }
}
