//! Coordinated-operation runtime, agent side: executing protocol actions
//! against the Zap layer and the disk.
//!
//! The coordinator half (install, retry/timeout, abort bookkeeping) is in
//! [`crate::ops`]; this module is everything a *participant node* does —
//! answering liveness probes, freezing and capturing pods, persisting
//! images, restoring from the store, resuming, and rolling back. The
//! stop-the-world capture path lives here; the COW arm/drain schedule is
//! in [`crate::drain`]. Like the coordinator half, every future action is
//! registered through the [`crate::runtime::Timers`] seam.

use simos::disk::WriteFault;
use zap::image::PodImage;

use cruz::agent::AgentAction;
use cruz::error::CruzError;
use cruz::proto::{CtlMsg, OpKind};
use cruz::store::PreparedPut;

use des::SimTime;

use crate::fault::ProtocolPoint;
use crate::jobs::PodPlacement;
use crate::params::CkptCaptureMode;
use crate::runtime::{CtlAddr, Deadline, Timers};
use crate::state::World;
use crate::transport::CtlTransport;

impl World {
    // ---- agent wiring -------------------------------------------------------

    pub(crate) fn on_agent_ctl(&mut self, node: usize, msg: CtlMsg, reply_to: CtlAddr) {
        if !self.nodes[node].alive {
            return;
        }
        // Liveness probes answer from the node itself — a pong proves the
        // whole receive path (NIC, kernel, control CPU), not just the wire.
        if let CtlMsg::Ping { seq } = msg {
            let sock = self.nodes[node].agent_sock;
            let now = self.now;
            self.ctl()
                .send(node, sock, reply_to, &CtlMsg::Pong { seq }, now.into());
            self.postprocess(node);
            return;
        }
        if matches!(
            msg,
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                ..
            }
        ) && self.maybe_crash(node, ProtocolPoint::CheckpointReceived)
        {
            return;
        }
        if matches!(msg, CtlMsg::Start { .. }) {
            self.nodes[node].agent_coord_addr = Some(reply_to);
        }
        let op = msg.epoch();
        let actions = self.nodes[node].agent.on_ctl(msg, self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    pub(crate) fn on_agent_durable(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        let (job, image_epoch, images) = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.aborted {
                // The epoch was already discarded by the rollback; persisting
                // now would leave orphan images the store can never commit.
                o.pending_ckpt.remove(&node);
                return;
            }
            (
                o.job.clone(),
                o.image_epoch,
                o.pending_ckpt.remove(&node).unwrap_or_default(),
            )
        };
        let store = self.store(&job);
        for (pod_name, put) in images {
            store.put_prepared(&pod_name, image_epoch, put);
        }
        let actions = self.nodes[node].agent.on_local_durable(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    pub(crate) fn on_agent_local_done(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        // Materialize the pending work at its completion time.
        let (kind, cow) = match self.ops.get(&op) {
            Some(o) => (o.kind, o.cow),
            None => return,
        };
        // Fault plan: kill the node right at the protocol point — local
        // work finished but neither reported nor durable (checkpoint), or
        // mid-restore (restart).
        let point = match kind {
            OpKind::Checkpoint => ProtocolPoint::LocalDoneToDurable,
            OpKind::Restart => ProtocolPoint::Restore,
        };
        if self.maybe_crash(node, point) {
            return;
        }
        match kind {
            OpKind::Checkpoint if !cow => {
                let Some((job, image_epoch, images, aborted)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.image_epoch,
                        o.pending_ckpt.remove(&node).unwrap_or_default(),
                        o.aborted,
                    )
                }) else {
                    return;
                };
                if aborted {
                    // The epoch was already discarded by the abort path;
                    // persisting this straggler would strand orphan chunks
                    // and dangling refs the store can never commit.
                    return;
                }
                let store = self.store(&job);
                for (pod_name, put) in images {
                    store.put_prepared(&pod_name, image_epoch, put);
                }
            }
            OpKind::Checkpoint => {} // COW: images persist at AgentDurable
            OpKind::Restart => {
                let Some((job, images)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.pending_restore.remove(&node).unwrap_or_default(),
                    )
                }) else {
                    return;
                };
                for (pod_name, bytes) in images {
                    let image = match PodImage::decode(&bytes) {
                        Ok(img) => img,
                        Err(e) => {
                            self.fail_op(op, CruzError::BadImage(e));
                            return;
                        }
                    };
                    let slot = &mut self.nodes[node];
                    let pod_id = match slot.zap.restart_pod(&mut slot.kernel, &image, self.now) {
                        Ok(id) => id,
                        Err(e) => {
                            self.fail_op(op, CruzError::Zap(e));
                            return;
                        }
                    };
                    if let Some(jr) = self.jobs.get_mut(&job) {
                        if let Some(p) = jr.placement_mut(&pod_name) {
                            p.pod_id = Some(pod_id);
                            p.node = node;
                        }
                    }
                }
            }
        }
        let actions = self.nodes[node].agent.on_local_done(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    pub(crate) fn run_agent_actions(&mut self, node: usize, op: u64, actions: Vec<AgentAction>) {
        for action in actions {
            match action {
                AgentAction::DisableComm => self.set_comm(node, op, false),
                AgentAction::EnableComm => self.set_comm(node, op, true),
                AgentAction::BeginLocalCheckpoint { .. } => self.begin_local_checkpoint(node, op),
                AgentAction::BeginLocalRestore { .. } => self.begin_local_restore(node, op),
                AgentAction::ResumePods => self.resume_pods(node, op),
                AgentAction::RollBack { .. } => self.roll_back(node, op),
                AgentAction::Send(msg) => self.agent_send(node, msg),
            }
        }
    }

    pub(crate) fn job_pods_on_node(&self, op: u64, node: usize) -> Vec<PodPlacement> {
        let Some(o) = self.ops.get(&op) else {
            return Vec::new();
        };
        let Some(jr) = self.jobs.get(&o.job) else {
            return Vec::new();
        };
        jr.pods_on_node(node).into_iter().cloned().collect()
    }

    pub(crate) fn set_comm(&mut self, node: usize, op: u64, enabled: bool) {
        for p in self.job_pods_on_node(op, node) {
            let f = self.nodes[node].kernel.net.filter_mut();
            if enabled {
                f.remove_drop_rule(p.ip);
            } else {
                f.add_drop_rule(p.ip);
            }
        }
    }

    fn begin_local_checkpoint(&mut self, node: usize, op: u64) {
        let Some((cow, capture, base, job)) = self
            .ops
            .get(&op)
            .map(|o| (o.cow, o.capture, o.incremental_base, o.job.clone()))
        else {
            return;
        };
        if capture == CkptCaptureMode::Cow {
            self.begin_local_checkpoint_cow(node, op, base);
            return;
        }
        let pods = self.job_pods_on_node(op, node);
        let dedup = self.params.store.dedup;
        let store = self.store(&job);
        // The job's page-digest cache rides outside `self` for the loop; a
        // capture failure drops it, which doubles as invalidation.
        let mut cache = self.digest_caches.remove(&job).unwrap_or_default();
        let mut images: Vec<(String, PreparedPut)> = Vec::new();
        // Pipelined write-out schedule for the dedup path: each novel chunk
        // becomes available when capture has serialized up to it, and the
        // manifest when the pod's image is complete.
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let extracted = match base {
                Some(b) => slot
                    .zap
                    .checkpoint_pod_incremental(&mut slot.kernel, pod_id, self.now, b)
                    .map(|img| (img, Vec::new())),
                None if dedup => slot
                    .zap
                    .checkpoint_pod_dirty(&mut slot.kernel, pod_id, self.now),
                None => slot
                    .zap
                    .checkpoint_pod(&mut slot.kernel, pod_id, self.now)
                    .map(|img| (img, Vec::new())),
            };
            let (img, dirty) = match extracted {
                Ok(v) => v,
                Err(e) => {
                    self.fail_op(op, CruzError::Zap(e));
                    return;
                }
            };
            if dedup {
                let (bytes, cuts) = img.encode_with_page_cuts();
                let hints = cruz::pagecache::page_hints(&img, &cuts, &dirty);
                // Same pool as the COW drain: hash/encode shards across
                // `params.store.threads` workers, clean pages skip it.
                let prepared = store.prepare_chunked_hinted(
                    &bytes,
                    &hints,
                    &self.params.store,
                    &p.name,
                    &mut cache,
                );
                let pod_base = total;
                for (raw_end, stored) in prepared.novel_writes() {
                    let ready = self.now + self.params.extract_time(pod_base + raw_end);
                    batch.push((ready, stored));
                }
                total += bytes.len() as u64;
                batch.push((
                    self.now + self.params.extract_time(total),
                    prepared.manifest_len(),
                ));
                images.push((p.name.clone(), PreparedPut::Chunked(prepared)));
            } else {
                let bytes = img.encode();
                total += bytes.len() as u64;
                images.push((p.name.clone(), PreparedPut::Plain(bytes)));
            }
        }
        self.digest_caches.insert(job, cache);
        let t_extract = self.params.extract_time(total);
        let captured_at = self.now + t_extract;
        // Plain: one write of the whole image, starting once capture ends.
        // Dedup: one batched operation (single seek) streaming novel chunks
        // as capture produces them; the trailing manifest is ready at
        // capture end, so the batch never completes before `captured_at`.
        let durable_at = if dedup {
            self.nodes[node]
                .kernel
                .disk
                .submit_write_batch(self.now, &batch)
        } else {
            self.nodes[node]
                .kernel
                .disk
                .submit_write(captured_at, total)
        };
        if let Some(fault) = self.nodes[node].kernel.disk.take_write_fault() {
            self.apply_ckpt_disk_fault(op, fault, images);
            return;
        }
        if cow {
            // §5.2/COW: the blackout ends when the state is captured; the
            // disk write proceeds in the background and gates the commit.
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, captured_at));
            }
            self.arm(captured_at.into(), Deadline::AgentLocalDone { node, op });
            self.arm(durable_at.into(), Deadline::AgentDurable { node, op });
        } else {
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, durable_at));
            }
            self.arm(durable_at.into(), Deadline::AgentLocalDone { node, op });
        }
    }

    /// An injected disk fault struck a checkpoint write: the write syscall
    /// reports the failure, durability is never claimed, and the operation
    /// force-aborts. A torn write additionally leaves a partial prefix of
    /// the image on disk — chunks with no manifest referencing them — which
    /// the abort path's orphan-chunk garbage collection reclaims.
    pub(crate) fn apply_ckpt_disk_fault(
        &mut self,
        op: u64,
        fault: WriteFault,
        images: Vec<(String, PreparedPut)>,
    ) {
        if let WriteFault::Torn(frac) = fault {
            if let Some(o) = self.ops.get(&op) {
                let store = self.store(&o.job.clone());
                for (pod_name, put) in &images {
                    store.put_torn(pod_name, o.image_epoch, put, frac);
                }
            }
        }
        self.fail_op(op, CruzError::Protocol("injected disk write fault"));
    }

    fn begin_local_restore(&mut self, node: usize, op: u64) {
        let (job, image_epoch) = match self.ops.get(&op) {
            Some(o) => (o.job.clone(), o.image_epoch),
            None => return,
        };
        let store = self.store(&job);
        let pods = self.job_pods_on_node(op, node);
        let mut images = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            // Walk the incremental chain down to the full base image; the
            // restore reads (and pays for) every link.
            let mut chain: Vec<Vec<u8>> = Vec::new();
            let mut epoch = Some(image_epoch);
            while let Some(e) = epoch {
                let Some(bytes) = store.get_image(&p.name, e) else {
                    break;
                };
                // Charge what the disk actually serves: the plain file, or
                // the manifest plus every distinct chunk it references.
                total += store.stored_len(&p.name, e).unwrap_or(bytes.len() as u64);
                let base = match PodImage::decode(&bytes) {
                    Ok(img) => img.base_epoch,
                    Err(e) => {
                        self.fail_op(op, CruzError::BadImage(e));
                        return;
                    }
                };
                chain.push(bytes);
                epoch = base;
            }
            if chain.is_empty() {
                continue;
            }
            // Fold base-first. The chain is non-empty, so the fold seed is
            // the bottom (full) image.
            let merged = chain
                .pop()
                .ok_or(CruzError::Protocol("image chain emptied mid-fold"))
                .and_then(|base_bytes| PodImage::decode(&base_bytes).map_err(CruzError::from))
                .and_then(|mut merged| {
                    if merged.base_epoch.is_some() {
                        return Err(CruzError::Protocol(
                            "image chain does not bottom out at a full image",
                        ));
                    }
                    while let Some(delta_bytes) = chain.pop() {
                        let delta = PodImage::decode(&delta_bytes)?;
                        merged = merged.apply_delta(&delta)?;
                    }
                    Ok(merged)
                });
            let merged = match merged {
                Ok(m) => m,
                Err(e) => {
                    self.fail_op(op, e);
                    return;
                }
            };
            images.push((p.name.clone(), merged.encode()));
        }
        let done_at = self.nodes[node].kernel.disk.submit_read(self.now, total);
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_restore.insert(node, images);
            o.local_ops.insert(node, (self.now, done_at));
        }
        self.arm(done_at.into(), Deadline::AgentLocalDone { node, op });
    }

    pub(crate) fn resume_pods(&mut self, node: usize, op: u64) {
        for p in self.job_pods_on_node(op, node) {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let resumed = slot.zap.resume_pod(&mut slot.kernel, pod_id, self.now);
            if let Err(e) = resumed {
                // A pod that will not resume stays frozen; surface the
                // cause instead of silently dropping it.
                let now = self.now;
                self.soft_faults.push((now, "resume-pod", e.into()));
            }
        }
        let now = self.now;
        if let Some(o) = self.ops.get_mut(&op) {
            o.resumed_at.entry(node).or_insert(now);
        }
    }

    fn roll_back(&mut self, node: usize, op: u64) {
        // Abort path: disarm any undrained COW snapshot, resume pods, lift
        // filters, discard this epoch's images.
        if let Some(o) = self.ops.get_mut(&op) {
            if let Some((_, armed)) = o.pending_arm.remove(&node) {
                for (_, a) in armed {
                    a.cancel();
                }
            }
        }
        self.resume_pods(node, op);
        self.set_comm(node, op, true);
        if let Some(o) = self.ops.get(&op) {
            // Only a checkpoint abort owns its epoch. An aborted *restart*
            // is reading a committed epoch — discarding it would destroy
            // the very checkpoint recovery needs to retry from.
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
            }
        }
    }

    fn agent_send(&mut self, node: usize, msg: CtlMsg) {
        let Some(addr) = self.nodes[node].agent_coord_addr else {
            return;
        };
        let sock = self.nodes[node].agent_sock;
        let now = self.now;
        self.ctl().send(node, sock, addr, &msg, now.into());
    }

    /// Drains a node's agent endpoint: each decodable control frame costs
    /// one control-CPU slot and becomes a [`Deadline::AgentCtl`] firing.
    pub(crate) fn pump_agent(&mut self, n: usize) {
        let sock = self.nodes[n].agent_sock;
        while let Some((from, msg)) = self.ctl().recv(n, sock) {
            let mut at = self.ctl_slot(n);
            // Start/continue handling configures the packet filter and
            // signals pods before anything else runs.
            if matches!(msg, CtlMsg::Start { .. } | CtlMsg::Continue { .. }) {
                at += self.params.agent_op_cpu;
                self.nodes[n].ctl_cpu_free = at;
            }
            self.arm(
                at.into(),
                Deadline::AgentCtl {
                    node: n,
                    msg,
                    reply_to: from,
                },
            );
        }
    }
}
