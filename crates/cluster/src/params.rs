//! Cluster-wide simulation parameters.
//!
//! The defaults are calibrated to the paper's testbed (§6): dual 1 GHz
//! Pentium III nodes, gigabit Ethernet, 2005-era disks. `EXPERIMENTS.md`
//! documents how each figure depends on these values.

use cruz::store::StoreConfig;
use des::SimDuration;
use simnet::link::LinkParams;
use simnet::tcp::TcpConfig;
use simos::disk::DiskParams;
use simos::kernel::KernelParams;

/// How checkpoint images are captured from frozen pods (§6's copy-on-write
/// future optimization vs. the paper's measured stop-the-world behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptCaptureMode {
    /// Pods stay frozen until the full image is extracted — downtime scales
    /// with image size. This is what the paper's testbed measured.
    #[default]
    StopTheWorld,
    /// Pods resume as soon as the memory snapshot is armed (copy-on-write);
    /// pages drain to the store in the background, so downtime scales with
    /// the arm cost plus non-memory state, at the price of bounded extra
    /// page copies proportional to the post-resume write rate.
    Cow,
}

/// Tunable parameters of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Per-link bandwidth/latency (node NIC to switch port).
    pub link: LinkParams,
    /// Kernel timing (instruction cost, syscall overhead, quantum).
    pub kernel: KernelParams,
    /// Checkpoint-disk model.
    pub disk: DiskParams,
    /// TCP configuration for every stack.
    pub tcp: TcpConfig,
    /// Subnet prefix length (nodes and pods share one routing domain).
    pub subnet_prefix: u8,
    /// CPU cost of sending or processing one control-plane message. The
    /// coordinator serializes sends, which is what produces the per-node
    /// slope of Fig. 5(b).
    pub ctl_msg_cpu: SimDuration,
    /// Agent-side cost of acting on a `start`/`continue` message: netfilter
    /// rule configuration and pod signalling (kernel round trips on a
    /// 2005-era node). Sits on the coordination critical path but outside
    /// the measured local-save window, as in the paper.
    pub agent_op_cpu: SimDuration,
    /// Memory bandwidth for serializing checkpoint state (bytes/second).
    pub extract_bps: u64,
    /// Independent per-frame loss probability (fault injection; 0 for the
    /// paper's experiments).
    pub frame_loss: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Discard older committed epochs whenever a newer one commits (bounds
    /// checkpoint-store growth during long sweeps).
    pub prune_old_epochs: bool,
    /// Control-plane retransmission interval for lossy fabrics. `None`
    /// (default) disables retries: on a lossless LAN the four-message
    /// exchange needs none, keeping the O(N) message count exact.
    pub ctl_retry: Option<SimDuration>,
    /// Checkpoint-store representation: plain monolithic images (default,
    /// the paper's testbed behavior) or the content-addressed
    /// deduplicating store, with chunk size and per-chunk compression
    /// selectable for ablation. When dedup is on, manifests are
    /// full-fidelity, so it subsumes (and disables) incremental
    /// delta-chain capture.
    pub store: StoreConfig,
    /// Default capture mode for checkpoint operations (overridable per-op
    /// via `CkptOptions::capture`).
    pub capture: CkptCaptureMode,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            link: LinkParams::gigabit(),
            kernel: KernelParams::default(),
            disk: DiskParams::era_2005(),
            tcp: TcpConfig::default(),
            subnet_prefix: 16,
            ctl_msg_cpu: SimDuration::from_micros(35),
            agent_op_cpu: SimDuration::from_micros(120),
            extract_bps: 2_000_000_000,
            frame_loss: 0.0,
            seed: 42,
            prune_old_epochs: false,
            ctl_retry: None,
            store: StoreConfig::default(),
            capture: CkptCaptureMode::default(),
        }
    }
}

impl ClusterParams {
    /// Time to serialize `bytes` of checkpoint state in memory.
    pub fn extract_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.extract_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_scales_with_size() {
        let p = ClusterParams::default();
        assert_eq!(p.extract_time(2_000_000_000), SimDuration::from_secs(1));
        assert_eq!(p.extract_time(0), SimDuration::ZERO);
    }
}
