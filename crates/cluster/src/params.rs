//! Cluster-wide simulation parameters.
//!
//! The defaults are calibrated to the paper's testbed (§6): dual 1 GHz
//! Pentium III nodes, gigabit Ethernet, 2005-era disks. `EXPERIMENTS.md`
//! documents how each figure depends on these values.

use cruz::store::StoreConfig;
use des::SimDuration;
use simnet::link::LinkParams;
use simnet::tcp::TcpConfig;
use simos::disk::DiskParams;
use simos::kernel::KernelParams;

/// How checkpoint images are captured from frozen pods (§6's copy-on-write
/// future optimization vs. the paper's measured stop-the-world behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptCaptureMode {
    /// Pods stay frozen until the full image is extracted — downtime scales
    /// with image size. This is what the paper's testbed measured.
    #[default]
    StopTheWorld,
    /// Pods resume as soon as the memory snapshot is armed (copy-on-write);
    /// pages drain to the store in the background, so downtime scales with
    /// the arm cost plus non-memory state, at the price of bounded extra
    /// page copies proportional to the post-resume write rate.
    Cow,
}

/// Capped exponential backoff for control-plane retransmissions.
///
/// Attempt `n` (0-based) fires `min(base * 2^n, cap)` after the previous
/// one, up to `max_attempts` total retries. Retries stop immediately once
/// the operation completes or aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on the per-attempt delay.
    pub cap: SimDuration,
    /// Maximum number of retries (0 disables retrying entirely).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy that fires every `interval` without backoff growth — the
    /// behavior of the old fixed-delay retry, bounded at `max_attempts`.
    pub fn fixed(interval: SimDuration, max_attempts: u32) -> Self {
        RetryPolicy {
            base: interval,
            cap: interval,
            max_attempts,
        }
    }

    /// Delay before retry `attempt` (0-based), or `None` once exhausted.
    pub fn delay(&self, attempt: u32) -> Option<SimDuration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let shifted = self
            .base
            .as_nanos()
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        Some(SimDuration::from_nanos(shifted.min(self.cap.as_nanos())))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(50),
            cap: SimDuration::from_millis(800),
            max_attempts: 8,
        }
    }
}

/// How the recovery manager picks replacement nodes for dead ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparePolicy {
    /// Lowest-index alive node not already hosting the job's pods and not
    /// its coordinator — one spare per displaced pod where possible.
    #[default]
    FirstFree,
    /// Pack every displaced pod onto the first eligible spare (minimizes
    /// the number of nodes drafted, at the price of colocation).
    Pack,
}

/// Parameters of the self-healing recovery manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryParams {
    /// Master switch: when false (default) no heartbeats are sent and no
    /// automatic recovery runs, preserving seeded traces of earlier PRs.
    pub enabled: bool,
    /// Interval between coordinator heartbeat rounds.
    pub heartbeat_interval: SimDuration,
    /// A pinged node that has not answered within this window is declared
    /// dead. Must comfortably exceed the control-plane round-trip.
    pub heartbeat_timeout: SimDuration,
    /// Failure-detection timeout armed on every operation that does not
    /// set its own: a crashed or wedged participant aborts the op instead
    /// of hanging it forever.
    pub op_timeout: SimDuration,
    /// Maximum automatic recoveries per job before giving up.
    pub max_recoveries: u32,
    /// Replacement-node selection policy.
    pub spare_policy: SparePolicy,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            enabled: false,
            heartbeat_interval: SimDuration::from_millis(20),
            heartbeat_timeout: SimDuration::from_millis(10),
            op_timeout: SimDuration::from_secs(30),
            max_recoveries: 4,
            spare_policy: SparePolicy::default(),
        }
    }
}

/// Tunable parameters of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Per-link bandwidth/latency (node NIC to switch port).
    pub link: LinkParams,
    /// Kernel timing (instruction cost, syscall overhead, quantum).
    pub kernel: KernelParams,
    /// Checkpoint-disk model.
    pub disk: DiskParams,
    /// TCP configuration for every stack.
    pub tcp: TcpConfig,
    /// Subnet prefix length (nodes and pods share one routing domain).
    pub subnet_prefix: u8,
    /// CPU cost of sending or processing one control-plane message. The
    /// coordinator serializes sends, which is what produces the per-node
    /// slope of Fig. 5(b).
    pub ctl_msg_cpu: SimDuration,
    /// Agent-side cost of acting on a `start`/`continue` message: netfilter
    /// rule configuration and pod signalling (kernel round trips on a
    /// 2005-era node). Sits on the coordination critical path but outside
    /// the measured local-save window, as in the paper.
    pub agent_op_cpu: SimDuration,
    /// Memory bandwidth for serializing checkpoint state (bytes/second).
    pub extract_bps: u64,
    /// Independent per-frame loss probability (fault injection; 0 for the
    /// paper's experiments).
    pub frame_loss: f64, // tuning knob, not image state; cruz-lint: allow(float-in-sim)
    /// Master RNG seed.
    pub seed: u64,
    /// Discard older committed epochs whenever a newer one commits (bounds
    /// checkpoint-store growth during long sweeps).
    pub prune_old_epochs: bool,
    /// Control-plane retransmission policy for lossy fabrics. `None`
    /// (default) disables retries: on a lossless LAN the four-message
    /// exchange needs none, keeping the O(N) message count exact.
    pub ctl_retry: Option<RetryPolicy>,
    /// Self-healing recovery manager (heartbeat failure detection and
    /// automatic restart from the last committed epoch).
    pub recovery: RecoveryParams,
    /// Checkpoint-store representation: plain monolithic images (default,
    /// the paper's testbed behavior) or the content-addressed
    /// deduplicating store, with chunk size and per-chunk compression
    /// selectable for ablation. When dedup is on, manifests are
    /// full-fidelity, so it subsumes (and disables) incremental
    /// delta-chain capture. `store.threads` sizes the capture/restore
    /// worker pool (`0` = auto via `CRUZ_THREADS`/host parallelism, `1` =
    /// serial reference path) — a wall-clock knob only: produced bytes and
    /// trace digests are identical at every width. `store.replicas` sets
    /// the replication factor k: every store mutation fans out through the
    /// per-replica operation log, reads are digest-checked quorum reads,
    /// and recovery scrubs/repairs replicas before rolling back, so a
    /// restart survives the loss of up to k−1 replica stores (`1` = the
    /// plain unreplicated store, byte-identical to earlier versions).
    pub store: StoreConfig,
    /// Default capture mode for checkpoint operations (overridable per-op
    /// via `CkptOptions::capture`).
    pub capture: CkptCaptureMode,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            link: LinkParams::gigabit(),
            kernel: KernelParams::default(),
            disk: DiskParams::era_2005(),
            tcp: TcpConfig::default(),
            subnet_prefix: 16,
            ctl_msg_cpu: SimDuration::from_micros(35),
            agent_op_cpu: SimDuration::from_micros(120),
            extract_bps: 2_000_000_000,
            frame_loss: 0.0,
            seed: 42,
            prune_old_epochs: false,
            ctl_retry: None,
            recovery: RecoveryParams::default(),
            store: StoreConfig::default(),
            capture: CkptCaptureMode::default(),
        }
    }
}

impl ClusterParams {
    /// Time to serialize `bytes` of checkpoint state in memory.
    pub fn extract_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.extract_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_scales_with_size() {
        let p = ClusterParams::default();
        assert_eq!(p.extract_time(2_000_000_000), SimDuration::from_secs(1));
        assert_eq!(p.extract_time(0), SimDuration::ZERO);
    }

    #[test]
    fn retry_backoff_doubles_up_to_cap_then_exhausts() {
        let p = RetryPolicy {
            base: SimDuration::from_millis(10),
            cap: SimDuration::from_millis(35),
            max_attempts: 4,
        };
        assert_eq!(p.delay(0), Some(SimDuration::from_millis(10)));
        assert_eq!(p.delay(1), Some(SimDuration::from_millis(20)));
        assert_eq!(p.delay(2), Some(SimDuration::from_millis(35)), "capped");
        assert_eq!(p.delay(3), Some(SimDuration::from_millis(35)));
        assert_eq!(p.delay(4), None, "attempts exhausted");
        // Huge attempt numbers must not overflow the shift.
        let wide = RetryPolicy {
            max_attempts: u32::MAX,
            ..p
        };
        assert_eq!(wide.delay(200), Some(SimDuration::from_millis(35)));
    }

    #[test]
    fn fixed_retry_policy_never_grows() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(100), 3);
        assert_eq!(p.delay(0), p.delay(2));
        assert_eq!(p.delay(3), None);
    }
}
