//! Recovery reports: what the self-healing manager detected and did.
//!
//! Every automatic recovery pass produces one [`RecoveryReport`] recording
//! detection, rollback and restart timing, so benchmarks can compute
//! detection latency and MTTR directly from the world instead of
//! re-deriving them from traces.

use des::{SimDuration, SimTime};

/// What triggered a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCause {
    /// One or more pinged agent nodes missed the heartbeat deadline.
    HeartbeatTimeout,
    /// The job's coordinator node itself was found dead and the control
    /// plane was re-homed.
    CoordinatorFailover,
}

/// Terminal (or in-flight) status of a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The restart operation is still running.
    InProgress,
    /// The job was restarted from the rollback epoch and completed the
    /// restore protocol.
    Recovered,
    /// The restart operation aborted or could not be installed; a later
    /// heartbeat round may retry.
    Failed,
    /// No committed epoch (or no eligible spare, or the per-job recovery
    /// budget is exhausted) — the manager gave up on this job.
    Unrecoverable,
}

/// One automatic recovery pass, from detection to restart completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Job the pass acted on.
    pub job: String,
    /// What triggered the pass.
    pub cause: RecoveryCause,
    /// Nodes declared dead (missed heartbeats — includes fenced false
    /// positives whose pongs were lost).
    pub dead_nodes: Vec<usize>,
    /// When the first of the dead nodes actually crashed, if the world saw
    /// the crash happen (`None` for fenced-but-alive nodes).
    pub crashed_at: Option<SimTime>,
    /// When the unanswered heartbeat round was sent.
    pub ping_sent_at: SimTime,
    /// When the manager declared the nodes dead.
    pub detected_at: SimTime,
    /// In-flight operations force-aborted by the pass.
    pub aborted_ops: Vec<u64>,
    /// Committed epoch the job was rolled back to (`None` if none existed).
    pub rollback_epoch: Option<u64>,
    /// Restart operation id, when one was installed.
    pub restart_op: Option<u64>,
    /// Replica stores the pre-rollback scrub pass rebuilt from the
    /// reference log (empty with replication off, k = 1).
    pub scrubbed_replicas: Vec<usize>,
    /// When the restart operation completed (pods running again).
    pub recovered_at: Option<SimTime>,
    /// Status of the pass.
    pub outcome: RecoveryOutcome,
}

impl RecoveryReport {
    /// Crash-to-detection latency. Falls back to the ping send time when
    /// the crash instant is unknown (fenced false positives).
    pub fn detection_latency(&self) -> SimDuration {
        self.detected_at
            .saturating_duration_since(self.crashed_at.unwrap_or(self.ping_sent_at))
    }

    /// Mean-time-to-repair for this pass: crash (or detection, when the
    /// crash instant is unknown) to restart completion. `None` until the
    /// restart finishes.
    pub fn mttr(&self) -> Option<SimDuration> {
        let end = self.recovered_at?;
        Some(end.saturating_duration_since(self.crashed_at.unwrap_or(self.detected_at)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RecoveryReport {
        RecoveryReport {
            job: "j".into(),
            cause: RecoveryCause::HeartbeatTimeout,
            dead_nodes: vec![1],
            crashed_at: Some(SimTime::ZERO + SimDuration::from_millis(10)),
            ping_sent_at: SimTime::ZERO + SimDuration::from_millis(25),
            detected_at: SimTime::ZERO + SimDuration::from_millis(35),
            aborted_ops: vec![3],
            rollback_epoch: Some(2),
            restart_op: Some(4),
            scrubbed_replicas: Vec::new(),
            recovered_at: Some(SimTime::ZERO + SimDuration::from_millis(90)),
            outcome: RecoveryOutcome::Recovered,
        }
    }

    #[test]
    fn latency_and_mttr_measure_from_the_crash() {
        let r = report();
        assert_eq!(r.detection_latency(), SimDuration::from_millis(25));
        assert_eq!(r.mttr(), Some(SimDuration::from_millis(80)));
    }

    #[test]
    fn unknown_crash_instant_falls_back_gracefully() {
        let mut r = report();
        r.crashed_at = None;
        assert_eq!(r.detection_latency(), SimDuration::from_millis(10));
        assert_eq!(r.mttr(), Some(SimDuration::from_millis(55)));
        r.recovered_at = None;
        assert_eq!(r.mttr(), None);
    }
}
