//! COW capture scheduling: snapshot arm, background drain, retroactive
//! disk batches.
//!
//! The §5.2 split taken one step further: the freeze window covers only
//! *arming* per-pod memory snapshots (O(non-memory state)); pages
//! materialize in the background at the [`Deadline::CkptDrain`] firing
//! while resumed guests race the drain with writes, paying the bounded
//! pre-image copy cost the [`crate::ops::OpReport`] records as
//! `cow_copied_bytes`.

use des::SimTime;

use cruz::error::CruzError;
use cruz::store::PreparedPut;
use zap::ArmedPodCheckpoint;

use crate::fault::ProtocolPoint;
use crate::runtime::{Deadline, Timers};
use crate::state::World;

impl World {
    /// COW capture, arm phase: freeze covers only arming the memory
    /// snapshots and serializing the image skeletons (registers, sockets,
    /// pipes, shm) — O(non-memory state) instead of O(image bytes). Pages
    /// drain in the background at the [`Deadline::CkptDrain`] firing.
    pub(crate) fn begin_local_checkpoint_cow(&mut self, node: usize, op: u64, base: Option<u64>) {
        let pods = self.job_pods_on_node(op, node);
        let mut armed: Vec<(String, ArmedPodCheckpoint)> = Vec::new();
        let mut arm_bytes: u64 = 0;
        let mut page_bytes: u64 = 0;
        for p in &pods {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            match slot
                .zap
                .checkpoint_pod_arm(&mut slot.kernel, pod_id, self.now, base)
            {
                Ok(a) => {
                    arm_bytes += a.arm_bytes();
                    page_bytes += a.pending_page_bytes();
                    armed.push((p.name.clone(), a));
                }
                Err(e) => {
                    for (_, a) in armed {
                        a.cancel();
                    }
                    self.fail_op(op, CruzError::Zap(e));
                    return;
                }
            }
        }
        let t_arm = self.now + self.params.extract_time(arm_bytes);
        // Arming pins the page set, so the drain length is known now even
        // though page *contents* are only materialized at the drain event —
        // after resumed guests have raced it with writes.
        let t_drain = t_arm + self.params.extract_time(page_bytes);
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_arm.insert(node, (t_arm, armed));
            o.local_ops.insert(node, (self.now, t_arm));
        }
        self.arm(t_arm.into(), Deadline::AgentLocalDone { node, op });
        self.arm(t_drain.into(), Deadline::CkptDrain { node, op });
    }

    /// COW capture, drain phase: materialize each armed snapshot (the
    /// frozen-instant memory, reconstructed from preserved pre-images where
    /// resumed guests overwrote pages), encode/chunk it, and hand it to the
    /// disk. The write-out is submitted retroactively at arm time so it
    /// overlaps the background encode exactly as the eager path overlaps
    /// capture; the batch can never complete before its last ready time,
    /// which is at or after this event.
    pub(crate) fn on_ckpt_drain(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        let (job, t_arm, armed, aborted) = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            let Some((t_arm, armed)) = o.pending_arm.remove(&node) else {
                return;
            };
            (o.job.clone(), t_arm, armed, o.aborted)
        };
        if aborted {
            // A failed drain (or any abort while draining) discards the
            // epoch exactly like a stop-the-world abort: drop the snapshots
            // without materializing anything. Arming re-baselined dirty
            // tracking without a completed prepare, so the job's remembered
            // page digests are stale.
            self.digest_caches.remove(&job);
            for (_, a) in armed {
                a.cancel();
            }
            return;
        }
        // Fault plan: die mid-drain — pods already resumed, pages still
        // flowing to the store. The armed snapshots die with the node.
        if self.maybe_crash(node, ProtocolPoint::CowDrain) {
            self.digest_caches.remove(&job);
            for (_, a) in armed {
                a.cancel();
            }
            return;
        }
        let dedup = self.params.store.dedup;
        let store = self.store(&job);
        let mut cache = self.digest_caches.remove(&job).unwrap_or_default();
        let mut images: Vec<(String, PreparedPut)> = Vec::new();
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        let mut total: u64 = 0;
        let mut copied: u64 = 0;
        for (pod_name, a) in armed {
            let (img, pre_copied, dirty) = a.drain_with_dirty();
            copied += pre_copied;
            if dedup {
                let (bytes, cuts) = img.encode_with_page_cuts();
                let hints = cruz::pagecache::page_hints(&img, &cuts, &dirty);
                // Hash/encode fans out across the store's worker pool
                // (`params.store.threads`); clean pages skip it via the
                // digest cache. Byte-identical at every width.
                let prepared = store.prepare_chunked_hinted(
                    &bytes,
                    &hints,
                    &self.params.store,
                    &pod_name,
                    &mut cache,
                );
                let pod_base = total;
                for (raw_end, stored) in prepared.novel_writes() {
                    let ready = t_arm + self.params.extract_time(pod_base + raw_end);
                    batch.push((ready, stored));
                }
                total += bytes.len() as u64;
                batch.push((
                    t_arm + self.params.extract_time(total),
                    prepared.manifest_len(),
                ));
                images.push((pod_name, PreparedPut::Chunked(prepared)));
            } else {
                let bytes = img.encode();
                total += bytes.len() as u64;
                images.push((pod_name, PreparedPut::Plain(bytes)));
            }
        }
        self.digest_caches.insert(job, cache);
        let durable_at = if dedup {
            self.nodes[node]
                .kernel
                .disk
                .submit_write_batch(t_arm, &batch)
        } else {
            self.nodes[node]
                .kernel
                .disk
                .submit_write(t_arm + self.params.extract_time(total), total)
        };
        if let Some(fault) = self.nodes[node].kernel.disk.take_write_fault() {
            self.apply_ckpt_disk_fault(op, fault, images);
            return;
        }
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_ckpt.insert(node, images);
            *o.cow_copied.entry(node).or_insert(0) += copied;
        }
        self.arm(durable_at.into(), Deadline::AgentDurable { node, op });
    }
}
