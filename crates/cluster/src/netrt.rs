//! The `std::net` backend of the runtime seam: the same protocol engine
//! over real loopback UDP sockets, one OS thread per node, and a wall
//! clock.
//!
//! Where [`crate::simrt::SimRuntime`] drives the coordinator/agent
//! protocol through the deterministic event queue, [`NetRuntime`] runs it
//! the way the paper's testbed did: each node is an OS thread owning its
//! own kernel + Zap instance, control frames are real UDP datagrams on
//! `127.0.0.1`, failure detection is heartbeat pings against the wall
//! clock, and checkpoint images flow to a store-service thread over
//! channels. The pure state machines ([`cruz::coordinator::Coordinator`],
//! [`cruz::agent::Agent`]) are shared with the simulator verbatim — only
//! the carrier differs, which is the whole point of the seam.
//!
//! Timing here is *not* deterministic and is pinned by nothing; what *is*
//! pinned is the restored-image digest: a workload that runs to
//! completion before capture produces image bytes independent of when the
//! capture happened, so [`NetRuntime::run_cycle`] and
//! [`crate::simrt::SimRuntime::run_cycle`] must agree on
//! [`crate::runtime::image_set_digest`] for the same [`JobSpec`]
//! (checked by `tests/twin_runtime.rs` and the `loopback_demo` bench
//! bin).
//!
//! The wall clock enters in exactly one place (`NetClock`); everything
//! else reads time through it, keeping the rest of this module honest
//! about the seam.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use des::{SimDuration, SimTime};
use simnet::addr::MacAddr;
use simnet::NetStack;
use simos::disk::Disk;
use simos::fs::NetFs;
use simos::kernel::Kernel;
use zap::image::PodImage;
use zap::{PodConfig, Zap};

use cruz::agent::{Agent, AgentAction};
use cruz::coordinator::{CoordEffect, Coordinator};
use cruz::error::CruzError;
use cruz::proto::{CtlMsg, OpKind, ProtocolMode, AGENT_PORT, COORD_PORT};
use cruz::replog::ReplicatedStore;
use cruz::store::PreparedPut;

use crate::jobs::{JobSpec, PodSpec};
use crate::node::node_ip;
use crate::params::ClusterParams;
use crate::runtime::{image_set_digest, CtlAddr, CtlInstant};
use crate::state::ClusterError;
use crate::transport::{CtlSock, CtlTransport};

/// True when this environment permits binding loopback UDP sockets.
///
/// Sandboxed CI runners sometimes forbid even `127.0.0.1`; callers (the
/// `loopback_demo` bin, the twin-runtime test) probe this first and skip
/// cleanly instead of failing.
pub fn loopback_available() -> bool {
    UdpSocket::bind(("127.0.0.1", 0)).is_ok()
}

fn stuck(what: &'static str) -> ClusterError {
    ClusterError::Protocol(CruzError::Protocol(what))
}

// ---------------------------------------------------------------------------
// The wall clock — the net backend's single source of time.
// ---------------------------------------------------------------------------

/// The net runtime's clock: nanoseconds of real time elapsed since the
/// runtime epoch, read as [`SimTime`] so the shared state machines never
/// know which backend is feeding them.
struct NetClock {
    t0: std::time::Instant,
}

impl NetClock {
    fn start() -> NetClock {
        // The one wall-clock read site of the net backend: every other
        // timestamp derives from this epoch. cruz-lint: allow(wall-clock)
        let t0 = std::time::Instant::now();
        NetClock { t0 }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.t0.elapsed().as_nanos() as u64)
    }
}

// ---------------------------------------------------------------------------
// Loopback transport: the second CtlTransport backend.
// ---------------------------------------------------------------------------

/// Shared registry mapping engine addresses to real loopback endpoints.
type AddrTable = Arc<Mutex<Vec<((u32, u16), SocketAddr)>>>;

fn table_lookup(table: &AddrTable, addr: CtlAddr) -> Option<SocketAddr> {
    let g = match table.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    g.iter()
        .find(|(k, _)| *k == (addr.node, addr.port))
        .map(|&(_, real)| real)
}

fn table_reverse(table: &AddrTable, real: SocketAddr) -> Option<CtlAddr> {
    let g = match table.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    g.iter()
        .find(|(_, r)| *r == real)
        .map(|&((n, p), _)| CtlAddr { node: n, port: p })
}

fn table_insert(table: &AddrTable, addr: CtlAddr, real: SocketAddr) {
    let mut g = match table.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    g.push(((addr.node, addr.port), real));
}

/// The loopback-UDP backend of [`CtlTransport`]: control frames ride real
/// `std::net::UdpSocket` datagrams on `127.0.0.1`, and [`CtlAddr`]s map
/// onto real endpoints through a registry shared with the node threads.
///
/// The contract matches the simnet backend exactly: sends are
/// fire-and-forget, receives drain at most one decodable frame (sockets
/// carry a short read timeout, so `recv` doubles as the poll pacing of
/// the caller's event loop), and frames from unregistered sources are
/// discarded.
pub struct NetCtl {
    table: AddrTable,
    socks: Vec<UdpSocket>,
}

impl NetCtl {
    /// A transport over `table`, with no endpoints bound yet.
    fn new(table: AddrTable) -> NetCtl {
        NetCtl {
            table,
            socks: Vec::new(),
        }
    }
}

impl CtlTransport for NetCtl {
    fn bind(&mut self, node: usize, port: u16) -> Result<CtlSock, CruzError> {
        let sock = UdpSocket::bind(("127.0.0.1", 0))
            .map_err(|_| CruzError::Protocol("loopback bind refused"))?;
        sock.set_read_timeout(Some(Duration::from_millis(1)))
            .map_err(|_| CruzError::Protocol("socket read timeout rejected"))?;
        let real = sock
            .local_addr()
            .map_err(|_| CruzError::Protocol("bound socket has no local address"))?;
        let vport = if port == 0 { real.port() } else { port };
        if table_lookup(&self.table, CtlAddr::new(node, vport)).is_some() {
            return Err(CruzError::Protocol("control port already bound"));
        }
        table_insert(&self.table, CtlAddr::new(node, vport), real);
        self.socks.push(sock);
        Ok(CtlSock((self.socks.len() - 1) as u64))
    }

    fn send(&mut self, _node: usize, sock: CtlSock, dst: CtlAddr, msg: &CtlMsg, _now: CtlInstant) {
        let Some(real) = table_lookup(&self.table, dst) else {
            return; // unroutable ≡ lost in flight, by the seam contract
        };
        let Some(s) = self.socks.get(sock.0 as usize) else {
            return;
        };
        // Fire-and-forget by contract; the protocol layers own retry.
        // cruz-lint: allow(swallowed-error)
        let _ = s.send_to(&msg.encode(), real);
    }

    fn recv(&mut self, _node: usize, sock: CtlSock) -> Option<(CtlAddr, CtlMsg)> {
        let s = self.socks.get(sock.0 as usize)?;
        let mut buf = [0u8; 65536];
        loop {
            match s.recv_from(&mut buf) {
                Ok((n, src)) => {
                    if let Some(msg) = CtlMsg::decode(&buf[..n]) {
                        if let Some(from) = table_reverse(&self.table, src) {
                            return Some((from, msg));
                        }
                    }
                }
                Err(_) => return None, // timeout, would-block, or refusal
            }
        }
    }

    fn agent_addr(&self, node: usize) -> CtlAddr {
        CtlAddr::new(node, AGENT_PORT)
    }
}

// ---------------------------------------------------------------------------
// Store service thread.
// ---------------------------------------------------------------------------

enum StoreReq {
    Put {
        pod: String,
        epoch: u64,
        bytes: Vec<u8>,
    },
    Commit {
        epoch: u64,
    },
    Discard {
        epoch: u64,
    },
    LatestCommitted {
        reply: mpsc::Sender<Option<u64>>,
    },
    Pods {
        epoch: u64,
        reply: mpsc::Sender<Vec<String>>,
    },
    Get {
        pod: String,
        epoch: u64,
        reply: mpsc::Sender<Option<Vec<u8>>>,
    },
    Shutdown,
}

/// Replies best-effort: a vanished requester means the runtime is already
/// tearing down, which is not the store's problem.
fn reply_to<T>(tx: &mpsc::Sender<T>, v: T) {
    // cruz-lint: allow(swallowed-error)
    let _ = tx.send(v);
}

/// The store service: one thread owning the (non-`Send`, `Rc`-backed)
/// shared filesystem and the checkpoint store, serving every node thread
/// and the coordinator over a channel — the net runtime's stand-in for
/// the NFS server of the paper's testbed.
fn store_service(job: String, threads: usize, rx: &mpsc::Receiver<StoreReq>) -> u64 {
    let fs = NetFs::new();
    let store = ReplicatedStore::new(fs, &job, 1).with_threads(threads);
    let mut puts = 0u64;
    while let Ok(req) = rx.recv() {
        match req {
            StoreReq::Put { pod, epoch, bytes } => {
                store.put_prepared(&pod, epoch, PreparedPut::Plain(bytes));
                puts += 1;
            }
            StoreReq::Commit { epoch } => store.commit(epoch),
            StoreReq::Discard { epoch } => store.discard_epoch(epoch),
            StoreReq::LatestCommitted { reply } => {
                reply_to(&reply, store.latest_committed_epoch());
            }
            StoreReq::Pods { epoch, reply } => reply_to(&reply, store.pods_in_epoch(epoch)),
            StoreReq::Get { pod, epoch, reply } => reply_to(&reply, store.get_image(&pod, epoch)),
            StoreReq::Shutdown => break,
        }
    }
    puts
}

// ---------------------------------------------------------------------------
// Node agent threads.
// ---------------------------------------------------------------------------

/// What a node thread reports when it exits.
struct NodeExit {
    killed: bool,
    workload_finished: bool,
}

struct NodeTask {
    node: usize,
    job: String,
    pods: Vec<PodSpec>,
    sock: UdpSocket,
    store: mpsc::Sender<StoreReq>,
    kill: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    params: ClusterParams,
}

/// One node of the net runtime: its own kernel + Zap + agent, mirroring
/// the per-node state a simulated [`crate::world::World`] node carries —
/// constructed *inside* the thread because the kernel layers are
/// `Rc`-backed and not `Send`.
struct NodeHost {
    kernel: Kernel,
    zap: Zap,
    agent: Agent,
    sock: UdpSocket,
    store: mpsc::Sender<StoreReq>,
    pods: Vec<(String, zap::pod::PodId)>,
    coord: Option<SocketAddr>,
    vnow: SimTime,
    op_cpu: SimDuration,
}

impl NodeHost {
    /// Sends a control frame best-effort, matching the transport seam's
    /// fire-and-forget contract. cruz-lint: allow(swallowed-error)
    fn send_best_effort(&self, msg: &CtlMsg, to: SocketAddr) {
        let _ = self.sock.send_to(&msg.encode(), to); // cruz-lint: allow(swallowed-error)
    }

    /// Runs this node's kernel in local virtual time until every process
    /// has exited (the workloads of the twin cycle terminate on their
    /// own). Bounded so a runaway guest cannot wedge the thread.
    fn run_workload(&mut self) -> bool {
        for _ in 0..50_000_000u64 {
            if self.kernel.has_runnable() {
                let out = self.kernel.run_slice(self.vnow);
                self.vnow = self.vnow + out.elapsed.max(SimDuration::from_nanos(1));
            } else if let Some(t) = self.kernel.next_timer() {
                self.vnow = t.max(self.vnow);
                self.kernel.on_tick(self.vnow);
            } else {
                // Pods emit frames (gratuitous ARPs) with nowhere to go on
                // a single-kernel node; drop them like an unplugged cable.
                self.kernel.take_frames();
                return true;
            }
            self.kernel.take_frames();
        }
        false
    }

    fn on_datagram(&mut self, msg: CtlMsg, src: SocketAddr) {
        self.vnow = self.vnow + self.op_cpu;
        match msg {
            CtlMsg::Ping { seq } => self.send_best_effort(&CtlMsg::Pong { seq }, src),
            other => {
                self.coord = Some(src);
                let acts = self.agent.on_ctl(other, self.vnow);
                self.run_actions(acts);
            }
        }
    }

    fn run_actions(&mut self, acts: Vec<AgentAction>) {
        let mut q: VecDeque<AgentAction> = acts.into();
        while let Some(a) = q.pop_front() {
            match a {
                // Comm fencing guards cross-pod traffic during capture; the
                // twin workloads are network-quiet by construction, so the
                // net backend's fence is a no-op (the sim backend models it
                // the same way — a filter flag on the node).
                AgentAction::DisableComm | AgentAction::EnableComm => {}
                AgentAction::BeginLocalCheckpoint { epoch } => {
                    let mut ok = true;
                    for (name, pid) in self.pods.clone() {
                        match self.zap.checkpoint_pod(&mut self.kernel, pid, self.vnow) {
                            Ok(img) => {
                                if self
                                    .store
                                    .send(StoreReq::Put {
                                        pod: name,
                                        epoch,
                                        bytes: img.encode(),
                                    })
                                    .is_err()
                                {
                                    ok = false;
                                }
                            }
                            Err(_) => ok = false,
                        }
                    }
                    if ok {
                        let next = self.agent.on_local_done(self.vnow);
                        q.extend(next);
                    }
                    // On failure we stay silent; the coordinator's timeout
                    // aborts the operation, exactly as in the simulator.
                }
                AgentAction::BeginLocalRestore { epoch } => {
                    if self.restore_epoch(epoch) {
                        let next = self.agent.on_local_done(self.vnow);
                        q.extend(next);
                    }
                }
                AgentAction::ResumePods => {
                    for (_, pid) in self.pods.clone() {
                        // Resuming a finished pod is a no-op; failure here
                        // is unreachable for live ones.
                        // cruz-lint: allow(swallowed-error)
                        let _ = self.zap.resume_pod(&mut self.kernel, pid, self.vnow);
                    }
                }
                AgentAction::RollBack { epoch } => {
                    // cruz-lint: allow(swallowed-error)
                    let _ = self.store.send(StoreReq::Discard { epoch });
                    for (_, pid) in self.pods.clone() {
                        // cruz-lint: allow(swallowed-error)
                        let _ = self.zap.resume_pod(&mut self.kernel, pid, self.vnow);
                    }
                }
                AgentAction::Send(msg) => {
                    if let Some(c) = self.coord {
                        self.send_best_effort(&msg, c);
                    }
                }
            }
        }
    }

    /// Fetches every pod image of `epoch` from the store service and
    /// restarts them locally (the restore path of Fig. 2, over channels
    /// instead of NFS). False on any failure — the agent then stays
    /// silent and the coordinator aborts by timeout.
    fn restore_epoch(&mut self, epoch: u64) -> bool {
        let (tx, rx) = mpsc::channel();
        if self
            .store
            .send(StoreReq::Pods { epoch, reply: tx })
            .is_err()
        {
            return false;
        }
        let mut names = match rx.recv() {
            Ok(v) => v,
            Err(_) => return false,
        };
        if names.is_empty() {
            return false;
        }
        names.sort();
        for name in names {
            let (tx, rx) = mpsc::channel();
            if self
                .store
                .send(StoreReq::Get {
                    pod: name.clone(),
                    epoch,
                    reply: tx,
                })
                .is_err()
            {
                return false;
            }
            let bytes = match rx.recv() {
                Ok(Some(b)) => b,
                _ => return false,
            };
            let img = match PodImage::decode(&bytes) {
                Ok(i) => i,
                Err(_) => return false,
            };
            let pid = match self.zap.restart_pod(&mut self.kernel, &img, self.vnow) {
                Ok(p) => p,
                Err(_) => return false,
            };
            self.pods.push((name, pid));
        }
        true
    }
}

/// The body of one node thread: build the node, run its workload to
/// completion, then serve the control endpoint until killed or shut down.
fn node_thread(task: NodeTask) -> NodeExit {
    let NodeTask {
        node,
        job,
        pods,
        sock,
        store,
        kill,
        shutdown,
        params,
    } = task;
    // Mirror the simulated World::new node construction exactly — same
    // MAC/IP derivation, same kernel parameters — and the launch_job pod
    // sequence exactly (same pod names, same spawn order), so a workload
    // run to completion leaves byte-identical state on both backends.
    let net = NetStack::new(
        MacAddr::from_index(node as u32 + 1),
        node_ip(node),
        params.subnet_prefix,
        params.tcp.clone(),
    );
    let mut kernel = Kernel::new(net, NetFs::new(), Disk::new(params.disk), params.kernel);
    let zap = Zap::new();
    zap.install(&mut kernel);
    let mut host = NodeHost {
        kernel,
        zap,
        agent: Agent::new(),
        sock,
        store,
        pods: Vec::new(),
        coord: None,
        vnow: SimTime::ZERO,
        op_cpu: params.agent_op_cpu,
    };
    for p in &pods {
        let pod_id = match host.zap.create_pod(
            &mut host.kernel,
            PodConfig {
                name: format!("{}:{}", job, p.name),
                ip: p.ip,
                mac_mode: p.mac_mode,
            },
        ) {
            Ok(id) => id,
            Err(_) => {
                return NodeExit {
                    killed: false,
                    workload_finished: false,
                }
            }
        };
        for prog in &p.programs {
            if host
                .zap
                .spawn_in_pod(&mut host.kernel, pod_id, prog)
                .is_err()
            {
                return NodeExit {
                    killed: false,
                    workload_finished: false,
                };
            }
        }
        host.pods.push((p.name.clone(), pod_id));
    }
    let workload_finished = host.run_workload();
    let mut buf = [0u8; 65536];
    loop {
        if kill.load(Ordering::Relaxed) {
            // Fail-stop: drop the socket mid-protocol and stop answering.
            return NodeExit {
                killed: true,
                workload_finished,
            };
        }
        if shutdown.load(Ordering::Relaxed) {
            return NodeExit {
                killed: false,
                workload_finished,
            };
        }
        match host.sock.recv_from(&mut buf) {
            Ok((n, src)) => {
                if let Some(msg) = CtlMsg::decode(&buf[..n]) {
                    host.on_datagram(msg, src);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                return NodeExit {
                    killed: false,
                    workload_finished,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The runtime.
// ---------------------------------------------------------------------------

/// Outcome of one loopback-UDP cycle (the net twin of
/// [`crate::simrt::CycleReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRuntimeReport {
    /// The committed checkpoint epoch the restore rolled back to.
    pub epoch: u64,
    /// FNV-1a digest over the restored pods' image bytes as read back
    /// from the store — must equal the sim backend's digest for the same
    /// spec.
    pub restored_digest: u64,
    /// The pods restored onto the spare, in digest order.
    pub restored_pods: Vec<String>,
    /// Heartbeat probes sent during failure detection.
    pub pings_sent: u64,
    /// Heartbeat replies received during failure detection.
    pub pongs_received: u64,
    /// Nodes the heartbeat pass declared dead (the injected fault set).
    pub failed_nodes: Vec<usize>,
    /// OS threads that exited and were joined at shutdown (node threads
    /// plus the store service) — the no-hung-threads guarantee.
    pub joined_threads: usize,
    /// Node threads that exited through the fail-stop kill flag (the
    /// fault-injection path) rather than graceful shutdown.
    pub killed_threads: usize,
    /// Node threads whose workload ran to completion before serving the
    /// control endpoint.
    pub workloads_finished: usize,
}

/// Everything `run_cycle` spins up and must tear down again.
struct NetCluster {
    clock: NetClock,
    netctl: NetCtl,
    csock: CtlSock,
    store_tx: mpsc::Sender<StoreReq>,
    store_handle: thread::JoinHandle<u64>,
    node_handles: Vec<(usize, thread::JoinHandle<NodeExit>)>,
    kill: Vec<Arc<AtomicBool>>,
    shutdown: Arc<AtomicBool>,
    pings_sent: u64,
    pongs_received: u64,
}

impl NetCluster {
    /// Joins everything, returning `(threads joined, fail-stop exits,
    /// workloads that ran to completion)`.
    fn teardown(self) -> (usize, usize, usize) {
        self.shutdown.store(true, Ordering::Relaxed);
        let (mut joined, mut killed, mut finished) = (0, 0, 0);
        for (_, h) in self.node_handles {
            if let Ok(exit) = h.join() {
                joined += 1;
                if exit.killed {
                    killed += 1;
                }
                if exit.workload_finished {
                    finished += 1;
                }
            }
        }
        // cruz-lint: allow(swallowed-error)
        let _ = self.store_tx.send(StoreReq::Shutdown);
        if self.store_handle.join().is_ok() {
            joined += 1;
        }
        (joined, killed, finished)
    }
}

/// The loopback-UDP runtime: drives the same checkpoint → fault →
/// recover → restore cycle as [`crate::simrt::SimRuntime`], but over real
/// sockets, real threads and a real clock.
pub struct NetRuntime {
    n: usize,
    params: ClusterParams,
    wall_budget: Duration,
}

impl NetRuntime {
    /// A cluster of `n` node threads (plus a store-service thread and the
    /// caller-side coordinator).
    pub fn new(n: usize, params: ClusterParams) -> NetRuntime {
        NetRuntime {
            n,
            params,
            wall_budget: Duration::from_secs(30),
        }
    }

    /// Overrides the whole-cycle wall-clock budget (default 30 s); on
    /// expiry the cycle errors out instead of hanging its caller.
    #[must_use]
    pub fn with_wall_budget(mut self, budget: Duration) -> NetRuntime {
        self.wall_budget = budget;
        self
    }

    /// Runs the full cycle for `spec`: launch the pods on their node
    /// threads, run the workload to completion, checkpoint over UDP, kill
    /// every hosting node's thread, detect the deaths by heartbeat,
    /// restore the committed epoch onto `spare`, and digest the restored
    /// images. Always joins every thread it spawned before returning.
    ///
    /// # Errors
    ///
    /// [`ClusterError::BadNode`] for out-of-range placements,
    /// [`ClusterError::Protocol`] when sockets are unavailable or a phase
    /// exceeds the wall budget.
    pub fn run_cycle(
        &self,
        spec: &JobSpec,
        spare: usize,
    ) -> Result<NetRuntimeReport, ClusterError> {
        let app_nodes: Vec<usize> = {
            let mut v: Vec<usize> = spec.pods.iter().map(|p| p.node).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if spare >= self.n {
            return Err(ClusterError::BadNode(spare));
        }
        if let Some(&bad) = app_nodes.iter().find(|&&x| x >= self.n) {
            return Err(ClusterError::BadNode(bad));
        }
        if app_nodes.contains(&spare) {
            return Err(stuck("spare node hosts a pod of the job"));
        }
        let mut cluster = self.launch(spec)?;
        let result = self.drive(&mut cluster, spec, &app_nodes, spare);
        let pings_sent = cluster.pings_sent;
        let pongs_received = cluster.pongs_received;
        let (joined, killed, finished) = cluster.teardown();
        let (epoch, restored_digest, restored_pods, failed_nodes) = result?;
        Ok(NetRuntimeReport {
            epoch,
            restored_digest,
            restored_pods,
            pings_sent,
            pongs_received,
            failed_nodes,
            joined_threads: joined,
            killed_threads: killed,
            workloads_finished: finished,
        })
    }

    /// Binds every socket, spawns the store service and one thread per
    /// node, and hands back the handles.
    fn launch(&self, spec: &JobSpec) -> Result<NetCluster, ClusterError> {
        let table: AddrTable = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (store_tx, store_rx) = mpsc::channel();
        let job = spec.name.clone();
        let threads = self.params.store.threads;
        let store_handle = thread::Builder::new()
            .name("netrt-store".into())
            .spawn(move || store_service(job, threads, &store_rx))
            .map_err(|_| stuck("could not spawn the store-service thread"))?;
        let mut cluster = NetCluster {
            clock: NetClock::start(),
            netctl: NetCtl::new(table.clone()),
            csock: CtlSock(0),
            store_tx,
            store_handle,
            node_handles: Vec::new(),
            kill: Vec::new(),
            shutdown,
            pings_sent: 0,
            pongs_received: 0,
        };
        cluster.csock = cluster
            .netctl
            .bind(spec.coordinator_node, COORD_PORT)
            .map_err(ClusterError::Protocol)?;
        for node in 0..self.n {
            let sock = UdpSocket::bind(("127.0.0.1", 0))
                .map_err(|_| stuck("loopback bind refused for a node endpoint"))?;
            sock.set_read_timeout(Some(Duration::from_millis(2)))
                .map_err(|_| stuck("socket read timeout rejected"))?;
            let real = sock
                .local_addr()
                .map_err(|_| stuck("bound socket has no local address"))?;
            table_insert(&table, CtlAddr::new(node, AGENT_PORT), real);
            let kill = Arc::new(AtomicBool::new(false));
            let task = NodeTask {
                node,
                job: spec.name.clone(),
                pods: spec
                    .pods
                    .iter()
                    .filter(|p| p.node == node)
                    .cloned()
                    .collect(),
                sock,
                store: cluster.store_tx.clone(),
                kill: kill.clone(),
                shutdown: cluster.shutdown.clone(),
                params: self.params.clone(),
            };
            let handle = thread::Builder::new()
                .name(format!("netrt-node-{node}"))
                .spawn(move || node_thread(task))
                .map_err(|_| stuck("could not spawn a node thread"))?;
            cluster.kill.push(kill);
            cluster.node_handles.push((node, handle));
        }
        Ok(cluster)
    }

    /// The coordinator side of the cycle, run on the caller's thread.
    #[allow(clippy::type_complexity)]
    fn drive(
        &self,
        c: &mut NetCluster,
        spec: &JobSpec,
        app_nodes: &[usize],
        spare: usize,
    ) -> Result<(u64, u64, Vec<String>, Vec<usize>), ClusterError> {
        // Phase 1: blocking checkpoint of the finished workload. The node
        // threads run their workloads before serving the control endpoint,
        // so the coordinator's (retried) Start waits for them naturally.
        let ckpt_epoch = 1;
        self.run_op(c, spec, OpKind::Checkpoint, ckpt_epoch, app_nodes)?;
        // Phase 2: fail-stop every node hosting a pod.
        for &n in app_nodes {
            c.kill[n].store(true, Ordering::Relaxed);
        }
        // Phase 3: heartbeat detection against the wall clock.
        let failed = self.detect_failures(c, spec, app_nodes);
        if failed != app_nodes {
            return Err(stuck("heartbeat pass did not converge on the killed nodes"));
        }
        // Phase 4: roll back to the last committed epoch on the spare.
        let (tx, rx) = mpsc::channel();
        if c.store_tx
            .send(StoreReq::LatestCommitted { reply: tx })
            .is_err()
        {
            return Err(stuck("store service died"));
        }
        let epoch = match rx.recv() {
            Ok(Some(e)) => e,
            _ => return Err(stuck("no committed epoch to roll back to")),
        };
        self.run_op(c, spec, OpKind::Restart, epoch, &[spare])?;
        // Phase 5: digest the restored images straight from the store.
        let (tx, rx) = mpsc::channel();
        if c.store_tx
            .send(StoreReq::Pods { epoch, reply: tx })
            .is_err()
        {
            return Err(stuck("store service died"));
        }
        let mut pods = match rx.recv() {
            Ok(v) => v,
            Err(_) => return Err(stuck("store service died")),
        };
        pods.sort();
        let mut pairs: Vec<(String, Vec<u8>)> = Vec::with_capacity(pods.len());
        for p in pods {
            let (tx, rx) = mpsc::channel();
            if c.store_tx
                .send(StoreReq::Get {
                    pod: p.clone(),
                    epoch,
                    reply: tx,
                })
                .is_err()
            {
                return Err(stuck("store service died"));
            }
            match rx.recv() {
                Ok(Some(bytes)) => pairs.push((p, bytes)),
                _ => return Err(stuck("restored pod image missing from the store")),
            }
        }
        Ok((
            epoch,
            image_set_digest(&pairs),
            pairs.into_iter().map(|(p, _)| p).collect(),
            failed,
        ))
    }

    /// Runs one coordinated operation against `targets` (agent index `i`
    /// is `targets[i]`), driving the shared [`Coordinator`] state machine
    /// with real datagrams and wall-clock retry/timeout.
    fn run_op(
        &self,
        c: &mut NetCluster,
        spec: &JobSpec,
        kind: OpKind,
        epoch: u64,
        targets: &[usize],
    ) -> Result<(), ClusterError> {
        let started = c.clock.now();
        let timeout = self.params.recovery.op_timeout;
        let mut coord = Coordinator::new(
            kind,
            ProtocolMode::Blocking,
            epoch,
            (0..targets.len()).collect(),
        )
        .with_timeout(timeout);
        let retry = self.params.ctl_retry.clone();
        let mut attempt: u32 = 0;
        let mut next_retry = retry
            .as_ref()
            .and_then(|r| r.delay(attempt))
            .map(|d| started + d);
        let (msgs, effects) = coord.start(started);
        self.emit(c, spec, targets, msgs);
        self.apply_effects(c, effects)?;
        loop {
            if coord.is_complete() {
                return Ok(());
            }
            if coord.is_aborted() {
                return Err(stuck("operation aborted"));
            }
            let now = c.clock.now();
            if now.duration_since(SimTime::ZERO)
                > SimDuration::from_nanos(self.wall_budget.as_nanos() as u64)
            {
                return Err(stuck("wall budget exhausted mid-operation"));
            }
            // recv carries a 1 ms read timeout, so this loop paces itself.
            if let Some((from, msg)) = c.netctl.recv(spec.coordinator_node, c.csock) {
                if let Some(idx) = targets.iter().position(|&t| t as u32 == from.node) {
                    let (msgs, effects) = coord.on_message(idx, msg, now);
                    self.apply_effects(c, effects)?;
                    self.emit(c, spec, targets, msgs);
                }
                continue;
            }
            if let Some(d) = coord.deadline() {
                if now >= d {
                    let (msgs, effects) = coord.on_timeout(now);
                    self.apply_effects(c, effects)?;
                    self.emit(c, spec, targets, msgs);
                    continue;
                }
            }
            if let (Some(pol), Some(at)) = (&retry, next_retry) {
                if now >= at {
                    let msgs = coord.on_retry(now);
                    self.emit(c, spec, targets, msgs);
                    attempt += 1;
                    next_retry = pol.delay(attempt).map(|d| now + d);
                }
            }
        }
    }

    /// Sends coordinator output to the agent endpoints it names.
    fn emit(
        &self,
        c: &mut NetCluster,
        spec: &JobSpec,
        targets: &[usize],
        msgs: Vec<(usize, CtlMsg)>,
    ) {
        let now = c.clock.now();
        for (idx, msg) in msgs {
            let Some(&node) = targets.get(idx) else {
                continue;
            };
            let dst = c.netctl.agent_addr(node);
            c.netctl
                .send(spec.coordinator_node, c.csock, dst, &msg, now.into());
        }
    }

    fn apply_effects(
        &self,
        c: &mut NetCluster,
        effects: Vec<CoordEffect>,
    ) -> Result<(), ClusterError> {
        for e in effects {
            match e {
                CoordEffect::Commit { epoch } => {
                    if c.store_tx.send(StoreReq::Commit { epoch }).is_err() {
                        return Err(stuck("store service died"));
                    }
                }
                CoordEffect::Complete { .. } | CoordEffect::Aborted { .. } => {}
            }
        }
        Ok(())
    }

    /// Heartbeat failure detection over real sockets: ping every app node
    /// each interval; a node that misses `MISS_ROUNDS` consecutive rounds
    /// is declared dead. Returns the dead set in ascending order.
    fn detect_failures(&self, c: &mut NetCluster, spec: &JobSpec, nodes: &[usize]) -> Vec<usize> {
        const MISS_ROUNDS: u32 = 3;
        const MAX_ROUNDS: u32 = 200;
        let interval = self.params.recovery.heartbeat_interval;
        let mut misses: BTreeMap<usize, u32> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut seq: u64 = 0;
        for _ in 0..MAX_ROUNDS {
            seq += 1;
            let sent = c.clock.now();
            for &n in nodes {
                let dst = c.netctl.agent_addr(n);
                c.netctl.send(
                    spec.coordinator_node,
                    c.csock,
                    dst,
                    &CtlMsg::Ping { seq },
                    sent.into(),
                );
                c.pings_sent += 1;
            }
            let deadline = sent + interval;
            let mut ponged: Vec<usize> = Vec::new();
            while c.clock.now() < deadline {
                if let Some((from, CtlMsg::Pong { seq: got })) =
                    c.netctl.recv(spec.coordinator_node, c.csock)
                {
                    c.pongs_received += 1;
                    if got == seq {
                        ponged.push(from.node as usize);
                    }
                }
            }
            for &n in nodes {
                let m = misses.entry(n).or_insert(0);
                if ponged.contains(&n) {
                    *m = 0;
                } else {
                    *m += 1;
                }
            }
            if misses.values().all(|&m| m >= MISS_ROUNDS) {
                break;
            }
        }
        misses
            .into_iter()
            .filter(|&(_, m)| m >= MISS_ROUNDS)
            .map(|(n, _)| n)
            .collect()
    }
}
