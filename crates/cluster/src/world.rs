//! The simulated cluster: nodes, switch, control plane and job management,
//! driven by one deterministic discrete-event loop.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use des::{EventQueue, SimDuration, SimRng, SimTime};
use simnet::addr::{IpAddr, MacAddr, SockAddr};
use simnet::fault::FrameFate;
use simnet::link::LinkState;
use simnet::stack::SocketId;
use simnet::switch::{PortId, Switch};
use simnet::{EthFrame, NetStack};
use simos::disk::{Disk, WriteFault};
use simos::fs::NetFs;
use simos::kernel::Kernel;
use simos::proc::ProcState;
use zap::image::PodImage;
use zap::pod::Vpid;
use zap::{ArmedPodCheckpoint, PodConfig, Zap, ZapError};

use cruz::agent::{Agent, AgentAction};
use cruz::coordinator::{CoordEffect, CoordStats, Coordinator};
use cruz::error::CruzError;
use cruz::proto::{CtlMsg, OpKind, ProtocolMode, AGENT_PORT};
use cruz::store::{CheckpointStore, PreparedPut};

use crate::fault::{FaultPlan, ProtocolPoint};
use crate::jobs::{JobRuntime, JobSpec, PodPlacement};
use crate::params::{CkptCaptureMode, ClusterParams, SparePolicy};
use crate::recovery::{RecoveryCause, RecoveryOutcome, RecoveryReport};

/// Cluster-level errors.
#[derive(Debug)]
pub enum ClusterError {
    /// Unknown node index.
    BadNode(usize),
    /// Unknown job name.
    NoSuchJob,
    /// A job with that name already exists.
    JobExists,
    /// The requested epoch has no committed checkpoint.
    NoSuchEpoch(u64),
    /// Another coordinated operation or migration is in flight for the job;
    /// operations on one job are serialized, as a job manager would.
    JobBusy,
    /// A Zap-layer failure.
    Zap(ZapError),
    /// A control-plane failure (bad stored image, socket exhaustion,
    /// violated protocol invariant). Aborts the operation, not the world.
    Protocol(CruzError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BadNode(n) => write!(f, "no node {n}"),
            ClusterError::NoSuchJob => write!(f, "no such job"),
            ClusterError::JobExists => write!(f, "job already exists"),
            ClusterError::NoSuchEpoch(e) => write!(f, "epoch {e} has no committed checkpoint"),
            ClusterError::JobBusy => write!(f, "an operation is already in flight for this job"),
            ClusterError::Zap(e) => write!(f, "zap: {e}"),
            ClusterError::Protocol(e) => write!(f, "control plane: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ZapError> for ClusterError {
    fn from(e: ZapError) -> Self {
        ClusterError::Zap(e)
    }
}

impl From<CruzError> for ClusterError {
    fn from(e: CruzError) -> Self {
        ClusterError::Protocol(e)
    }
}

/// One simulated machine.
pub struct Node {
    /// The node's kernel (OS, stack, disk).
    pub kernel: Kernel,
    /// The node's Zap layer.
    pub zap: Zap,
    agent: Agent,
    agent_sock: SocketId,
    agent_coord_addr: Option<SockAddr>,
    alive: bool,
    run_scheduled: bool,
    timer_scheduled: Option<SimTime>,
    /// When this node's control-plane CPU frees up: sending and processing
    /// coordination messages serialize here (the N-proportional component
    /// of Fig. 5(b)).
    ctl_cpu_free: SimTime,
}

enum Event {
    NodeRun(usize),
    NodeTick(usize),
    FrameAtSwitch {
        from_port: usize,
        frame: EthFrame,
    },
    FrameAtNode {
        port: usize,
        frame: EthFrame,
    },
    AgentCtl {
        node: usize,
        msg: CtlMsg,
        reply_to: SockAddr,
    },
    AgentLocalDone {
        node: usize,
        op: u64,
    },
    AgentDurable {
        node: usize,
        op: u64,
    },
    /// COW capture: the background drain of a node's armed memory snapshots
    /// completes (pages encoded, chunked, and handed to the disk).
    CkptDrain {
        node: usize,
        op: u64,
    },
    CoordCtl {
        op: u64,
        from: usize,
        msg: CtlMsg,
    },
    CoordSend {
        op: u64,
        to: usize,
        msg: CtlMsg,
    },
    CoordTimeout {
        op: u64,
    },
    CoordRetry {
        op: u64,
        attempt: u32,
    },
    /// One heartbeat round for a job: ping every app node, arm the timeout.
    Heartbeat {
        job: String,
    },
    /// The deadline of one heartbeat round: any pinged node that has not
    /// ponged since `sent_at` is declared dead.
    HeartbeatTimeout {
        job: String,
        sent_at: SimTime,
        pinged: Vec<usize>,
    },
    /// A duplicated or reordered frame copy re-entering a node's NIC; never
    /// re-rolled against the fault plan (one fate per original frame).
    FrameAtNodeInjected {
        port: usize,
        frame: EthFrame,
    },
    PeriodicCkpt {
        job: String,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    },
    MigrateFinish {
        job: String,
        pod: String,
        dst: usize,
        image: Box<PodImage>,
    },
}

struct OpRuntime {
    coord: Coordinator,
    kind: OpKind,
    cow: bool,
    /// How this checkpoint captures memory (stop-the-world or COW arm/drain).
    capture: CkptCaptureMode,
    /// Base epoch for incremental image capture (`None` = full).
    incremental_base: Option<u64>,
    job: String,
    /// Epoch used for image storage (for restarts: the epoch restored).
    image_epoch: u64,
    coord_node: usize,
    coord_sock: SocketId,
    agents_nodes: Vec<usize>,
    pending_ckpt: BTreeMap<usize, Vec<(String, PreparedPut)>>,
    /// COW capture: snapshots armed at freeze, awaiting their background
    /// drain — (arm-complete time, per-pod armed checkpoints).
    pending_arm: BTreeMap<usize, (SimTime, Vec<(String, ArmedPodCheckpoint)>)>,
    /// COW capture: pre-image bytes copied on each node because post-resume
    /// guest writes raced the drain.
    cow_copied: BTreeMap<usize, u64>,
    pending_restore: BTreeMap<usize, Vec<(String, Vec<u8>)>>,
    local_ops: BTreeMap<usize, (SimTime, SimTime)>,
    resumed_at: BTreeMap<usize, SimTime>,
    complete: bool,
    aborted: bool,
    /// First control-plane failure hit while driving this operation; set
    /// when the op is force-aborted instead of panicking the world.
    error: Option<CruzError>,
}

/// Options of a coordinated checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CkptOptions {
    /// Protocol variant (Fig. 2 blocking or Fig. 4 optimized).
    pub mode: ProtocolMode,
    /// §5.2 copy-on-write: blackout covers capture only; `durable` gates
    /// the commit.
    pub cow: bool,
    /// Incremental: save only pages dirtied since the job's latest
    /// committed epoch (falls back to full when none exists).
    pub incremental: bool,
    /// Memory-capture mode override; `None` uses `ClusterParams::capture`.
    /// [`CkptCaptureMode::Cow`] shrinks the freeze to the snapshot-arm
    /// window and implies the §5.2 durability split (`cow` above).
    pub capture: Option<CkptCaptureMode>,
    /// Failure-detection timeout (abort + rollback on expiry).
    pub timeout: Option<SimDuration>,
}

impl Default for CkptOptions {
    fn default() -> Self {
        CkptOptions {
            mode: ProtocolMode::Blocking,
            cow: false,
            incremental: false,
            capture: None,
            timeout: None,
        }
    }
}

/// A report of one finished (or running) coordinated operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind.
    pub kind: OpKind,
    /// Coordinator timing observations.
    pub stats: CoordStats,
    /// Per-node local save/restore windows: (node, start, end).
    pub local_ops: Vec<(usize, SimTime, SimTime)>,
    /// When each node's pods resumed execution.
    pub resumed_at: Vec<(usize, SimTime)>,
    /// Whether the operation completed.
    pub complete: bool,
    /// Whether it was aborted.
    pub aborted: bool,
    /// COW capture only: per-node pre-image bytes copied because guest
    /// writes raced the background drain — the bounded extra cost COW pays
    /// for shrinking the freeze window.
    pub cow_copied_bytes: Vec<(usize, u64)>,
}

impl OpReport {
    /// How long each node's pods were frozen: local-op start to resume.
    /// The quantity the Fig. 4 optimization shrinks on fast-saving nodes.
    pub fn blocked_durations(&self) -> Vec<(usize, SimDuration)> {
        self.local_ops
            .iter()
            .filter_map(|&(n, start, _)| {
                let resumed = self.resumed_at.iter().find(|(rn, _)| *rn == n)?.1;
                Some((n, resumed.saturating_duration_since(start)))
            })
            .collect()
    }

    /// The Fig. 5(b) quantity: total checkpoint latency minus the largest
    /// local save time — what coordination itself costs.
    pub fn coordination_overhead(&self) -> Option<SimDuration> {
        let latency = self.stats.checkpoint_latency()?;
        let max_local = self
            .local_ops
            .iter()
            .map(|(_, s, e)| e.duration_since(*s))
            .max()?;
        Some(latency.saturating_sub(max_local))
    }
}

/// Per-job heartbeat bookkeeping (socket on the coordinator node, ping
/// sequence, last pong time per node).
struct HeartbeatState {
    sock: SocketId,
    seq: u64,
    last_pong: BTreeMap<usize, SimTime>,
}

/// An installed fault plan plus its dedicated RNG stream and per-point hit
/// counters. A separate stream means arming faults never perturbs the
/// world's own RNG, so a faulted run and a clean run share every decision
/// up to the first injected fault.
struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    crash_hits: BTreeMap<(usize, u8), u32>,
}

/// The simulated cluster world.
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    switch: Switch,
    links_up: Vec<LinkState>,
    links_down: Vec<LinkState>,
    /// The shared network filesystem.
    pub fs: NetFs,
    /// The parameters this world was built with.
    pub params: ClusterParams,
    rng: SimRng,
    jobs: BTreeMap<String, JobRuntime>,
    /// In-flight single-pod migrations per job.
    migrations: BTreeMap<String, usize>,
    /// Migrations whose destination refused the restore: (job, pod, error).
    migration_failures: Vec<(String, String, CruzError)>,
    ops: BTreeMap<u64, OpRuntime>,
    next_op: u64,
    events_processed: u64,
    /// FNV-1a fold over (time, event fingerprint) of every dispatched
    /// event — a cheap witness of the whole execution order. Two runs
    /// with the same seed must end with the same digest; a divergence
    /// pinpoints the first source of nondeterminism.
    trace_digest: u64,
    /// Per-job heartbeat state (present only while recovery watches a job).
    hb: BTreeMap<String, HeartbeatState>,
    /// The installed fault plan, if any.
    fault: Option<FaultState>,
    /// Every recovery pass the self-healing manager has run.
    recovery_reports: Vec<RecoveryReport>,
    /// Restart op → index into `recovery_reports`, stamped on completion.
    pending_recovery: BTreeMap<u64, usize>,
    /// Automatic recoveries performed per job (bounded by
    /// `RecoveryParams::max_recoveries`).
    recoveries: BTreeMap<String, u32>,
    /// Every node crash the world has seen: (node, time). Lets recovery
    /// reports measure detection latency from the true crash instant.
    crash_log: Vec<(usize, SimTime)>,
}

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("jobs", &self.jobs.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl World {
    /// Builds a cluster of `n` nodes on one switch. Node `i` owns IP
    /// `10.0.0.(i+1)`.
    pub fn new(n: usize, params: ClusterParams) -> World {
        assert!(n > 0, "a cluster needs at least one node");
        let fs = NetFs::new();
        let mut rng = SimRng::from_seed(params.seed);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let net = NetStack::new(
                MacAddr::from_index(i as u32 + 1),
                Self::node_ip_static(i),
                params.subnet_prefix,
                params.tcp.clone(),
            );
            let mut kernel = Kernel::new(net, fs.clone(), Disk::new(params.disk), params.kernel);
            let zap = Zap::new();
            zap.install(&mut kernel);
            let agent_sock = kernel.net.udp_socket();
            kernel
                .net
                .bind(
                    agent_sock,
                    SockAddr::new(Self::node_ip_static(i), AGENT_PORT),
                )
                .expect("agent port free on a fresh stack"); // cruz-lint: allow(silent-unwrap)
            nodes.push(Node {
                kernel,
                zap,
                agent: Agent::new(),
                agent_sock,
                agent_coord_addr: None,
                alive: true,
                run_scheduled: false,
                timer_scheduled: None,
                ctl_cpu_free: SimTime::ZERO,
            });
        }
        let _ = rng.next_u64();
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes,
            switch: Switch::new(n),
            links_up: vec![LinkState::new(); n],
            links_down: vec![LinkState::new(); n],
            fs,
            params,
            rng,
            jobs: BTreeMap::new(),
            migrations: BTreeMap::new(),
            migration_failures: Vec::new(),
            ops: BTreeMap::new(),
            next_op: 1,
            events_processed: 0,
            trace_digest: FNV_OFFSET,
            hb: BTreeMap::new(),
            fault: None,
            recovery_reports: Vec::new(),
            pending_recovery: BTreeMap::new(),
            recoveries: BTreeMap::new(),
            crash_log: Vec::new(),
        }
    }

    /// The IP of node `i`.
    pub fn node_ip(&self, i: usize) -> IpAddr {
        Self::node_ip_static(i)
    }

    fn node_ip_static(i: usize) -> IpAddr {
        IpAddr::from_octets([10, 0, 0, (i + 1) as u8])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a node's kernel.
    pub fn kernel(&self, n: usize) -> &Kernel {
        &self.nodes[n].kernel
    }

    /// Mutable access to a node's kernel. Callers that mutate kernel state
    /// should follow with [`World::kick_node`].
    pub fn kernel_mut(&mut self, n: usize) -> &mut Kernel {
        &mut self.nodes[n].kernel
    }

    /// A handle to a node's Zap layer.
    pub fn zap(&self, n: usize) -> Zap {
        self.nodes[n].zap.clone()
    }

    /// Re-evaluates a node's scheduling after out-of-band kernel mutation.
    pub fn kick_node(&mut self, n: usize) {
        self.postprocess(n);
    }

    /// Events processed so far (progress metric for run loops).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The checkpoint store for a job.
    pub fn store(&self, job: &str) -> CheckpointStore {
        CheckpointStore::new(self.fs.clone(), job)
    }

    /// The runtime state of a job.
    pub fn job(&self, name: &str) -> Option<&JobRuntime> {
        self.jobs.get(name)
    }

    /// True while a coordinated operation or a migration is in flight for
    /// `job` — new operations are refused until it settles.
    pub fn job_busy(&self, job: &str) -> bool {
        self.migrations.get(job).copied().unwrap_or(0) > 0
            || self
                .ops
                .values()
                .any(|o| o.job == job && !o.complete && !o.aborted)
    }

    /// Marks a node dead: it stops processing events (fail-stop crash).
    pub fn crash_node(&mut self, n: usize) {
        if self.nodes[n].alive {
            self.nodes[n].alive = false;
            self.crash_log.push((n, self.now));
        }
    }

    /// Whether a node is alive (false for out-of-range indices).
    pub fn node_alive(&self, n: usize) -> bool {
        self.nodes.get(n).map(|x| x.alive).unwrap_or(false)
    }

    /// Sets the per-frame loss probability (fault injection).
    pub fn set_frame_loss(&mut self, p: f64) {
        self.params.frame_loss = p;
    }

    /// Installs a fault plan: disk faults are armed on their nodes now;
    /// crash and frame faults strike as the run reaches them. The plan's
    /// own seed drives a dedicated RNG stream, so the same plan against the
    /// same world seed replays the identical trace.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for d in &plan.disk {
            if let Some(node) = self.nodes.get_mut(d.node) {
                node.kernel.disk.inject_write_fault(d.nth_write, d.fault);
            }
        }
        self.fault = Some(FaultState {
            plan: plan.clone(),
            rng: SimRng::from_seed(plan.seed),
            crash_hits: BTreeMap::new(),
        });
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Every recovery pass the self-healing manager has run so far.
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery_reports
    }

    /// Crashes the plan says should fire at `point` on `node`: counts the
    /// occurrence and kills the node when a [`crate::fault::CrashFault`]
    /// names it. Returns true when the node just died.
    fn maybe_crash(&mut self, node: usize, point: ProtocolPoint) -> bool {
        let fire = match self.fault.as_mut() {
            Some(f) => {
                let hits = f.crash_hits.entry((node, point as u8)).or_insert(0);
                let nth = *hits;
                *hits += 1;
                f.plan
                    .crashes
                    .iter()
                    .any(|c| c.node == node && c.point == point && c.nth == nth)
            }
            None => false,
        };
        if fire {
            self.crash_node(node);
        }
        fire
    }

    // ---- job management --------------------------------------------------

    /// Launches a job: creates its pods and spawns their programs.
    ///
    /// # Errors
    ///
    /// [`ClusterError::JobExists`], [`ClusterError::BadNode`] or Zap errors.
    pub fn launch_job(&mut self, spec: &JobSpec) -> Result<(), ClusterError> {
        if self.jobs.contains_key(&spec.name) {
            return Err(ClusterError::JobExists);
        }
        if spec.coordinator_node >= self.nodes.len() {
            return Err(ClusterError::BadNode(spec.coordinator_node));
        }
        let mut placements = Vec::new();
        for pod in &spec.pods {
            if pod.node >= self.nodes.len() {
                return Err(ClusterError::BadNode(pod.node));
            }
            let slot = &mut self.nodes[pod.node];
            let pod_id = slot.zap.create_pod(
                &mut slot.kernel,
                PodConfig {
                    name: format!("{}:{}", spec.name, pod.name),
                    ip: pod.ip,
                    mac_mode: pod.mac_mode,
                },
            )?;
            for prog in &pod.programs {
                slot.zap.spawn_in_pod(&mut slot.kernel, pod_id, prog)?;
            }
            placements.push(PodPlacement {
                name: pod.name.clone(),
                ip: pod.ip,
                mac_mode: pod.mac_mode,
                node: pod.node,
                pod_id: Some(pod_id),
            });
        }
        self.jobs.insert(
            spec.name.clone(),
            JobRuntime {
                name: spec.name.clone(),
                placements,
                coordinator_node: spec.coordinator_node,
            },
        );
        for pod in &spec.pods {
            self.postprocess(pod.node);
        }
        if self.params.recovery.enabled {
            self.enable_recovery(&spec.name)?;
        }
        Ok(())
    }

    /// Puts a job under the self-healing recovery manager: the coordinator
    /// node pings every app node each heartbeat interval; nodes that miss
    /// the deadline are declared dead, in-flight operations are aborted,
    /// uncommitted epochs discarded, and the job restarts from its last
    /// committed epoch on spare nodes. Jobs launched while
    /// `params.recovery.enabled` is set are enrolled automatically.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`]; socket-exhaustion protocol errors.
    pub fn enable_recovery(&mut self, job: &str) -> Result<(), ClusterError> {
        let Some(jr) = self.jobs.get(job) else {
            return Err(ClusterError::NoSuchJob);
        };
        if self.hb.contains_key(job) {
            return Ok(());
        }
        let coord_node = jr.coordinator_node;
        let sock = self.bind_ctl_sock(coord_node)?;
        self.hb.insert(
            job.to_owned(),
            HeartbeatState {
                sock,
                seq: 0,
                last_pong: BTreeMap::new(),
            },
        );
        self.queue.push(
            self.now + self.params.recovery.heartbeat_interval,
            Event::Heartbeat {
                job: job.to_owned(),
            },
        );
        Ok(())
    }

    /// True once every process of every pod of the job has exited.
    pub fn job_finished(&self, job: &str) -> bool {
        let Some(jr) = self.jobs.get(job) else {
            return false;
        };
        jr.placements.iter().all(|p| match p.pod_id {
            Some(pid) => self.nodes[p.node]
                .zap
                .pod_finished(&self.nodes[p.node].kernel, pid),
            None => false,
        })
    }

    /// The console of a pod process (by pod name and virtual pid).
    pub fn pod_console(&self, job: &str, pod: &str, vpid: Vpid) -> Option<Vec<String>> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        node.zap.console_of(&node.kernel, p.pod_id?, vpid)
    }

    /// The exit code of a pod process, if it has exited.
    pub fn pod_exit_code(&self, job: &str, pod: &str, vpid: Vpid) -> Option<u64> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        let real = node.zap.real_pid(p.pod_id?, vpid)?;
        match node.kernel.process(real)?.state {
            ProcState::Zombie(code) => Some(code),
            _ => None,
        }
    }

    /// Reads guest memory of a pod process (host-side observation; used by
    /// benchmarks to sample progress counters).
    pub fn peek_guest(
        &self,
        job: &str,
        pod: &str,
        vpid: Vpid,
        addr: u64,
        len: usize,
    ) -> Option<Vec<u8>> {
        let jr = self.jobs.get(job)?;
        let p = jr.placement(pod)?;
        let node = &self.nodes[p.node];
        let real = node.zap.real_pid(p.pod_id?, vpid)?;
        node.kernel.read_guest(real, addr, len).ok()
    }

    // ---- coordinated operations -------------------------------------------

    /// Starts a coordinated checkpoint of `job`. Returns the operation id
    /// (also the stored epoch).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_opts(job, mode, false, timeout)
    }

    /// Like [`World::start_checkpoint`], with the §5.2 copy-on-write
    /// optimization selectable: when `cow` is true the blackout covers only
    /// state *capture*; image writes complete in the background and gate
    /// the commit record via `durable` messages.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_opts(
        &mut self,
        job: &str,
        mode: ProtocolMode,
        cow: bool,
        timeout: Option<SimDuration>,
    ) -> Result<u64, ClusterError> {
        self.start_checkpoint_with(
            job,
            CkptOptions {
                mode,
                cow,
                timeout,
                ..CkptOptions::default()
            },
        )
    }

    /// The fully-general checkpoint entry point.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn start_checkpoint_with(
        &mut self,
        job: &str,
        opts: CkptOptions,
    ) -> Result<u64, ClusterError> {
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        let jr = self.jobs.get(job).ok_or(ClusterError::NoSuchJob)?;
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        // The dedup store makes every epoch full-fidelity while writing only
        // novel chunks, so it subsumes incremental delta chains.
        let incremental_base = if opts.incremental && !self.params.store.dedup {
            self.store(job).latest_committed_epoch()
        } else {
            None
        };
        let capture = opts.capture.unwrap_or(self.params.capture);
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Checkpoint,
            opts.mode,
            op,
            (0..agents_nodes.len()).collect(),
        );
        // With recovery on, every operation gets a failure-detection
        // timeout even if the caller set none: a crashed participant must
        // abort the op, not hang it forever.
        let timeout = opts.timeout.or_else(|| {
            self.params
                .recovery
                .enabled
                .then_some(self.params.recovery.op_timeout)
        });
        if let Some(t) = timeout {
            coord = coord.with_timeout(t);
        }
        // COW capture needs the §5.2 message flow: `done` at arm-complete
        // resumes pods early, `durable` after the background drain gates the
        // commit record.
        if opts.cow || capture == CkptCaptureMode::Cow {
            coord = coord.with_cow();
        }
        self.install_op_inc(
            op,
            op,
            OpKind::Checkpoint,
            job,
            coord_node,
            agents_nodes,
            coord,
            incremental_base,
            capture,
        )?;
        Ok(op)
    }

    /// Starts a coordinated restart of `job` from a committed epoch. The
    /// `placement` list re-homes pods (pod name → node); unmentioned pods
    /// keep their previous node assignment.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`], [`ClusterError::NoSuchEpoch`].
    pub fn start_restart(
        &mut self,
        job: &str,
        epoch: u64,
        placement: &[(String, usize)],
        mode: ProtocolMode,
    ) -> Result<u64, ClusterError> {
        if !self.store(job).is_committed(epoch) {
            return Err(ClusterError::NoSuchEpoch(epoch));
        }
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        // Tear down surviving pods first (restart-in-place, or rolling a
        // live job back to an earlier epoch): their addresses must be free
        // before the restore recreates them.
        let survivors: Vec<(usize, zap::pod::PodId)> = self
            .jobs
            .get(job)
            .ok_or(ClusterError::NoSuchJob)?
            .placements
            .iter()
            .filter_map(|p| {
                let pod_id = p.pod_id?;
                self.nodes[p.node].alive.then_some((p.node, pod_id))
            })
            .collect();
        for (node, pod_id) in survivors {
            let slot = &mut self.nodes[node];
            let _ = slot.zap.destroy_pod(&mut slot.kernel, pod_id);
            self.postprocess(node);
        }
        let jr = self.jobs.get_mut(job).ok_or(ClusterError::NoSuchJob)?;
        for (pod, node) in placement {
            if let Some(p) = jr.placement_mut(pod) {
                p.node = *node;
            }
        }
        for p in jr.placements.iter_mut() {
            p.pod_id = None; // instantiated at restore time
        }
        let agents_nodes = jr.app_nodes();
        let coord_node = jr.coordinator_node;
        let op = self.next_op;
        self.next_op += 1;
        let mut coord = Coordinator::new(
            OpKind::Restart,
            ProtocolMode::Blocking,
            op,
            (0..agents_nodes.len()).collect(),
        );
        if self.params.recovery.enabled {
            coord = coord.with_timeout(self.params.recovery.op_timeout);
        }
        let _ = mode; // restart always blocks until every node restored
        self.install_op(
            op,
            epoch,
            OpKind::Restart,
            job,
            coord_node,
            agents_nodes,
            coord,
        )?;
        Ok(op)
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        coord: Coordinator,
    ) -> Result<(), ClusterError> {
        self.install_op_inc(
            op,
            image_epoch,
            kind,
            job,
            coord_node,
            agents_nodes,
            coord,
            None,
            CkptCaptureMode::StopTheWorld,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn install_op_inc(
        &mut self,
        op: u64,
        image_epoch: u64,
        kind: OpKind,
        job: &str,
        coord_node: usize,
        agents_nodes: Vec<usize>,
        mut coord: Coordinator,
        incremental_base: Option<u64>,
        capture: CkptCaptureMode,
    ) -> Result<(), ClusterError> {
        let coord_sock = self.bind_ctl_sock(coord_node)?;
        let (msgs, _) = coord.start(self.now);
        let deadline = coord.deadline();
        let cow = coord.cow();
        self.ops.insert(
            op,
            OpRuntime {
                coord,
                kind,
                cow,
                capture,
                incremental_base,
                job: job.to_owned(),
                image_epoch,
                coord_node,
                coord_sock,
                agents_nodes,
                pending_ckpt: BTreeMap::new(),
                pending_arm: BTreeMap::new(),
                cow_copied: BTreeMap::new(),
                pending_restore: BTreeMap::new(),
                local_ops: BTreeMap::new(),
                resumed_at: BTreeMap::new(),
                complete: false,
                aborted: false,
                error: None,
            },
        );
        self.schedule_coord_sends(op, msgs);
        if let Some(d) = deadline {
            self.queue.push(d, Event::CoordTimeout { op });
        }
        if let Some(p) = self.params.ctl_retry {
            if let Some(d) = p.delay(0) {
                self.queue
                    .push(self.now + d, Event::CoordRetry { op, attempt: 0 });
            }
        }
        Ok(())
    }

    /// Binds an ephemeral control-plane UDP socket on a node.
    fn bind_ctl_sock(&mut self, node: usize) -> Result<SocketId, ClusterError> {
        let k = &mut self.nodes[node].kernel;
        let s = k.net.udp_socket();
        k.net
            .bind(s, SockAddr::new(Self::node_ip_static(node), 0))
            .map_err(CruzError::ControlSocket)?;
        Ok(s)
    }

    /// Reserves one message-processing slot on a node's control-plane CPU,
    /// returning when the work completes.
    fn ctl_slot(&mut self, node: usize) -> SimTime {
        let start = self.nodes[node].ctl_cpu_free.max(self.now);
        let done = start + self.params.ctl_msg_cpu;
        self.nodes[node].ctl_cpu_free = done;
        done
    }

    fn schedule_coord_sends(&mut self, op: u64, msgs: Vec<(usize, CtlMsg)>) {
        // The coordinator CPU serializes message transmission. Together with
        // the serialized receive path in `poll_ctl`, this is the
        // N-proportional component of the Fig. 5(b) overhead.
        let Some(coord_node) = self.ops.get(&op).map(|o| o.coord_node) else {
            return;
        };
        for (agent, msg) in msgs {
            let at = self.ctl_slot(coord_node);
            self.queue.push(at, Event::CoordSend { op, to: agent, msg });
        }
    }

    /// A report of an operation's progress/outcome.
    pub fn op_report(&self, op: u64) -> Option<OpReport> {
        let o = self.ops.get(&op)?;
        Some(OpReport {
            kind: o.kind,
            stats: o.coord.stats.clone(),
            local_ops: o.local_ops.iter().map(|(&n, &(s, e))| (n, s, e)).collect(),
            resumed_at: o.resumed_at.iter().map(|(&n, &t)| (n, t)).collect(),
            complete: o.complete,
            aborted: o.aborted,
            cow_copied_bytes: o.cow_copied.iter().map(|(&n, &b)| (n, b)).collect(),
        })
    }

    /// True once the operation completed (successfully or by abort).
    pub fn op_finished(&self, op: u64) -> bool {
        self.ops
            .get(&op)
            .map(|o| o.complete || o.aborted)
            .unwrap_or(false)
    }

    /// The control-plane error that force-aborted an operation, if any.
    pub fn op_error(&self, op: u64) -> Option<&CruzError> {
        self.ops.get(&op)?.error.as_ref()
    }

    /// Migrations whose destination refused the restore: (job, pod, error).
    pub fn migration_failures(&self) -> &[(String, String, CruzError)] {
        &self.migration_failures
    }

    /// Force-aborts an operation on a control-plane failure: the op is
    /// marked aborted, the error recorded, abort messages broadcast to
    /// every participant (so frozen pods resume rather than hang), and the
    /// epoch's partial images discarded. One corrupt image or refused Zap
    /// action kills one operation, not the whole world.
    fn fail_op(&mut self, op: u64, err: CruzError) {
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.error.is_none() {
                o.error = Some(err);
            }
            if o.complete || o.aborted {
                return;
            }
            o.aborted = true;
            o.coord.force_abort().0
        };
        self.schedule_coord_sends(op, msgs);
        self.op_aborted_cleanup(op);
    }

    /// Post-abort bookkeeping shared by every abort path: a checkpoint's
    /// uncommitted epoch is discarded and any chunks stranded by a torn or
    /// interrupted write are reclaimed; a pending recovery pass waiting on
    /// this op is marked failed.
    fn op_aborted_cleanup(&mut self, op: u64) {
        if let Some(o) = self.ops.get(&op) {
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
                store.gc_orphan_chunks();
            }
        }
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                if r.outcome == RecoveryOutcome::InProgress {
                    r.outcome = RecoveryOutcome::Failed;
                }
            }
        }
    }

    /// Stamps a recovery pass whose restart operation just completed.
    fn op_completed(&mut self, op: u64) {
        let now = self.now;
        if let Some(idx) = self.pending_recovery.remove(&op) {
            if let Some(r) = self.recovery_reports.get_mut(idx) {
                r.recovered_at = Some(now);
                r.outcome = RecoveryOutcome::Recovered;
            }
        }
    }

    /// Arms a periodic checkpoint driver for `job` (the LSF-integration
    /// analogue): every `interval`, a coordinated checkpoint starts unless
    /// one is already running; the driver retires itself once the job
    /// finishes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`].
    pub fn schedule_periodic_checkpoints(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) -> Result<(), ClusterError> {
        if !self.jobs.contains_key(job) {
            return Err(ClusterError::NoSuchJob);
        }
        self.queue.push(
            self.now + interval,
            Event::PeriodicCkpt {
                job: job.to_owned(),
                interval,
                mode,
                cow,
            },
        );
        Ok(())
    }

    fn on_periodic_ckpt(
        &mut self,
        job: &str,
        interval: SimDuration,
        mode: ProtocolMode,
        cow: bool,
    ) {
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            return; // driver retires
        }
        if !self.job_busy(job) {
            let _ = self.start_checkpoint_opts(job, mode, cow, None);
        }
        self.queue.push(
            self.now + interval,
            Event::PeriodicCkpt {
                job: job.to_owned(),
                interval,
                mode,
                cow,
            },
        );
    }

    // ---- live migration (single pod, peers untouched) ----------------------

    /// Migrates one pod to `dst` while the rest of the job keeps running —
    /// the §4.2 scenario (remote endpoints need not be under Zap control).
    /// The pod is frozen, checkpointed, torn down at the source, and
    /// restored+resumed at the destination after the modelled transfer
    /// time.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchJob`]/[`ClusterError::BadNode`]; Zap errors.
    pub fn migrate_pod(&mut self, job: &str, pod: &str, dst: usize) -> Result<(), ClusterError> {
        if dst >= self.nodes.len() {
            return Err(ClusterError::BadNode(dst));
        }
        if self.job_busy(job) {
            return Err(ClusterError::JobBusy);
        }
        let (src, pod_id, ip) = {
            let jr = self.jobs.get(job).ok_or(ClusterError::NoSuchJob)?;
            let p = jr.placement(pod).ok_or(ClusterError::NoSuchJob)?;
            (p.node, p.pod_id.ok_or(ClusterError::NoSuchJob)?, p.ip)
        };
        // Freeze & extract at the source now; drop traffic meanwhile.
        {
            let slot = &mut self.nodes[src];
            slot.kernel.net.filter_mut().add_drop_rule(ip);
        }
        let image = {
            let slot = &mut self.nodes[src];
            let img = slot
                .zap
                .checkpoint_pod(&mut slot.kernel, pod_id, self.now)?;
            slot.zap.destroy_pod(&mut slot.kernel, pod_id)?;
            slot.kernel.net.filter_mut().remove_drop_rule(ip);
            img
        };
        let bytes = image.encoded_len() as u64;
        // Source disk write, then destination disk read (via the shared fs).
        let t_extract = self.params.extract_time(bytes);
        let w = self.nodes[src]
            .kernel
            .disk
            .submit_write(self.now + t_extract, bytes);
        if self.nodes[src].kernel.disk.take_write_fault().is_some() {
            // The spool write failed or tore: the transfer never reaches the
            // destination and the pod (already torn down at the source) is
            // lost. The job manager sees a migration failure; with recovery
            // enabled the heartbeat plane restarts the job from its last
            // committed epoch.
            if let Some(jr) = self.jobs.get_mut(job) {
                if let Some(p) = jr.placement_mut(pod) {
                    p.pod_id = None;
                }
            }
            self.migration_failures.push((
                job.to_string(),
                pod.to_string(),
                CruzError::Protocol("injected disk fault tore the migration spool"),
            ));
            self.postprocess(src);
            return Ok(());
        }
        let r = self.nodes[dst].kernel.disk.submit_read(w, bytes);
        self.queue.push(
            r,
            Event::MigrateFinish {
                job: job.to_owned(),
                pod: pod.to_owned(),
                dst,
                image: Box::new(image),
            },
        );
        *self.migrations.entry(job.to_owned()).or_insert(0) += 1;
        self.postprocess(src);
        Ok(())
    }

    // ---- event loop -------------------------------------------------------

    /// Processes one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        self.trace_digest = fnv_fold(self.trace_digest, at.as_nanos());
        self.trace_digest = fnv_fold(self.trace_digest, Self::event_fingerprint(&ev));
        self.dispatch(ev);
        true
    }

    /// A cheap per-event fingerprint folded into [`trace_digest`]: the
    /// variant tag plus its routing fields. Enough to distinguish any two
    /// event orderings without hashing payload bytes on the hot path.
    ///
    /// [`trace_digest`]: World::trace_digest
    fn event_fingerprint(ev: &Event) -> u64 {
        let mix = |tag: u64, a: u64, b: u64| fnv_fold(fnv_fold(fnv_fold(FNV_OFFSET, tag), a), b);
        match ev {
            Event::NodeRun(n) => mix(1, *n as u64, 0),
            Event::NodeTick(n) => mix(2, *n as u64, 0),
            Event::FrameAtSwitch { from_port, frame } => {
                mix(3, *from_port as u64, frame.wire_len() as u64)
            }
            Event::FrameAtNode { port, frame } => mix(4, *port as u64, frame.wire_len() as u64),
            Event::AgentCtl { node, msg, .. } => mix(5, *node as u64, msg.epoch()),
            Event::AgentLocalDone { node, op } => mix(6, *node as u64, *op),
            Event::AgentDurable { node, op } => mix(7, *node as u64, *op),
            Event::CkptDrain { node, op } => mix(14, *node as u64, *op),
            Event::CoordCtl { op, from, msg } => fnv_fold(mix(8, *op, *from as u64), msg.epoch()),
            Event::CoordSend { op, to, msg } => fnv_fold(mix(9, *op, *to as u64), msg.epoch()),
            Event::CoordTimeout { op } => mix(10, *op, 0),
            Event::CoordRetry { op, attempt } => mix(11, *op, *attempt as u64),
            Event::Heartbeat { job } => {
                let mut h = mix(15, 0, 0);
                for b in job.bytes() {
                    h = fnv_fold(h, b as u64);
                }
                h
            }
            Event::HeartbeatTimeout {
                job,
                sent_at,
                pinged,
            } => {
                let mut h = mix(16, sent_at.as_nanos(), pinged.len() as u64);
                for b in job.bytes() {
                    h = fnv_fold(h, b as u64);
                }
                h
            }
            Event::FrameAtNodeInjected { port, frame } => {
                mix(17, *port as u64, frame.wire_len() as u64)
            }
            Event::PeriodicCkpt { job, interval, .. } => {
                let mut h = mix(12, interval.as_nanos(), 0);
                for b in job.bytes() {
                    h = fnv_fold(h, b as u64);
                }
                h
            }
            Event::MigrateFinish { job, pod, dst, .. } => {
                let mut h = mix(13, *dst as u64, 0);
                for b in job.bytes().chain(pod.bytes()) {
                    h = fnv_fold(h, b as u64);
                }
                h
            }
        }
    }

    /// The running event-trace digest (see the field docs). Equal seeds
    /// must yield equal digests at equal points in the run.
    pub fn trace_digest(&self) -> u64 {
        self.trace_digest
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until the predicate holds, within an event budget. Returns
    /// whether the predicate held.
    pub fn run_until_pred(&mut self, max_events: u64, pred: impl Fn(&World) -> bool) -> bool {
        for _ in 0..max_events {
            if pred(self) {
                return true;
            }
            if !self.step() {
                return pred(self);
            }
        }
        pred(self)
    }

    /// Runs until operation `op` finishes (or the event budget runs out).
    pub fn run_until_op(&mut self, op: u64, max_events: u64) -> bool {
        self.run_until_pred(max_events, |w| w.op_finished(op))
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::NodeRun(n) => self.on_node_run(n),
            Event::NodeTick(n) => self.on_node_tick(n),
            Event::FrameAtSwitch { from_port, frame } => self.on_frame_at_switch(from_port, frame),
            Event::FrameAtNode { port, frame } => self.on_frame_at_node(port, frame),
            Event::AgentCtl {
                node,
                msg,
                reply_to,
            } => self.on_agent_ctl(node, msg, reply_to),
            Event::AgentLocalDone { node, op } => self.on_agent_local_done(node, op),
            Event::AgentDurable { node, op } => self.on_agent_durable(node, op),
            Event::CkptDrain { node, op } => self.on_ckpt_drain(node, op),
            Event::CoordCtl { op, from, msg } => self.on_coord_ctl(op, from, msg),
            Event::CoordSend { op, to, msg } => self.on_coord_send(op, to, msg),
            Event::CoordTimeout { op } => self.on_coord_timeout(op),
            Event::CoordRetry { op, attempt } => self.on_coord_retry(op, attempt),
            Event::Heartbeat { job } => self.on_heartbeat(&job),
            Event::HeartbeatTimeout {
                job,
                sent_at,
                pinged,
            } => self.on_heartbeat_timeout(&job, sent_at, pinged),
            Event::FrameAtNodeInjected { port, frame } => self.on_frame_injected(port, frame),
            Event::PeriodicCkpt {
                job,
                interval,
                mode,
                cow,
            } => self.on_periodic_ckpt(&job, interval, mode, cow),
            Event::MigrateFinish {
                job,
                pod,
                dst,
                image,
            } => self.on_migrate_finish(&job, &pod, dst, &image),
        }
    }

    fn on_node_run(&mut self, n: usize) {
        self.nodes[n].run_scheduled = false;
        if !self.nodes[n].alive {
            return;
        }
        let out = self.nodes[n].kernel.run_slice(self.now);
        let after = self.now + out.elapsed.max(SimDuration::from_nanos(1));
        self.emit_frames(n, after);
        self.poll_ctl(n);
        if self.nodes[n].kernel.has_runnable() {
            self.nodes[n].run_scheduled = true;
            self.queue.push(after, Event::NodeRun(n));
        }
        self.reschedule_timer(n);
    }

    fn on_node_tick(&mut self, n: usize) {
        self.nodes[n].timer_scheduled = None;
        if !self.nodes[n].alive {
            return;
        }
        self.nodes[n].kernel.on_tick(self.now);
        self.postprocess(n);
    }

    fn on_frame_at_switch(&mut self, from_port: usize, frame: EthFrame) {
        let outs = self.switch.forward(PortId(from_port), &frame);
        for PortId(p) in outs {
            let deliver =
                self.links_down[p].schedule(self.now, frame.wire_len(), &self.params.link);
            self.queue.push(
                deliver,
                Event::FrameAtNode {
                    port: p,
                    frame: frame.clone(),
                },
            );
        }
    }

    fn on_frame_at_node(&mut self, port: usize, frame: EthFrame) {
        if !self.nodes[port].alive {
            return;
        }
        if self.params.frame_loss > 0.0 && self.rng.chance(self.params.frame_loss) {
            return;
        }
        if let Some(f) = self.fault.as_mut() {
            if !f.plan.frames.is_none() {
                match f.plan.frames.decide(&mut f.rng) {
                    FrameFate::Deliver => {}
                    FrameFate::Drop => return,
                    FrameFate::Duplicate { delay } => {
                        self.queue.push(
                            self.now + delay,
                            Event::FrameAtNodeInjected {
                                port,
                                frame: frame.clone(),
                            },
                        );
                    }
                    FrameFate::Reorder { delay } => {
                        // Held back: later frames overtake it on the wire.
                        self.queue
                            .push(self.now + delay, Event::FrameAtNodeInjected { port, frame });
                        return;
                    }
                }
            }
        }
        self.deliver_frame(port, frame);
    }

    fn on_frame_injected(&mut self, port: usize, frame: EthFrame) {
        if !self.nodes[port].alive {
            return;
        }
        self.deliver_frame(port, frame);
    }

    fn deliver_frame(&mut self, port: usize, frame: EthFrame) {
        self.nodes[port].kernel.on_frame(frame, self.now);
        self.postprocess(port);
    }

    fn on_agent_ctl(&mut self, node: usize, msg: CtlMsg, reply_to: SockAddr) {
        if !self.nodes[node].alive {
            return;
        }
        // Liveness probes answer from the node itself — a pong proves the
        // whole receive path (NIC, kernel, control CPU), not just the wire.
        if let CtlMsg::Ping { seq } = msg {
            let sock = self.nodes[node].agent_sock;
            let _ = self.nodes[node].kernel.net.udp_send_to(
                sock,
                reply_to,
                Bytes::from(CtlMsg::Pong { seq }.encode()),
                self.now,
            );
            self.postprocess(node);
            return;
        }
        if matches!(
            msg,
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                ..
            }
        ) && self.maybe_crash(node, ProtocolPoint::CheckpointReceived)
        {
            return;
        }
        if matches!(msg, CtlMsg::Start { .. }) {
            self.nodes[node].agent_coord_addr = Some(reply_to);
        }
        let op = msg.epoch();
        let actions = self.nodes[node].agent.on_ctl(msg, self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    fn on_agent_durable(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        let (job, image_epoch, images) = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            if o.aborted {
                // The epoch was already discarded by the rollback; persisting
                // now would leave orphan images the store can never commit.
                o.pending_ckpt.remove(&node);
                return;
            }
            (
                o.job.clone(),
                o.image_epoch,
                o.pending_ckpt.remove(&node).unwrap_or_default(),
            )
        };
        let store = self.store(&job);
        for (pod_name, put) in images {
            store.put_prepared(&pod_name, image_epoch, &put);
        }
        let actions = self.nodes[node].agent.on_local_durable(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    fn on_agent_local_done(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        // Materialize the pending work at its completion time.
        let (kind, cow) = match self.ops.get(&op) {
            Some(o) => (o.kind, o.cow),
            None => return,
        };
        // Fault plan: kill the node right at the protocol point — local
        // work finished but neither reported nor durable (checkpoint), or
        // mid-restore (restart).
        let point = match kind {
            OpKind::Checkpoint => ProtocolPoint::LocalDoneToDurable,
            OpKind::Restart => ProtocolPoint::Restore,
        };
        if self.maybe_crash(node, point) {
            return;
        }
        match kind {
            OpKind::Checkpoint if !cow => {
                let Some((job, image_epoch, images, aborted)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.image_epoch,
                        o.pending_ckpt.remove(&node).unwrap_or_default(),
                        o.aborted,
                    )
                }) else {
                    return;
                };
                if aborted {
                    // The epoch was already discarded by the abort path;
                    // persisting this straggler would strand orphan chunks
                    // and dangling refs the store can never commit.
                    return;
                }
                let store = self.store(&job);
                for (pod_name, put) in images {
                    store.put_prepared(&pod_name, image_epoch, &put);
                }
            }
            OpKind::Checkpoint => {} // COW: images persist at AgentDurable
            OpKind::Restart => {
                let Some((job, images)) = self.ops.get_mut(&op).map(|o| {
                    (
                        o.job.clone(),
                        o.pending_restore.remove(&node).unwrap_or_default(),
                    )
                }) else {
                    return;
                };
                for (pod_name, bytes) in images {
                    let image = match PodImage::decode(&bytes) {
                        Ok(img) => img,
                        Err(e) => {
                            self.fail_op(op, CruzError::BadImage(e));
                            return;
                        }
                    };
                    let slot = &mut self.nodes[node];
                    let pod_id = match slot.zap.restart_pod(&mut slot.kernel, &image, self.now) {
                        Ok(id) => id,
                        Err(e) => {
                            self.fail_op(op, CruzError::Zap(e));
                            return;
                        }
                    };
                    if let Some(jr) = self.jobs.get_mut(&job) {
                        if let Some(p) = jr.placement_mut(&pod_name) {
                            p.pod_id = Some(pod_id);
                            p.node = node;
                        }
                    }
                }
            }
        }
        let actions = self.nodes[node].agent.on_local_done(self.now);
        self.run_agent_actions(node, op, actions);
        self.postprocess(node);
    }

    fn run_agent_actions(&mut self, node: usize, op: u64, actions: Vec<AgentAction>) {
        for action in actions {
            match action {
                AgentAction::DisableComm => self.set_comm(node, op, false),
                AgentAction::EnableComm => self.set_comm(node, op, true),
                AgentAction::BeginLocalCheckpoint { .. } => self.begin_local_checkpoint(node, op),
                AgentAction::BeginLocalRestore { .. } => self.begin_local_restore(node, op),
                AgentAction::ResumePods => self.resume_pods(node, op),
                AgentAction::RollBack { .. } => self.roll_back(node, op),
                AgentAction::Send(msg) => self.agent_send(node, msg),
            }
        }
    }

    fn job_pods_on_node(&self, op: u64, node: usize) -> Vec<PodPlacement> {
        let Some(o) = self.ops.get(&op) else {
            return Vec::new();
        };
        let Some(jr) = self.jobs.get(&o.job) else {
            return Vec::new();
        };
        jr.pods_on_node(node).into_iter().cloned().collect()
    }

    fn set_comm(&mut self, node: usize, op: u64, enabled: bool) {
        for p in self.job_pods_on_node(op, node) {
            let f = self.nodes[node].kernel.net.filter_mut();
            if enabled {
                f.remove_drop_rule(p.ip);
            } else {
                f.add_drop_rule(p.ip);
            }
        }
    }

    fn begin_local_checkpoint(&mut self, node: usize, op: u64) {
        let Some((cow, capture, base, job)) = self
            .ops
            .get(&op)
            .map(|o| (o.cow, o.capture, o.incremental_base, o.job.clone()))
        else {
            return;
        };
        if capture == CkptCaptureMode::Cow {
            self.begin_local_checkpoint_cow(node, op, base);
            return;
        }
        let pods = self.job_pods_on_node(op, node);
        let dedup = self.params.store.dedup;
        let store = self.store(&job);
        let mut images: Vec<(String, PreparedPut)> = Vec::new();
        // Pipelined write-out schedule for the dedup path: each novel chunk
        // becomes available when capture has serialized up to it, and the
        // manifest when the pod's image is complete.
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let extracted = match base {
                Some(b) => {
                    slot.zap
                        .checkpoint_pod_incremental(&mut slot.kernel, pod_id, self.now, b)
                }
                None => slot.zap.checkpoint_pod(&mut slot.kernel, pod_id, self.now),
            };
            let img = match extracted {
                Ok(img) => img,
                Err(e) => {
                    self.fail_op(op, CruzError::Zap(e));
                    return;
                }
            };
            if dedup {
                let (bytes, cuts) = img.encode_with_page_cuts();
                let prepared = store.prepare_chunked(&bytes, &cuts, &self.params.store);
                let pod_base = total;
                for (raw_end, stored) in prepared.novel_writes() {
                    let ready = self.now + self.params.extract_time(pod_base + raw_end);
                    batch.push((ready, stored));
                }
                total += bytes.len() as u64;
                batch.push((
                    self.now + self.params.extract_time(total),
                    prepared.manifest_len(),
                ));
                images.push((p.name.clone(), PreparedPut::Chunked(prepared)));
            } else {
                let bytes = img.encode();
                total += bytes.len() as u64;
                images.push((p.name.clone(), PreparedPut::Plain(bytes)));
            }
        }
        let t_extract = self.params.extract_time(total);
        let captured_at = self.now + t_extract;
        // Plain: one write of the whole image, starting once capture ends.
        // Dedup: one batched operation (single seek) streaming novel chunks
        // as capture produces them; the trailing manifest is ready at
        // capture end, so the batch never completes before `captured_at`.
        let durable_at = if dedup {
            self.nodes[node]
                .kernel
                .disk
                .submit_write_batch(self.now, &batch)
        } else {
            self.nodes[node]
                .kernel
                .disk
                .submit_write(captured_at, total)
        };
        if let Some(fault) = self.nodes[node].kernel.disk.take_write_fault() {
            self.apply_ckpt_disk_fault(op, fault, images);
            return;
        }
        if cow {
            // §5.2/COW: the blackout ends when the state is captured; the
            // disk write proceeds in the background and gates the commit.
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, captured_at));
            }
            self.queue
                .push(captured_at, Event::AgentLocalDone { node, op });
            self.queue
                .push(durable_at, Event::AgentDurable { node, op });
        } else {
            if let Some(o) = self.ops.get_mut(&op) {
                o.pending_ckpt.insert(node, images);
                o.local_ops.insert(node, (self.now, durable_at));
            }
            self.queue
                .push(durable_at, Event::AgentLocalDone { node, op });
        }
    }

    /// COW capture, arm phase: freeze covers only arming the memory
    /// snapshots and serializing the image skeletons (registers, sockets,
    /// pipes, shm) — O(non-memory state) instead of O(image bytes). Pages
    /// drain in the background at [`Event::CkptDrain`].
    fn begin_local_checkpoint_cow(&mut self, node: usize, op: u64, base: Option<u64>) {
        let pods = self.job_pods_on_node(op, node);
        let mut armed: Vec<(String, ArmedPodCheckpoint)> = Vec::new();
        let mut arm_bytes: u64 = 0;
        let mut page_bytes: u64 = 0;
        for p in &pods {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            match slot
                .zap
                .checkpoint_pod_arm(&mut slot.kernel, pod_id, self.now, base)
            {
                Ok(a) => {
                    arm_bytes += a.arm_bytes();
                    page_bytes += a.pending_page_bytes();
                    armed.push((p.name.clone(), a));
                }
                Err(e) => {
                    for (_, a) in armed {
                        a.cancel();
                    }
                    self.fail_op(op, CruzError::Zap(e));
                    return;
                }
            }
        }
        let t_arm = self.now + self.params.extract_time(arm_bytes);
        // Arming pins the page set, so the drain length is known now even
        // though page *contents* are only materialized at the drain event —
        // after resumed guests have raced it with writes.
        let t_drain = t_arm + self.params.extract_time(page_bytes);
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_arm.insert(node, (t_arm, armed));
            o.local_ops.insert(node, (self.now, t_arm));
        }
        self.queue.push(t_arm, Event::AgentLocalDone { node, op });
        self.queue.push(t_drain, Event::CkptDrain { node, op });
    }

    /// COW capture, drain phase: materialize each armed snapshot (the
    /// frozen-instant memory, reconstructed from preserved pre-images where
    /// resumed guests overwrote pages), encode/chunk it, and hand it to the
    /// disk. The write-out is submitted retroactively at arm time so it
    /// overlaps the background encode exactly as the eager path overlaps
    /// capture; the batch can never complete before its last ready time,
    /// which is at or after this event.
    fn on_ckpt_drain(&mut self, node: usize, op: u64) {
        if !self.nodes[node].alive {
            return;
        }
        let (job, t_arm, armed, aborted) = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            let Some((t_arm, armed)) = o.pending_arm.remove(&node) else {
                return;
            };
            (o.job.clone(), t_arm, armed, o.aborted)
        };
        if aborted {
            // A failed drain (or any abort while draining) discards the
            // epoch exactly like a stop-the-world abort: drop the snapshots
            // without materializing anything.
            for (_, a) in armed {
                a.cancel();
            }
            return;
        }
        // Fault plan: die mid-drain — pods already resumed, pages still
        // flowing to the store. The armed snapshots die with the node.
        if self.maybe_crash(node, ProtocolPoint::CowDrain) {
            for (_, a) in armed {
                a.cancel();
            }
            return;
        }
        let dedup = self.params.store.dedup;
        let store = self.store(&job);
        let mut images: Vec<(String, PreparedPut)> = Vec::new();
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        let mut total: u64 = 0;
        let mut copied: u64 = 0;
        for (pod_name, a) in armed {
            let (img, pre_copied) = a.drain();
            copied += pre_copied;
            if dedup {
                let (bytes, cuts) = img.encode_with_page_cuts();
                let prepared = store.prepare_chunked(&bytes, &cuts, &self.params.store);
                let pod_base = total;
                for (raw_end, stored) in prepared.novel_writes() {
                    let ready = t_arm + self.params.extract_time(pod_base + raw_end);
                    batch.push((ready, stored));
                }
                total += bytes.len() as u64;
                batch.push((
                    t_arm + self.params.extract_time(total),
                    prepared.manifest_len(),
                ));
                images.push((pod_name, PreparedPut::Chunked(prepared)));
            } else {
                let bytes = img.encode();
                total += bytes.len() as u64;
                images.push((pod_name, PreparedPut::Plain(bytes)));
            }
        }
        let durable_at = if dedup {
            self.nodes[node]
                .kernel
                .disk
                .submit_write_batch(t_arm, &batch)
        } else {
            self.nodes[node]
                .kernel
                .disk
                .submit_write(t_arm + self.params.extract_time(total), total)
        };
        if let Some(fault) = self.nodes[node].kernel.disk.take_write_fault() {
            self.apply_ckpt_disk_fault(op, fault, images);
            return;
        }
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_ckpt.insert(node, images);
            *o.cow_copied.entry(node).or_insert(0) += copied;
        }
        self.queue
            .push(durable_at, Event::AgentDurable { node, op });
    }

    /// An injected disk fault struck a checkpoint write: the write syscall
    /// reports the failure, durability is never claimed, and the operation
    /// force-aborts. A torn write additionally leaves a partial prefix of
    /// the image on disk — chunks with no manifest referencing them — which
    /// the abort path's orphan-chunk garbage collection reclaims.
    fn apply_ckpt_disk_fault(
        &mut self,
        op: u64,
        fault: WriteFault,
        images: Vec<(String, PreparedPut)>,
    ) {
        if let WriteFault::Torn(frac) = fault {
            if let Some(o) = self.ops.get(&op) {
                let store = self.store(&o.job.clone());
                for (pod_name, put) in &images {
                    store.put_torn(pod_name, o.image_epoch, put, frac);
                }
            }
        }
        self.fail_op(op, CruzError::Protocol("injected disk write fault"));
    }

    fn begin_local_restore(&mut self, node: usize, op: u64) {
        let (job, image_epoch) = match self.ops.get(&op) {
            Some(o) => (o.job.clone(), o.image_epoch),
            None => return,
        };
        let store = self.store(&job);
        let pods = self.job_pods_on_node(op, node);
        let mut images = Vec::new();
        let mut total: u64 = 0;
        for p in &pods {
            // Walk the incremental chain down to the full base image; the
            // restore reads (and pays for) every link.
            let mut chain: Vec<Vec<u8>> = Vec::new();
            let mut epoch = Some(image_epoch);
            while let Some(e) = epoch {
                let Some(bytes) = store.get_image(&p.name, e) else {
                    break;
                };
                // Charge what the disk actually serves: the plain file, or
                // the manifest plus every distinct chunk it references.
                total += store.stored_len(&p.name, e).unwrap_or(bytes.len() as u64);
                let base = match PodImage::decode(&bytes) {
                    Ok(img) => img.base_epoch,
                    Err(e) => {
                        self.fail_op(op, CruzError::BadImage(e));
                        return;
                    }
                };
                chain.push(bytes);
                epoch = base;
            }
            if chain.is_empty() {
                continue;
            }
            // Fold base-first. The chain is non-empty, so the fold seed is
            // the bottom (full) image.
            let merged = chain
                .pop()
                .ok_or(CruzError::Protocol("image chain emptied mid-fold"))
                .and_then(|base_bytes| PodImage::decode(&base_bytes).map_err(CruzError::from))
                .and_then(|mut merged| {
                    if merged.base_epoch.is_some() {
                        return Err(CruzError::Protocol(
                            "image chain does not bottom out at a full image",
                        ));
                    }
                    while let Some(delta_bytes) = chain.pop() {
                        let delta = PodImage::decode(&delta_bytes)?;
                        merged = merged.apply_delta(&delta)?;
                    }
                    Ok(merged)
                });
            let merged = match merged {
                Ok(m) => m,
                Err(e) => {
                    self.fail_op(op, e);
                    return;
                }
            };
            images.push((p.name.clone(), merged.encode()));
        }
        let done_at = self.nodes[node].kernel.disk.submit_read(self.now, total);
        if let Some(o) = self.ops.get_mut(&op) {
            o.pending_restore.insert(node, images);
            o.local_ops.insert(node, (self.now, done_at));
        }
        self.queue.push(done_at, Event::AgentLocalDone { node, op });
    }

    fn resume_pods(&mut self, node: usize, op: u64) {
        for p in self.job_pods_on_node(op, node) {
            let Some(pod_id) = p.pod_id else { continue };
            let slot = &mut self.nodes[node];
            let _ = slot.zap.resume_pod(&mut slot.kernel, pod_id, self.now);
        }
        let now = self.now;
        if let Some(o) = self.ops.get_mut(&op) {
            o.resumed_at.entry(node).or_insert(now);
        }
    }

    fn roll_back(&mut self, node: usize, op: u64) {
        // Abort path: disarm any undrained COW snapshot, resume pods, lift
        // filters, discard this epoch's images.
        if let Some(o) = self.ops.get_mut(&op) {
            if let Some((_, armed)) = o.pending_arm.remove(&node) {
                for (_, a) in armed {
                    a.cancel();
                }
            }
        }
        self.resume_pods(node, op);
        self.set_comm(node, op, true);
        if let Some(o) = self.ops.get(&op) {
            // Only a checkpoint abort owns its epoch. An aborted *restart*
            // is reading a committed epoch — discarding it would destroy
            // the very checkpoint recovery needs to retry from.
            if o.kind == OpKind::Checkpoint {
                let store = self.store(&o.job.clone());
                store.discard_epoch(o.image_epoch);
            }
        }
    }

    fn agent_send(&mut self, node: usize, msg: CtlMsg) {
        let Some(addr) = self.nodes[node].agent_coord_addr else {
            return;
        };
        let sock = self.nodes[node].agent_sock;
        let _ = self.nodes[node].kernel.net.udp_send_to(
            sock,
            addr,
            Bytes::from(msg.encode()),
            self.now,
        );
    }

    fn on_coord_ctl(&mut self, op: u64, from: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_message(from, msg, self.now);
        let job = o.job.clone();
        let image_epoch = o.image_epoch;
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            match fx {
                CoordEffect::Commit { .. } => {
                    let store = self.store(&job);
                    store.commit(image_epoch);
                    if self.params.prune_old_epochs {
                        store.prune_below(image_epoch);
                    }
                }
                CoordEffect::Complete { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.complete = true;
                    }
                    self.op_completed(op);
                }
                CoordEffect::Aborted { .. } => {
                    if let Some(o) = self.ops.get_mut(&op) {
                        o.aborted = true;
                    }
                    self.op_aborted_cleanup(op);
                }
            }
        }
    }

    fn on_coord_send(&mut self, op: u64, to: usize, msg: CtlMsg) {
        let Some(o) = self.ops.get(&op) else {
            return;
        };
        let node = o.agents_nodes[to];
        let coord_node = o.coord_node;
        let sock = o.coord_sock;
        let dst = SockAddr::new(Self::node_ip_static(node), AGENT_PORT);
        let _ = self.nodes[coord_node].kernel.net.udp_send_to(
            sock,
            dst,
            Bytes::from(msg.encode()),
            self.now,
        );
        self.postprocess(coord_node);
    }

    fn on_coord_retry(&mut self, op: u64, attempt: u32) {
        let Some(policy) = self.params.ctl_retry else {
            return;
        };
        let msgs = {
            let Some(o) = self.ops.get_mut(&op) else {
                return;
            };
            // An op that settled (or was force-aborted) stops retrying:
            // backed-off retransmissions never outlive their operation.
            if o.complete || o.aborted {
                return;
            }
            o.coord.on_retry(self.now)
        };
        self.schedule_coord_sends(op, msgs);
        let next = attempt + 1;
        if let Some(d) = policy.delay(next) {
            self.queue
                .push(self.now + d, Event::CoordRetry { op, attempt: next });
        }
    }

    fn on_coord_timeout(&mut self, op: u64) {
        let Some(o) = self.ops.get_mut(&op) else {
            return;
        };
        let (msgs, effects) = o.coord.on_timeout(self.now);
        self.schedule_coord_sends(op, msgs);
        for fx in effects {
            if let CoordEffect::Aborted { .. } = fx {
                if let Some(o) = self.ops.get_mut(&op) {
                    o.aborted = true;
                }
                self.op_aborted_cleanup(op);
            }
        }
    }

    fn on_migrate_finish(&mut self, job: &str, pod: &str, dst: usize, image: &PodImage) {
        if let Some(m) = self.migrations.get_mut(job) {
            *m = m.saturating_sub(1);
        }
        if !self.nodes[dst].alive {
            return;
        }
        let slot = &mut self.nodes[dst];
        let pod_id = match slot.zap.restart_pod(&mut slot.kernel, image, self.now) {
            Ok(id) => id,
            Err(e) => {
                // The destination refused the restore; the pod stays where
                // it was and the failure is reported, not panicked.
                self.migration_failures
                    .push((job.to_string(), pod.to_string(), CruzError::Zap(e)));
                return;
            }
        };
        let _ = slot.zap.resume_pod(&mut slot.kernel, pod_id, self.now);
        if let Some(jr) = self.jobs.get_mut(job) {
            if let Some(p) = jr.placement_mut(pod) {
                p.node = dst;
                p.pod_id = Some(pod_id);
            }
        }
        self.postprocess(dst);
    }

    // ---- self-healing recovery ---------------------------------------------

    /// One heartbeat round: ping every app node from the coordinator, arm
    /// the round's timeout, reschedule. The driver retires itself when the
    /// job finishes or recovery gives the job up.
    fn on_heartbeat(&mut self, job: &str) {
        if !self.hb.contains_key(job) {
            return;
        }
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            self.hb.remove(job);
            return;
        }
        // The heartbeat driver doubles as the watchdog for the control
        // plane itself: a dead coordinator node is re-homed first.
        let coord_node = match self.jobs.get(job) {
            Some(jr) => jr.coordinator_node,
            None => return,
        };
        if !self.nodes[coord_node].alive {
            self.coordinator_failover(job);
            if !self.hb.contains_key(job) {
                return; // failover gave up (no alive node to re-home to)
            }
        }
        let (sock, seq, coord_node) = {
            let Some(jr) = self.jobs.get(job) else { return };
            let Some(hb) = self.hb.get_mut(job) else {
                return;
            };
            hb.seq += 1;
            (hb.sock, hb.seq, jr.coordinator_node)
        };
        let pinged = self
            .jobs
            .get(job)
            .map(|jr| jr.app_nodes())
            .unwrap_or_default();
        for &n in &pinged {
            let dst = SockAddr::new(Self::node_ip_static(n), AGENT_PORT);
            let _ = self.nodes[coord_node].kernel.net.udp_send_to(
                sock,
                dst,
                Bytes::from(CtlMsg::Ping { seq }.encode()),
                self.now,
            );
        }
        self.postprocess(coord_node);
        self.queue.push(
            self.now + self.params.recovery.heartbeat_timeout,
            Event::HeartbeatTimeout {
                job: job.to_owned(),
                sent_at: self.now,
                pinged,
            },
        );
        self.queue.push(
            self.now + self.params.recovery.heartbeat_interval,
            Event::Heartbeat {
                job: job.to_owned(),
            },
        );
    }

    /// The deadline of one heartbeat round: pinged nodes that have not
    /// ponged since the round was sent — and still host this job's pods —
    /// are declared dead and handed to the recovery manager.
    fn on_heartbeat_timeout(&mut self, job: &str, sent_at: SimTime, pinged: Vec<usize>) {
        let Some(hb) = self.hb.get(job) else {
            return;
        };
        if !self.jobs.contains_key(job) || self.job_finished(job) {
            return;
        }
        let dead: Vec<usize> = pinged
            .into_iter()
            .filter(|&n| {
                let answered = hb.last_pong.get(&n).map(|&t| t >= sent_at).unwrap_or(false);
                let hosting = self
                    .jobs
                    .get(job)
                    .map(|jr| jr.placements.iter().any(|p| p.node == n))
                    .unwrap_or(false);
                !answered && hosting
            })
            .collect();
        if dead.is_empty() {
            return;
        }
        self.recover_job(job, &dead, sent_at);
    }

    /// The recovery pass: abort in-flight operations, fence the declared
    /// dead (a lost pong must not leave two copies of a pod running), roll
    /// the store back to its last committed epoch, pick spares, restart.
    fn recover_job(&mut self, job: &str, dead: &[usize], sent_at: SimTime) {
        let detected_at = self.now;
        let crashed_at = self
            .crash_log
            .iter()
            .filter(|(n, _)| dead.contains(n))
            .map(|&(_, t)| t)
            .min();
        let base_report = RecoveryReport {
            job: job.to_owned(),
            cause: RecoveryCause::HeartbeatTimeout,
            dead_nodes: dead.to_vec(),
            crashed_at,
            ping_sent_at: sent_at,
            detected_at,
            aborted_ops: Vec::new(),
            rollback_epoch: None,
            restart_op: None,
            recovered_at: None,
            outcome: RecoveryOutcome::InProgress,
        };
        let spent = self.recoveries.entry(job.to_owned()).or_insert(0);
        if *spent >= self.params.recovery.max_recoveries {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        }
        *spent += 1;
        // Abort everything in flight for the job: a dead participant can
        // never answer, and the restart needs the job quiescent.
        let inflight: Vec<u64> = self
            .ops
            .iter()
            .filter(|(_, o)| o.job == job && !o.complete && !o.aborted)
            .map(|(&id, _)| id)
            .collect();
        for &op in &inflight {
            self.fail_op(op, CruzError::Protocol("participant declared dead"));
        }
        // Fence: destroy this job's pods on declared-dead nodes that are in
        // fact alive (lost pongs) — the STONITH analogue — and unbind every
        // placement on a dead node so the restart re-homes it.
        let fenced: Vec<(usize, zap::pod::PodId)> = self
            .jobs
            .get(job)
            .map(|jr| {
                jr.placements
                    .iter()
                    .filter(|p| dead.contains(&p.node))
                    .filter_map(|p| {
                        let pid = p.pod_id?;
                        self.nodes[p.node].alive.then_some((p.node, pid))
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (n, pid) in fenced {
            let slot = &mut self.nodes[n];
            let _ = slot.zap.destroy_pod(&mut slot.kernel, pid);
            self.postprocess(n);
        }
        if let Some(jr) = self.jobs.get_mut(job) {
            for p in jr.placements.iter_mut() {
                if dead.contains(&p.node) {
                    p.pod_id = None;
                }
            }
        }
        // Roll the store back: half-written epochs can never commit now,
        // and chunks stranded by torn writes or mid-drain crashes are
        // reclaimed before the restart reads the store.
        let store = self.store(job);
        for e in store.uncommitted_epochs() {
            store.discard_epoch(e);
        }
        store.gc_orphan_chunks();
        let Some(rollback) = store.latest_committed_epoch() else {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                aborted_ops: inflight,
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        };
        let Some(placement) = self.pick_spares(job, dead) else {
            self.hb.remove(job);
            self.recovery_reports.push(RecoveryReport {
                aborted_ops: inflight,
                rollback_epoch: Some(rollback),
                outcome: RecoveryOutcome::Unrecoverable,
                ..base_report
            });
            return;
        };
        match self.start_restart(job, rollback, &placement, ProtocolMode::Blocking) {
            Ok(restart_op) => {
                let idx = self.recovery_reports.len();
                self.recovery_reports.push(RecoveryReport {
                    aborted_ops: inflight,
                    rollback_epoch: Some(rollback),
                    restart_op: Some(restart_op),
                    ..base_report
                });
                self.pending_recovery.insert(restart_op, idx);
            }
            Err(_) => {
                // e.g. a migration still in flight; the next heartbeat
                // round retries with a fresh pass.
                self.recovery_reports.push(RecoveryReport {
                    aborted_ops: inflight,
                    rollback_epoch: Some(rollback),
                    outcome: RecoveryOutcome::Failed,
                    ..base_report
                });
            }
        }
    }

    /// Picks replacement nodes for pods displaced off `dead` nodes, per the
    /// configured [`SparePolicy`]. Returns `None` when no eligible spare
    /// exists (every alive non-coordinator node already hosts the job).
    fn pick_spares(&self, job: &str, dead: &[usize]) -> Option<Vec<(String, usize)>> {
        let jr = self.jobs.get(job)?;
        let coord = jr.coordinator_node;
        let occupied: Vec<usize> = jr
            .placements
            .iter()
            .filter(|p| !dead.contains(&p.node))
            .map(|p| p.node)
            .collect();
        let eligible: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| {
                self.nodes[n].alive && n != coord && !dead.contains(&n) && !occupied.contains(&n)
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let displaced: Vec<String> = jr
            .placements
            .iter()
            .filter(|p| dead.contains(&p.node))
            .map(|p| p.name.clone())
            .collect();
        let out = match self.params.recovery.spare_policy {
            SparePolicy::Pack => displaced
                .into_iter()
                .map(|name| (name, eligible[0]))
                .collect(),
            SparePolicy::FirstFree => displaced
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, eligible[i.min(eligible.len() - 1)]))
                .collect(),
        };
        Some(out)
    }

    /// Re-homes a job's control plane after its coordinator node died: new
    /// heartbeat socket on the lowest-index alive node, and every operation
    /// orphaned by the dead coordinator is aborted from the new home so
    /// frozen pods resume. The agents accept the abort because it carries
    /// the orphaned op's epoch; a stale one arriving after a later restart
    /// is ignored by their epoch guard.
    fn coordinator_failover(&mut self, job: &str) {
        let Some(old) = self.jobs.get(job).map(|jr| jr.coordinator_node) else {
            return;
        };
        let Some(new) = (0..self.nodes.len()).find(|&n| self.nodes[n].alive) else {
            self.hb.remove(job);
            return;
        };
        let Ok(sock) = self.bind_ctl_sock(new) else {
            self.hb.remove(job);
            return;
        };
        if let Some(jr) = self.jobs.get_mut(job) {
            jr.coordinator_node = new;
        }
        if let Some(hb) = self.hb.get_mut(job) {
            hb.sock = sock;
            hb.last_pong.clear();
        }
        let orphans: Vec<u64> = self
            .ops
            .iter()
            .filter(|(_, o)| o.job == job && o.coord_node == old && !o.complete && !o.aborted)
            .map(|(&id, _)| id)
            .collect();
        for &op in &orphans {
            let agents = self
                .ops
                .get(&op)
                .map(|o| o.agents_nodes.clone())
                .unwrap_or_default();
            for n in agents {
                let dst = SockAddr::new(Self::node_ip_static(n), AGENT_PORT);
                let _ = self.nodes[new].kernel.net.udp_send_to(
                    sock,
                    dst,
                    Bytes::from(CtlMsg::Abort { epoch: op }.encode()),
                    self.now,
                );
            }
            if let Some(o) = self.ops.get_mut(&op) {
                o.aborted = true;
                if o.error.is_none() {
                    o.error = Some(CruzError::Protocol("coordinator failed over"));
                }
            }
            self.op_aborted_cleanup(op);
        }
        self.postprocess(new);
        let crashed_at = self
            .crash_log
            .iter()
            .filter(|&&(n, _)| n == old)
            .map(|&(_, t)| t)
            .min();
        self.recovery_reports.push(RecoveryReport {
            job: job.to_owned(),
            cause: RecoveryCause::CoordinatorFailover,
            dead_nodes: vec![old],
            crashed_at,
            ping_sent_at: self.now,
            detected_at: self.now,
            aborted_ops: orphans,
            rollback_epoch: None,
            restart_op: None,
            recovered_at: Some(self.now),
            outcome: RecoveryOutcome::Recovered,
        });
    }

    // ---- node plumbing ------------------------------------------------------

    /// Drains a node's outgoing frames and re-arms its run/timer events.
    fn postprocess(&mut self, n: usize) {
        self.emit_frames(n, self.now);
        self.poll_ctl(n);
        if self.nodes[n].kernel.has_runnable() && !self.nodes[n].run_scheduled {
            self.nodes[n].run_scheduled = true;
            self.queue.push(self.now, Event::NodeRun(n));
        }
        self.reschedule_timer(n);
    }

    fn emit_frames(&mut self, n: usize, at: SimTime) {
        let frames = self.nodes[n].kernel.take_frames();
        for frame in frames {
            let arrive = self.links_up[n].schedule(at, frame.wire_len(), &self.params.link);
            self.queue.push(
                arrive,
                Event::FrameAtSwitch {
                    from_port: n,
                    frame,
                },
            );
        }
    }

    fn reschedule_timer(&mut self, n: usize) {
        let Some(t) = self.nodes[n].kernel.next_timer() else {
            return;
        };
        let t = t.max(self.now);
        match self.nodes[n].timer_scheduled {
            Some(existing) if existing <= t => {}
            _ => {
                self.nodes[n].timer_scheduled = Some(t);
                self.queue.push(t, Event::NodeTick(n));
            }
        }
    }

    /// Drains control datagrams: the agent port plus any coordinator
    /// sockets hosted on this node.
    fn poll_ctl(&mut self, n: usize) {
        // Agent messages.
        let sock = self.nodes[n].agent_sock;
        while let Ok(Some((from, bytes))) = self.nodes[n].kernel.net.udp_recv_from(sock) {
            if let Some(msg) = CtlMsg::decode(&bytes) {
                let mut at = self.ctl_slot(n);
                // Start/continue handling configures the packet filter and
                // signals pods before anything else runs.
                if matches!(msg, CtlMsg::Start { .. } | CtlMsg::Continue { .. }) {
                    at += self.params.agent_op_cpu;
                    self.nodes[n].ctl_cpu_free = at;
                }
                self.queue.push(
                    at,
                    Event::AgentCtl {
                        node: n,
                        msg,
                        reply_to: from,
                    },
                );
            }
        }
        // Heartbeat pongs, for jobs whose coordinator lives here. The
        // responder is identified by source IP (node i owns 10.0.0.(i+1)).
        let hb_socks: Vec<(String, SocketId)> = self
            .hb
            .iter()
            .filter(|(job, _)| {
                self.jobs
                    .get(job.as_str())
                    .map(|jr| jr.coordinator_node == n)
                    .unwrap_or(false)
            })
            .map(|(job, h)| (job.clone(), h.sock))
            .collect();
        for (job, sock) in hb_socks {
            while let Ok(Some((from, bytes))) = self.nodes[n].kernel.net.udp_recv_from(sock) {
                if let Some(CtlMsg::Pong { .. }) = CtlMsg::decode(&bytes) {
                    let octet = from.ip.octets()[3] as usize;
                    if octet >= 1 {
                        if let Some(h) = self.hb.get_mut(&job) {
                            h.last_pong.insert(octet - 1, self.now);
                        }
                    }
                }
            }
        }
        // Coordinator replies.
        let op_socks: Vec<(u64, SocketId)> = self
            .ops
            .iter()
            .filter(|(_, o)| o.coord_node == n && !o.complete && !o.aborted)
            .map(|(&id, o)| (id, o.coord_sock))
            .collect();
        for (op, sock) in op_socks {
            while let Ok(Some((from, bytes))) = self.nodes[n].kernel.net.udp_recv_from(sock) {
                let Some(msg) = CtlMsg::decode(&bytes) else {
                    continue;
                };
                // Identify the agent by source address.
                let Some(agent_idx) = self.ops.get(&op).and_then(|o| {
                    o.agents_nodes
                        .iter()
                        .position(|&an| Self::node_ip_static(an) == from.ip)
                }) else {
                    continue;
                };
                let at = self.ctl_slot(n);
                self.queue.push(
                    at,
                    Event::CoordCtl {
                        op,
                        from: agent_idx,
                        msg,
                    },
                );
            }
        }
    }
}
