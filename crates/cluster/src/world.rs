//! The thin world driver: the deterministic event loop, the node table,
//! the switch, and nothing else.
//!
//! Protocol behavior lives in the layers above — [`crate::ops`],
//! [`crate::drain`], [`crate::heartbeat`] and [`crate::jobs`] each extend
//! [`World`] with their own `impl` block, and every control frame they
//! move goes through the [`crate::transport`] seam. This module only pops
//! events, stamps the trace digest, routes frames between nodes and the
//! switch, and re-arms per-node run/timer scheduling.

use std::collections::BTreeMap;

use des::{digest, EventQueue, SimDuration, SimRng, SimTime};
use simnet::addr::{IpAddr, MacAddr};
use simnet::fault::FrameFate;
use simnet::link::LinkState;
use simnet::switch::{PortId, Switch};
use simnet::{EthFrame, NetStack};
use simos::disk::Disk;
use simos::fs::NetFs;
use simos::kernel::Kernel;
use zap::Zap;

use cruz::agent::Agent;
use cruz::proto::AGENT_PORT;
use cruz::replog::{clear_replica_faults, install_replica_faults, ReplicatedStore, ScrubReport};

use crate::events::Event;
use crate::fault::{FaultPlan, ProtocolPoint};
use crate::jobs::JobRuntime;
use crate::params::ClusterParams;
use crate::recovery::RecoveryReport;
use crate::runtime::{CtlInstant, Deadline, Timers};
use crate::state::FaultState;
use crate::transport::{CtlSock, CtlTransport, SimnetCtl};

pub use crate::node::Node;
pub use crate::ops::{CkptOptions, OpReport};
pub use crate::state::{ClusterError, World};

impl World {
    /// Builds a cluster of `n` nodes on one switch. Node `i` owns IP
    /// `10.0.0.(i+1)`.
    pub fn new(n: usize, params: ClusterParams) -> World {
        assert!(n > 0, "a cluster needs at least one node");
        let fs = NetFs::new();
        let mut rng = SimRng::from_seed(params.seed);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let net = NetStack::new(
                MacAddr::from_index(i as u32 + 1),
                Self::node_ip(i),
                params.subnet_prefix,
                params.tcp.clone(),
            );
            let mut kernel = Kernel::new(net, fs.clone(), Disk::new(params.disk), params.kernel);
            let zap = Zap::new();
            zap.install(&mut kernel);
            nodes.push(Node {
                kernel,
                zap,
                agent: Agent::new(),
                agent_sock: CtlSock::UNBOUND,
                agent_coord_addr: None,
                alive: true,
                run_scheduled: false,
                timer_scheduled: None,
                ctl_cpu_free: SimTime::ZERO,
            });
            let sock = SimnetCtl::new(&mut nodes)
                .bind(i, AGENT_PORT)
                .expect("agent port free on a fresh stack"); // cruz-lint: allow(silent-unwrap)
            nodes[i].agent_sock = sock;
        }
        // Deliberate discard: burn one seed-stream draw so every later
        // draw stays aligned with the pinned golden-trace digests.
        // cruz-lint: allow(swallowed-error)
        let _ = rng.next_u64();
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes,
            switch: Switch::new(n),
            links_up: vec![LinkState::new(); n],
            links_down: vec![LinkState::new(); n],
            fs,
            params,
            rng,
            jobs: BTreeMap::new(),
            migrations: BTreeMap::new(),
            migration_failures: Vec::new(),
            ops: BTreeMap::new(),
            next_op: 1,
            events_processed: 0,
            trace_digest: digest::OFFSET,
            hb: BTreeMap::new(),
            fault: None,
            recovery_reports: Vec::new(),
            pending_recovery: BTreeMap::new(),
            recoveries: BTreeMap::new(),
            crash_log: Vec::new(),
            soft_faults: Vec::new(),
            digest_caches: BTreeMap::new(),
            scrub_reports: Vec::new(),
        }
    }

    /// The IP of node `i`: `10.0.0.(i+1)`.
    pub fn node_ip(i: usize) -> IpAddr {
        crate::node::node_ip(i)
    }

    /// The world's control-plane transport: every protocol layer binds,
    /// sends and receives [`cruz::proto::CtlMsg`] frames through this seam
    /// rather than touching a node's network stack directly.
    pub fn ctl(&mut self) -> SimnetCtl<'_> {
        SimnetCtl::new(&mut self.nodes)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a node's kernel.
    pub fn kernel(&self, n: usize) -> &Kernel {
        &self.nodes[n].kernel
    }

    /// Mutable access to a node's kernel. Callers that mutate kernel state
    /// should follow with [`World::kick_node`].
    pub fn kernel_mut(&mut self, n: usize) -> &mut Kernel {
        &mut self.nodes[n].kernel
    }

    /// A handle to a node's Zap layer.
    pub fn zap(&self, n: usize) -> Zap {
        self.nodes[n].zap.clone()
    }

    /// Re-evaluates a node's scheduling after out-of-band kernel mutation.
    pub fn kick_node(&mut self, n: usize) {
        self.postprocess(n);
    }

    /// Events processed so far (progress metric for run loops).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The checkpoint store for a job: `params.store.replicas` replica
    /// stores behind the one-store API (1 = the plain unreplicated store,
    /// byte-identical to earlier versions), inheriting the cluster's
    /// worker count for the capture/restore hot paths (a wall-clock knob
    /// only — produced bytes are identical at every width).
    pub fn store(&self, job: &str) -> ReplicatedStore {
        ReplicatedStore::new(self.fs.clone(), job, self.params.store.replicas.max(1))
            .with_threads(self.params.store.threads)
    }

    /// The runtime state of a job.
    pub fn job(&self, name: &str) -> Option<&JobRuntime> {
        self.jobs.get(name)
    }

    /// True while a coordinated operation or a migration is in flight for
    /// `job` — new operations are refused until it settles.
    pub fn job_busy(&self, job: &str) -> bool {
        self.migrations.get(job).copied().unwrap_or(0) > 0
            || self
                .ops
                .values()
                .any(|o| o.job == job && !o.complete && !o.aborted)
    }

    /// Marks a node dead: it stops processing events (fail-stop crash).
    pub fn crash_node(&mut self, n: usize) {
        if self.nodes[n].alive {
            self.nodes[n].alive = false;
            self.crash_log.push((n, self.now));
        }
    }

    /// Whether a node is alive (false for out-of-range indices).
    pub fn node_alive(&self, n: usize) -> bool {
        self.nodes.get(n).map(|x| x.alive).unwrap_or(false)
    }

    /// Sets the per-frame loss probability (fault injection).
    // Tuning knob, never checkpoint state. cruz-lint: allow(float-in-sim)
    pub fn set_frame_loss(&mut self, p: f64) {
        self.params.frame_loss = p;
    }

    /// Installs a fault plan: disk faults are armed on their nodes now;
    /// crash and frame faults strike as the run reaches them. The plan's
    /// own seed drives a dedicated RNG stream, so the same plan against the
    /// same world seed replays the identical trace.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for d in &plan.disk {
            if let Some(node) = self.nodes.get_mut(d.node) {
                node.kernel.disk.inject_write_fault(d.nth_write, d.fault);
            }
        }
        // Store-replica faults live in control files on the shared
        // filesystem (the replicated store re-reads them on every op).
        // A plan without any leaves the filesystem untouched, so existing
        // pinned traces see zero delta.
        if plan.replicas.is_empty() {
            clear_replica_faults(&self.fs);
        } else {
            install_replica_faults(&self.fs, &plan.replicas);
        }
        self.fault = Some(FaultState {
            plan: plan.clone(),
            rng: SimRng::from_seed(plan.seed),
            crash_hits: BTreeMap::new(),
        });
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Every recovery pass the self-healing manager has run so far.
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery_reports
    }

    /// Every store scrub pass run so far: `(when, job, what it fixed)`.
    pub fn scrub_reports(&self) -> &[(SimTime, String, ScrubReport)] {
        &self.scrub_reports
    }

    /// Non-fatal control-plane failures recorded instead of discarded:
    /// (simulated time, site, error). Empty on a clean run.
    pub fn soft_faults(&self) -> &[(SimTime, &'static str, ClusterError)] {
        &self.soft_faults
    }

    /// Crashes the plan says should fire at `point` on `node`: counts the
    /// occurrence and kills the node when a [`crate::fault::CrashFault`]
    /// names it. Returns true when the node just died.
    pub(crate) fn maybe_crash(&mut self, node: usize, point: ProtocolPoint) -> bool {
        let fire = match self.fault.as_mut() {
            Some(f) => {
                let hits = f.crash_hits.entry((node, point as u8)).or_insert(0);
                let nth = *hits;
                *hits += 1;
                f.plan
                    .crashes
                    .iter()
                    .any(|c| c.node == node && c.point == point && c.nth == nth)
            }
            None => false,
        };
        if fire {
            self.crash_node(node);
        }
        fire
    }

    /// Reserves one message-processing slot on a node's control-plane CPU,
    /// returning when the work completes.
    pub(crate) fn ctl_slot(&mut self, node: usize) -> SimTime {
        let start = self.nodes[node].ctl_cpu_free.max(self.now);
        let done = start + self.params.ctl_msg_cpu;
        self.nodes[node].ctl_cpu_free = done;
        done
    }

    // ---- event loop -------------------------------------------------------

    /// Processes one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        self.trace_digest = digest::fold_u64(self.trace_digest, at.as_nanos());
        self.trace_digest = digest::fold_u64(self.trace_digest, ev.fingerprint());
        self.dispatch(ev);
        true
    }

    /// The running event-trace digest (see the field docs). Equal seeds
    /// must yield equal digests at equal points in the run.
    pub fn trace_digest(&self) -> u64 {
        self.trace_digest
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until the predicate holds, within an event budget. Returns
    /// whether the predicate held.
    pub fn run_until_pred(&mut self, max_events: u64, pred: impl Fn(&World) -> bool) -> bool {
        for _ in 0..max_events {
            if pred(self) {
                return true;
            }
            if !self.step() {
                return pred(self);
            }
        }
        pred(self)
    }

    /// Runs until operation `op` finishes (or the event budget runs out).
    pub fn run_until_op(&mut self, op: u64, max_events: u64) -> bool {
        self.run_until_pred(max_events, |w| w.op_finished(op))
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::NodeRun(n) => self.on_node_run(n),
            Event::NodeTick(n) => self.on_node_tick(n),
            Event::FrameAtSwitch { from_port, frame } => self.on_frame_at_switch(from_port, frame),
            Event::FrameAtNode { port, frame } => self.on_frame_at_node(port, frame),
            Event::AgentCtl {
                node,
                msg,
                reply_to,
            } => self.on_agent_ctl(node, msg, reply_to),
            Event::AgentLocalDone { node, op } => self.on_agent_local_done(node, op),
            Event::AgentDurable { node, op } => self.on_agent_durable(node, op),
            Event::CkptDrain { node, op } => self.on_ckpt_drain(node, op),
            Event::CoordCtl { op, from, msg } => self.on_coord_ctl(op, from, msg),
            Event::CoordSend { op, to, msg } => self.on_coord_send(op, to, msg),
            Event::CoordTimeout { op } => self.on_coord_timeout(op),
            Event::CoordRetry { op, attempt } => self.on_coord_retry(op, attempt),
            Event::Heartbeat { job } => self.on_heartbeat(&job),
            Event::HeartbeatTimeout {
                job,
                sent_at,
                pinged,
            } => self.on_heartbeat_timeout(&job, sent_at, pinged),
            Event::FrameAtNodeInjected { port, frame } => self.on_frame_injected(port, frame),
            Event::PeriodicCkpt {
                job,
                interval,
                mode,
                cow,
            } => self.on_periodic_ckpt(&job, interval, mode, cow),
            Event::MigrateFinish {
                job,
                pod,
                dst,
                image,
            } => self.on_migrate_finish(&job, &pod, dst, &image),
            Event::StoreScrub { job, interval } => self.on_store_scrub(&job, interval),
        }
    }

    fn on_node_run(&mut self, n: usize) {
        self.nodes[n].run_scheduled = false;
        if !self.nodes[n].alive {
            return;
        }
        let out = self.nodes[n].kernel.run_slice(self.now);
        let after = self.now + out.elapsed.max(SimDuration::from_nanos(1));
        self.emit_frames(n, after);
        self.poll_ctl(n);
        if self.nodes[n].kernel.has_runnable() {
            self.nodes[n].run_scheduled = true;
            self.queue.push(after, Event::NodeRun(n));
        }
        self.reschedule_timer(n);
    }

    fn on_node_tick(&mut self, n: usize) {
        self.nodes[n].timer_scheduled = None;
        if !self.nodes[n].alive {
            return;
        }
        self.nodes[n].kernel.on_tick(self.now);
        self.postprocess(n);
    }

    fn on_frame_at_switch(&mut self, from_port: usize, frame: EthFrame) {
        let outs = self.switch.forward(PortId(from_port), &frame);
        for PortId(p) in outs {
            let deliver =
                self.links_down[p].schedule(self.now, frame.wire_len(), &self.params.link);
            self.queue.push(
                deliver,
                Event::FrameAtNode {
                    port: p,
                    frame: frame.clone(),
                },
            );
        }
    }

    fn on_frame_at_node(&mut self, port: usize, frame: EthFrame) {
        if !self.nodes[port].alive {
            return;
        }
        if self.params.frame_loss > 0.0 && self.rng.chance(self.params.frame_loss) {
            return;
        }
        if let Some(f) = self.fault.as_mut() {
            if !f.plan.frames.is_none() {
                match f.plan.frames.decide(&mut f.rng) {
                    FrameFate::Deliver => {}
                    FrameFate::Drop => return,
                    FrameFate::Duplicate { delay } => {
                        self.queue.push(
                            self.now + delay,
                            Event::FrameAtNodeInjected {
                                port,
                                frame: frame.clone(),
                            },
                        );
                    }
                    FrameFate::Reorder { delay } => {
                        // Held back: later frames overtake it on the wire.
                        self.queue
                            .push(self.now + delay, Event::FrameAtNodeInjected { port, frame });
                        return;
                    }
                }
            }
        }
        self.deliver_frame(port, frame);
    }

    fn on_frame_injected(&mut self, port: usize, frame: EthFrame) {
        if !self.nodes[port].alive {
            return;
        }
        self.deliver_frame(port, frame);
    }

    fn deliver_frame(&mut self, port: usize, frame: EthFrame) {
        self.nodes[port].kernel.on_frame(frame, self.now);
        self.postprocess(port);
    }

    // ---- node plumbing ------------------------------------------------------

    /// Drains a node's outgoing frames and re-arms its run/timer events.
    pub(crate) fn postprocess(&mut self, n: usize) {
        self.emit_frames(n, self.now);
        self.poll_ctl(n);
        if self.nodes[n].kernel.has_runnable() && !self.nodes[n].run_scheduled {
            self.nodes[n].run_scheduled = true;
            self.queue.push(self.now, Event::NodeRun(n));
        }
        self.reschedule_timer(n);
    }

    fn emit_frames(&mut self, n: usize, at: SimTime) {
        let frames = self.nodes[n].kernel.take_frames();
        for frame in frames {
            let arrive = self.links_up[n].schedule(at, frame.wire_len(), &self.params.link);
            self.queue.push(
                arrive,
                Event::FrameAtSwitch {
                    from_port: n,
                    frame,
                },
            );
        }
    }

    fn reschedule_timer(&mut self, n: usize) {
        let Some(t) = self.nodes[n].kernel.next_timer() else {
            return;
        };
        let t = t.max(self.now);
        match self.nodes[n].timer_scheduled {
            Some(existing) if existing <= t => {}
            _ => {
                self.nodes[n].timer_scheduled = Some(t);
                self.queue.push(t, Event::NodeTick(n));
            }
        }
    }

    /// Drains control datagrams at a node-service point: the agent
    /// endpoint, heartbeat sockets of jobs coordinated here, then
    /// coordinator reply sockets — in that fixed order, so the event
    /// schedule is identical run to run.
    fn poll_ctl(&mut self, n: usize) {
        self.pump_agent(n);
        self.pump_heartbeat(n);
        self.pump_coord(n);
    }
}

/// The sim backend's 1:1 mapping from the protocol's portable deadline
/// vocabulary onto its internal [`Event`] step log. Same variant, same
/// fields, lossless time conversion — which is how the `Timers` refactor
/// leaves every pinned golden-trace digest untouched.
fn deadline_event(d: Deadline) -> Event {
    match d {
        Deadline::AgentCtl {
            node,
            msg,
            reply_to,
        } => Event::AgentCtl {
            node,
            msg,
            reply_to,
        },
        Deadline::AgentLocalDone { node, op } => Event::AgentLocalDone { node, op },
        Deadline::AgentDurable { node, op } => Event::AgentDurable { node, op },
        Deadline::CkptDrain { node, op } => Event::CkptDrain { node, op },
        Deadline::CoordCtl { op, from, msg } => Event::CoordCtl { op, from, msg },
        Deadline::CoordSend { op, to, msg } => Event::CoordSend { op, to, msg },
        Deadline::CoordTimeout { op } => Event::CoordTimeout { op },
        Deadline::CoordRetry { op, attempt } => Event::CoordRetry { op, attempt },
        Deadline::Heartbeat { job } => Event::Heartbeat { job },
        Deadline::HeartbeatTimeout {
            job,
            sent_at,
            pinged,
        } => Event::HeartbeatTimeout {
            job,
            sent_at: sent_at.into(),
            pinged,
        },
        Deadline::PeriodicCkpt {
            job,
            interval,
            mode,
            cow,
        } => Event::PeriodicCkpt {
            job,
            interval: interval.into(),
            mode,
            cow,
        },
        Deadline::MigrateFinish {
            job,
            pod,
            dst,
            image,
        } => Event::MigrateFinish {
            job,
            pod,
            dst,
            image,
        },
        Deadline::StoreScrub { job, interval } => Event::StoreScrub {
            job,
            interval: interval.into(),
        },
    }
}

/// The DES backend of the runtime seam: `now` is virtual time and `arm`
/// appends to the deterministic event queue (insertion order breaks time
/// ties, satisfying the [`Timers`] ordering contract exactly).
impl Timers for World {
    fn now(&self) -> CtlInstant {
        self.now.into()
    }

    fn arm(&mut self, at: CtlInstant, d: Deadline) {
        self.queue.push(at.into(), deadline_event(d));
    }
}
