//! World assembly: simulated nodes, switch, control plane and job manager.
//!
//! This crate wires the pure layers together into one deterministic
//! discrete-event simulation, as a layered protocol engine with an
//! explicit transport seam (the DMTCP lesson: the coordinator protocol
//! must not know what carries its messages):
//!
//! ```text
//!        simrt (DES oracle)          netrt (loopback UDP + OS threads)
//!                 world (DES loop + node table)
//!     ops ─ ops_agent ─ drain ─ heartbeat ─ recovery
//!              transport (CtlTransport)
//!        runtime (CtlAddr / CtlInstant / Timers)
//! ```
//!
//! * [`params`] — cluster-wide timing parameters, calibrated to the paper's
//!   gigabit-Ethernet / 1 GHz-node / 2005-disk testbed;
//! * [`jobs`] — job specifications and pod placement (the LSF analogue);
//! * [`fault`] — seeded, replayable fault plans (protocol-point crashes,
//!   disk-write faults, control-frame drop/duplicate/reorder);
//! * [`node`] — the base layer: one simulated node (kernel + Zap + agent)
//!   and its control-socket handle, imported by everything above;
//! * [`state`] — the shared cluster state: [`state::World`]'s fields,
//!   [`state::ClusterError`] and the installed fault plane, sitting below
//!   the driver so the operation layers need not import upward;
//! * [`runtime`] — the sim-agnostic runtime seam: engine-owned time
//!   ([`runtime::CtlInstant`]), node addressing ([`runtime::CtlAddr`])
//!   and the [`runtime::Timers`] deadline vocabulary the protocol layers
//!   schedule against;
//! * [`transport`] — the [`transport::CtlTransport`] seam: bind/send/recv
//!   of control frames over [`runtime::CtlAddr`]s, with the simulated-UDP
//!   backend as its first implementation and the net runtime's loopback
//!   transport as its second;
//! * [`events`] — the sim backend's internal DES step log and the
//!   per-event fingerprint folded into the trace digest;
//! * [`ops`] — coordinated-operation runtime, coordinator side: install,
//!   message flow, retry/timeout, abort, migration;
//! * [`ops_agent`] — coordinated-operation runtime, agent side: freeze,
//!   capture, persist, restore, resume, roll back;
//! * [`drain`] — COW capture scheduling (snapshot arm, background drain,
//!   retroactive disk batches);
//! * [`heartbeat`] — failure detection, the self-healing recovery pass and
//!   coordinator failover;
//! * [`recovery`] — recovery reports emitted by the self-healing manager;
//! * [`world`] — [`world::World`]: the thin driver that owns the event
//!   loop, the node table and the switch, and dispatches to the layers
//!   above;
//! * [`simrt`] — [`simrt::SimRuntime`]: the deterministic DES backend of
//!   the runtime seam, byte-identical and pinned by the golden traces;
//! * [`netrt`] — [`netrt::NetRuntime`]: the same protocol engine over
//!   real `std::net::UdpSocket`s on loopback, one OS thread per node and
//!   a wall clock.
//!
//! Benchmarks and examples drive a `World`; everything they measure emerges
//! from the simulated components rather than from hard-coded results.

#![warn(missing_docs)]

pub mod drain;
pub mod events;
pub mod fault;
pub mod heartbeat;
pub mod jobs;
pub mod netrt;
pub mod node;
pub mod ops;
pub mod ops_agent;
pub mod params;
pub mod recovery;
pub mod runtime;
pub mod simrt;
pub mod state;
pub mod transport;
pub mod world;

pub use cruz::replog::{CompactReport, ReplicatedStore, ScrubReport};
pub use cruz::store::StoreConfig;
pub use events::Event;
pub use fault::{
    CrashFault, DiskFault, FaultPlan, ProtocolPoint, ReplicaFault, ReplicaFaultKind, StoreOpPoint,
};
pub use jobs::{JobRuntime, JobSpec, PodPlacement, PodSpec};
pub use netrt::{NetRuntime, NetRuntimeReport};
pub use ops::{CkptOptions, OpReport};
pub use params::{CkptCaptureMode, ClusterParams, RecoveryParams, RetryPolicy, SparePolicy};
pub use recovery::{RecoveryCause, RecoveryOutcome, RecoveryReport};
pub use runtime::{CtlAddr, CtlDuration, CtlInstant, Deadline, Timers};
pub use simrt::{CycleReport, SimRuntime};
pub use transport::{CtlSock, CtlTransport, SimnetCtl};
pub use world::{ClusterError, Node, World};
