//! World assembly: simulated nodes, switch, control plane and job manager.
//!
//! This crate wires the pure layers together into one deterministic
//! discrete-event simulation:
//!
//! * [`params`] — cluster-wide timing parameters, calibrated to the paper's
//!   gigabit-Ethernet / 1 GHz-node / 2005-disk testbed;
//! * [`jobs`] — job specifications and pod placement (the LSF analogue);
//! * [`world`] — [`world::World`]: the event loop hosting every node's
//!   kernel, the learning switch with per-link bandwidth/latency, the Cruz
//!   coordinator/agent control plane riding real UDP datagrams, coordinated
//!   checkpoint/restart execution with disk-timed image I/O, single-pod live
//!   migration, node-crash fault injection and frame-loss injection.
//!
//! Benchmarks and examples drive a `World`; everything they measure emerges
//! from the simulated components rather than from hard-coded results.

#![warn(missing_docs)]

pub mod jobs;
pub mod params;
pub mod world;

pub use cruz::store::StoreConfig;
pub use jobs::{JobRuntime, JobSpec, PodPlacement, PodSpec};
pub use params::{CkptCaptureMode, ClusterParams};
pub use world::{ClusterError, Node, OpReport, World};
