//! World assembly: simulated nodes, switch, control plane and job manager.
//!
//! This crate wires the pure layers together into one deterministic
//! discrete-event simulation:
//!
//! * [`params`] — cluster-wide timing parameters, calibrated to the paper's
//!   gigabit-Ethernet / 1 GHz-node / 2005-disk testbed;
//! * [`jobs`] — job specifications and pod placement (the LSF analogue);
//! * [`fault`] — seeded, replayable fault plans (protocol-point crashes,
//!   disk-write faults, control-frame drop/duplicate/reorder);
//! * [`recovery`] — recovery reports emitted by the self-healing manager;
//! * [`world`] — [`world::World`]: the event loop hosting every node's
//!   kernel, the learning switch with per-link bandwidth/latency, the Cruz
//!   coordinator/agent control plane riding real UDP datagrams, coordinated
//!   checkpoint/restart execution with disk-timed image I/O, single-pod live
//!   migration, heartbeat failure detection with automatic restart from the
//!   last committed epoch, and deterministic fault injection.
//!
//! Benchmarks and examples drive a `World`; everything they measure emerges
//! from the simulated components rather than from hard-coded results.

#![warn(missing_docs)]

pub mod fault;
pub mod jobs;
pub mod params;
pub mod recovery;
pub mod world;

pub use cruz::store::StoreConfig;
pub use fault::{CrashFault, DiskFault, FaultPlan, ProtocolPoint};
pub use jobs::{JobRuntime, JobSpec, PodPlacement, PodSpec};
pub use params::{CkptCaptureMode, ClusterParams, RecoveryParams, RetryPolicy, SparePolicy};
pub use recovery::{RecoveryCause, RecoveryOutcome, RecoveryReport};
pub use world::{ClusterError, Node, OpReport, World};
