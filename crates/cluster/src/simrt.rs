//! The DES backend of the runtime seam: [`SimRuntime`] drives the full
//! checkpoint → fault → recover → restore cycle inside the deterministic
//! simulator.
//!
//! This is the *oracle* half of the twin-runtime pair. It owns a
//! [`World`] and replays the exact protocol the golden traces pin —
//! nothing here schedules events of its own; every deadline still flows
//! through [`crate::runtime::Timers`] into the pinned DES queue, so a
//! `SimRuntime` run is byte-identical to driving the same `World` by
//! hand. Its counterpart, [`crate::netrt::NetRuntime`], runs the same
//! protocol engine over real loopback UDP sockets and OS threads; the
//! two must agree on the restored-image digest for the same workload
//! (the twin-runtime property `tests/twin_runtime.rs` checks).

use cruz::error::CruzError;
use cruz::proto::ProtocolMode;

use crate::jobs::JobSpec;
use crate::params::ClusterParams;
use crate::runtime::image_set_digest;
use crate::state::{ClusterError, World};

/// Outcome of one full cycle: run the job to completion, checkpoint it,
/// fail the hosting node(s), restore the committed epoch onto a spare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// The committed checkpoint epoch the restore rolled back to.
    pub epoch: u64,
    /// FNV-1a digest over the restored pods' image bytes as read back
    /// from the store — the cross-backend comparison point.
    pub restored_digest: u64,
    /// The pods restored onto the spare, in digest order.
    pub restored_pods: Vec<String>,
    /// DES events processed over the whole cycle (sim backend only).
    pub events_processed: u64,
}

/// The deterministic-simulator backend of the runtime seam.
///
/// Wraps a [`World`] and exposes the same cycle API as
/// [`crate::netrt::NetRuntime`]. Because it *is* the pinned DES engine,
/// its behavior is covered by `tests/golden_trace.rs`; this type adds no
/// scheduling of its own.
pub struct SimRuntime {
    world: World,
    budget: u64,
}

impl SimRuntime {
    /// A cluster of `n` simulated nodes.
    pub fn new(n: usize, params: ClusterParams) -> SimRuntime {
        SimRuntime {
            world: World::new(n, params),
            budget: 50_000_000,
        }
    }

    /// Overrides the per-phase DES event budget (default 50M events).
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> SimRuntime {
        self.budget = budget;
        self
    }

    /// Read access to the underlying world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the underlying world (fault plans, params).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Runs the full cycle for `spec`: launch, run the workload to
    /// completion, take a blocking checkpoint, crash every node hosting a
    /// pod, then restore the committed epoch onto `spare`.
    ///
    /// The workload must terminate on its own (every process exits) — the
    /// cycle checkpoints the *finished* state so the image bytes are
    /// independent of capture timing, which is what makes the digest
    /// comparable across backends.
    ///
    /// # Errors
    ///
    /// Any [`ClusterError`] from launch/checkpoint/restore, or
    /// [`ClusterError::Protocol`] when a phase exhausts the event budget.
    pub fn run_cycle(&mut self, spec: &JobSpec, spare: usize) -> Result<CycleReport, ClusterError> {
        let job = spec.name.clone();
        let app_nodes: Vec<usize> = {
            let mut v: Vec<usize> = spec.pods.iter().map(|p| p.node).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if app_nodes.contains(&spare) {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "spare node hosts a pod of the job",
            )));
        }
        self.world.launch_job(spec)?;
        if !self
            .world
            .run_until_pred(self.budget, |w| w.job_finished(&job))
        {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "workload did not finish within the event budget",
            )));
        }
        let op = self
            .world
            .start_checkpoint(&job, ProtocolMode::Blocking, None)?;
        if !self.world.run_until_op(op, self.budget) {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "checkpoint did not finish within the event budget",
            )));
        }
        if self.world.op_report(op).map(|r| r.aborted).unwrap_or(true) {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "checkpoint aborted",
            )));
        }
        let epoch =
            self.world
                .store(&job)
                .latest_committed_epoch()
                .ok_or(ClusterError::Protocol(CruzError::Protocol(
                    "no committed epoch after checkpoint",
                )))?;
        for &n in &app_nodes {
            self.world.crash_node(n);
        }
        let placement: Vec<(String, usize)> =
            spec.pods.iter().map(|p| (p.name.clone(), spare)).collect();
        let op2 = self
            .world
            .start_restart(&job, epoch, &placement, ProtocolMode::Blocking)?;
        if !self.world.run_until_op(op2, self.budget) {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "restore did not finish within the event budget",
            )));
        }
        if self.world.op_report(op2).map(|r| r.aborted).unwrap_or(true) {
            return Err(ClusterError::Protocol(CruzError::Protocol(
                "restore aborted",
            )));
        }
        let store = self.world.store(&job);
        let mut pods: Vec<String> = spec.pods.iter().map(|p| p.name.clone()).collect();
        pods.sort();
        let mut pairs: Vec<(String, Vec<u8>)> = Vec::with_capacity(pods.len());
        for p in pods {
            let bytes =
                store
                    .get_image(&p, epoch)
                    .ok_or(ClusterError::Protocol(CruzError::Protocol(
                        "restored pod image missing from the store",
                    )))?;
            pairs.push((p, bytes));
        }
        Ok(CycleReport {
            epoch,
            restored_digest: image_set_digest(&pairs),
            restored_pods: pairs.into_iter().map(|(p, _)| p).collect(),
            events_processed: self.world.events_processed(),
        })
    }
}
