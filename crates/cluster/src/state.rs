//! The engine's shared state: [`World`], its error type, and the
//! installed fault plane.
//!
//! Only *definitions* live here — the struct, [`ClusterError`], and the
//! fault plane's armed state. The module sits in the same layer of the
//! cluster map as `ops`/`drain`/`heartbeat`/`jobs` (DESIGN.md §14), so
//! those impl-block modules can name [`World`] and [`ClusterError`]
//! without importing the [`crate::world`] driver above them. Behavior —
//! construction, the event loop, frame routing — stays in
//! [`crate::world`], and each protocol layer extends [`World`] with its
//! own `impl` block.

use std::collections::BTreeMap;
use std::fmt;

use des::{EventQueue, SimRng, SimTime};
use simnet::link::LinkState;
use simnet::switch::Switch;
use simos::fs::NetFs;
use zap::ZapError;

use cruz::error::CruzError;

use crate::events::Event;
use crate::fault::FaultPlan;
use crate::heartbeat::HeartbeatState;
use crate::jobs::JobRuntime;
use crate::node::Node;
use crate::ops::OpRuntime;
use crate::params::ClusterParams;
use crate::recovery::RecoveryReport;

/// Cluster-level errors.
#[derive(Debug)]
pub enum ClusterError {
    /// Unknown node index.
    BadNode(usize),
    /// Unknown job name.
    NoSuchJob,
    /// A job with that name already exists.
    JobExists,
    /// The requested epoch has no committed checkpoint.
    NoSuchEpoch(u64),
    /// Another coordinated operation or migration is in flight for the job;
    /// operations on one job are serialized, as a job manager would.
    JobBusy,
    /// A Zap-layer failure.
    Zap(ZapError),
    /// A control-plane failure (bad stored image, socket exhaustion,
    /// violated protocol invariant). Aborts the operation, not the world.
    Protocol(CruzError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BadNode(n) => write!(f, "no node {n}"),
            ClusterError::NoSuchJob => write!(f, "no such job"),
            ClusterError::JobExists => write!(f, "job already exists"),
            ClusterError::NoSuchEpoch(e) => write!(f, "epoch {e} has no committed checkpoint"),
            ClusterError::JobBusy => write!(f, "an operation is already in flight for this job"),
            ClusterError::Zap(e) => write!(f, "zap: {e}"),
            ClusterError::Protocol(e) => write!(f, "control plane: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ZapError> for ClusterError {
    fn from(e: ZapError) -> Self {
        ClusterError::Zap(e)
    }
}

impl From<CruzError> for ClusterError {
    fn from(e: CruzError) -> Self {
        ClusterError::Protocol(e)
    }
}

/// An installed fault plan plus its dedicated RNG stream and per-point hit
/// counters. A separate stream means arming faults never perturbs the
/// world's own RNG, so a faulted run and a clean run share every decision
/// up to the first injected fault.
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: SimRng,
    pub(crate) crash_hits: BTreeMap<(usize, u8), u32>,
}

/// The simulated cluster world.
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) switch: Switch,
    pub(crate) links_up: Vec<LinkState>,
    pub(crate) links_down: Vec<LinkState>,
    /// The shared network filesystem.
    pub fs: NetFs,
    /// The parameters this world was built with.
    pub params: ClusterParams,
    pub(crate) rng: SimRng,
    pub(crate) jobs: BTreeMap<String, JobRuntime>,
    /// In-flight single-pod migrations per job.
    pub(crate) migrations: BTreeMap<String, usize>,
    /// Migrations whose destination refused the restore or whose restored
    /// pods refused to resume: (job, pod, error).
    pub(crate) migration_failures: Vec<(String, String, CruzError)>,
    pub(crate) ops: BTreeMap<u64, OpRuntime>,
    pub(crate) next_op: u64,
    pub(crate) events_processed: u64,
    /// FNV-1a fold over (time, event fingerprint) of every dispatched
    /// event — a cheap witness of the whole execution order. Two runs
    /// with the same seed must end with the same digest; a divergence
    /// pinpoints the first source of nondeterminism.
    pub(crate) trace_digest: u64,
    /// Per-job heartbeat state (present only while recovery watches a job).
    pub(crate) hb: BTreeMap<String, HeartbeatState>,
    /// The installed fault plan, if any.
    pub(crate) fault: Option<FaultState>,
    /// Every recovery pass the self-healing manager has run.
    pub(crate) recovery_reports: Vec<RecoveryReport>,
    /// Restart op → index into `recovery_reports`, stamped on completion.
    pub(crate) pending_recovery: BTreeMap<u64, usize>,
    /// Automatic recoveries performed per job (bounded by
    /// `RecoveryParams::max_recoveries`).
    pub(crate) recoveries: BTreeMap<String, u32>,
    /// Every node crash the world has seen: (node, time). Lets recovery
    /// reports measure detection latency from the true crash instant.
    pub(crate) crash_log: Vec<(usize, SimTime)>,
    /// Non-fatal control-plane failures that would otherwise be silently
    /// discarded: (time, where, error). The swallowed-error lint forces
    /// every discard on a protocol path to either land here or carry a
    /// reasoned `allow`.
    pub(crate) soft_faults: Vec<(SimTime, &'static str, ClusterError)>,
    /// Per-job page-digest caches for the dedup capture path: clean pages
    /// skip re-hash/re-encode against the pod's previous capture.
    /// Invalidated whenever pod memory changes outside a completed capture
    /// (restarts, migrations, aborted operations).
    pub(crate) digest_caches: BTreeMap<String, cruz::pagecache::DigestCache>,
    /// Every replicated-store scrub pass run so far: (time, job, report).
    /// Empty when replication is off (k = 1 stores never scrub).
    pub(crate) scrub_reports: Vec<(SimTime, String, cruz::replog::ScrubReport)>,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("jobs", &self.jobs.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}
