//! End-to-end distributed checkpoint-restart tests: live applications on a
//! multi-node simulated cluster, the full Fig. 2 protocol over the wire.

use cluster::{ClusterParams, JobSpec, PodSpec, World};
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simnet::addr::{IpAddr, MacAddr};
use workloads::pingpong::PingPongConfig;
use workloads::slm::SlmConfig;
use workloads::ComputeConfig;
use zap::image::MacMode;

fn pingpong_job(
    rounds: u64,
    server_node: usize,
    client_node: usize,
    coord: usize,
) -> (JobSpec, PingPongConfig) {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    let spec = JobSpec {
        name: "pp".into(),
        coordinator_node: coord,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: server_node,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: client_node,
                programs: vec![cfg.client_program()],
            },
        ],
    };
    (spec, cfg)
}

#[test]
fn cross_node_pingpong_completes() {
    let mut w = World::new(3, ClusterParams::default());
    let (spec, _) = pingpong_job(200, 0, 1, 2);
    w.launch_job(&spec).unwrap();
    assert!(w.run_until_pred(5_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn checkpoint_mid_run_is_transparent() {
    let mut w = World::new(3, ClusterParams::default());
    let (spec, _) = pingpong_job(400, 0, 1, 2);
    w.launch_job(&spec).unwrap();
    // Let the exchange get going, then checkpoint.
    w.run_for(SimDuration::from_millis(5));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 5_000_000), "checkpoint completes");
    let report = w.op_report(op).unwrap();
    assert!(report.complete && !report.aborted);
    assert!(w.store("pp").is_committed(op));
    // The application never notices: every round-trip token checks out.
    assert!(w.run_until_pred(20_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn optimized_protocol_is_equally_transparent() {
    let mut w = World::new(3, ClusterParams::default());
    let (spec, _) = pingpong_job(400, 0, 1, 2);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(5));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Optimized, None)
        .unwrap();
    assert!(w.run_until_op(op, 5_000_000));
    assert!(w.run_until_pred(20_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn restart_on_new_nodes_after_crash() {
    let mut w = World::new(5, ClusterParams::default());
    let (spec, _) = pingpong_job(600, 0, 1, 4);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(8));
    let ck = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(ck, 5_000_000));
    // Progress continues after the checkpoint, then both app nodes die.
    w.run_for(SimDuration::from_millis(5));
    w.crash_node(0);
    w.crash_node(1);
    w.run_for(SimDuration::from_millis(5));
    // Restart the job from the committed epoch on fresh nodes 2 and 3.
    let rs = w
        .start_restart(
            "pp",
            ck,
            &[("server".into(), 2), ("client".into(), 3)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(rs, 5_000_000), "restart completes");
    // The pods pick up exactly where the checkpoint cut them and finish
    // with all token checks intact.
    assert!(w.run_until_pred(30_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    // And they really run on the new nodes.
    let jr = w.job("pp").unwrap();
    assert_eq!(jr.placement("server").unwrap().node, 2);
    assert_eq!(jr.placement("client").unwrap().node, 3);
}

#[test]
fn repeated_checkpoints_of_slm_complete_and_app_finishes() {
    let slm = SlmConfig {
        ranks: 4,
        state_bytes: 256 * 1024,
        iters: 40,
        compute_ns: 2_000_000,
        halo_bytes: 4096,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(5, ClusterParams::default());
    let spec = slm.job_spec("slm", 4);
    w.launch_job(&spec).unwrap();
    let mut ops = Vec::new();
    for i in 0..3 {
        w.run_for(SimDuration::from_millis(25));
        let op = w
            .start_checkpoint("slm", ProtocolMode::Blocking, None)
            .unwrap();
        assert!(w.run_until_op(op, 10_000_000), "checkpoint {i} completes");
        ops.push(op);
    }
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("slm")));
    for r in 0..4 {
        assert_eq!(
            w.pod_exit_code("slm", &format!("rank{r}"), 1),
            Some(0),
            "rank {r} exits cleanly"
        );
    }
    // Every epoch committed; coordination overhead far below local save.
    for op in ops {
        let rep = w.op_report(op).unwrap();
        assert!(rep.complete);
        let latency = rep.stats.checkpoint_latency().unwrap();
        let overhead = rep.coordination_overhead().unwrap();
        assert!(
            overhead < latency,
            "overhead {overhead} < latency {latency}"
        );
        assert!(
            overhead < SimDuration::from_millis(2),
            "coordination is sub-millisecond, got {overhead}"
        );
    }
}

#[test]
fn message_complexity_is_linear() {
    // 2 messages out + 2 in per agent, regardless of communication pattern.
    let slm = SlmConfig {
        ranks: 4,
        state_bytes: 64 * 1024,
        iters: 200,
        compute_ns: 1_000_000,
        halo_bytes: 1024,
        port: 7100,
        state_step_bytes: 0,
    };
    // A snappy retransmission timer: the freeze drops in-flight halo frames,
    // and the ranks must recover and resume computing *within* the drain
    // window for the COW race to be exercised (with the default 200 ms
    // min-RTO they would idle until long after the drain).
    let tcp = simnet::tcp::TcpConfig {
        initial_rto: SimDuration::from_millis(2),
        min_rto: SimDuration::from_millis(1),
        ..simnet::tcp::TcpConfig::default()
    };
    let mut w = World::new(
        5,
        ClusterParams {
            tcp,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&slm.job_spec("slm", 4)).unwrap();
    w.run_for(SimDuration::from_millis(10));
    let op = w
        .start_checkpoint("slm", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 10_000_000));
    let rep = w.op_report(op).unwrap();
    assert_eq!(rep.stats.msgs_sent, 8, "2N messages from the coordinator");
    assert_eq!(rep.stats.msgs_received, 8, "2N messages to the coordinator");
}

#[test]
fn live_migration_keeps_the_connection() {
    // Migrate the ping-pong server mid-exchange; the client (a remote peer
    // that is "not under Zap control" of the migration) never notices.
    let mut w = World::new(4, ClusterParams::default());
    let (spec, _) = pingpong_job(500, 0, 1, 3);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(6));
    assert!(!w.job_finished("pp"), "still mid-exchange");
    w.migrate_pod("pp", "server", 2).unwrap();
    assert!(w.run_until_pred(30_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    assert_eq!(w.job("pp").unwrap().placement("server").unwrap().node, 2);
}

#[test]
fn timeout_aborts_when_an_agent_node_is_dead() {
    // Two independent compute pods; one node dies before the checkpoint.
    let compute = ComputeConfig {
        outer: 50_000,
        inner: 200,
    };
    let spec = JobSpec {
        name: "c".into(),
        coordinator_node: 2,
        pods: vec![
            PodSpec {
                name: "a".into(),
                ip: IpAddr::from_octets([10, 0, 1, 10]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2010)),
                node: 0,
                programs: vec![compute.program()],
            },
            PodSpec {
                name: "b".into(),
                ip: IpAddr::from_octets([10, 0, 1, 11]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2011)),
                node: 1,
                programs: vec![compute.program()],
            },
        ],
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(2));
    w.crash_node(1);
    let op = w
        .start_checkpoint(
            "c",
            ProtocolMode::Blocking,
            Some(SimDuration::from_millis(50)),
        )
        .unwrap();
    assert!(w.run_until_op(op, 10_000_000));
    let rep = w.op_report(op).unwrap();
    assert!(rep.aborted, "dead agent must abort the 2PC");
    assert!(!w.store("c").is_committed(op), "no commit record");
    // The surviving pod was rolled back (resumed, filter lifted) and
    // finishes normally.
    assert!(w.run_until_pred(20_000_000, |w| { w.pod_exit_code("c", "a", 1).is_some() }));
}

#[test]
fn checkpoint_latency_tracks_state_size() {
    // Bigger resident state ⇒ longer local save ⇒ longer total latency;
    // coordination overhead stays flat (the Fig. 5 structure).
    let mut latencies = Vec::new();
    let mut overheads = Vec::new();
    for state_kb in [128u64, 8192] {
        let slm = SlmConfig {
            ranks: 2,
            state_bytes: state_kb * 1024,
            iters: 500,
            compute_ns: 1_000_000,
            halo_bytes: 1024,
            port: 7100,
            state_step_bytes: 0,
        };
        let mut w = World::new(3, ClusterParams::default());
        w.launch_job(&slm.job_spec("slm", 2)).unwrap();
        w.run_for(SimDuration::from_millis(10));
        let op = w
            .start_checkpoint("slm", ProtocolMode::Blocking, None)
            .unwrap();
        assert!(w.run_until_op(op, 10_000_000));
        let rep = w.op_report(op).unwrap();
        latencies.push(rep.stats.checkpoint_latency().unwrap());
        overheads.push(rep.coordination_overhead().unwrap());
    }
    assert!(
        latencies[1] > latencies[0] * 5,
        "8x state should dominate latency: {latencies:?}"
    );
    let (a, b) = (overheads[0].as_micros_f64(), overheads[1].as_micros_f64());
    assert!(
        (a - b).abs() < a.max(b) * 0.8 + 200.0,
        "overhead roughly flat: {overheads:?}"
    );
}

#[test]
fn cow_checkpoint_shrinks_blackout_and_still_commits() {
    // §5.2/COW: same transparency guarantees, but the pods are frozen only
    // for state *capture*; the disk writes finish in the background before
    // the commit record appears.
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 4 * 1024 * 1024,
        iters: 2_000,
        compute_ns: 2_000_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&slm.job_spec("slm", 2)).unwrap();
    w.run_for(SimDuration::from_millis(20));

    let full = w
        .start_checkpoint_opts("slm", ProtocolMode::Blocking, false, None)
        .unwrap();
    assert!(w.run_until_op(full, 20_000_000));
    let full_rep = w.op_report(full).unwrap();

    w.run_for(SimDuration::from_millis(20));
    let cow = w
        .start_checkpoint_opts("slm", ProtocolMode::Blocking, true, None)
        .unwrap();
    assert!(w.run_until_op(cow, 20_000_000));
    let cow_rep = w.op_report(cow).unwrap();

    // Both epochs committed and restorable.
    assert!(w.store("slm").is_committed(full));
    assert!(w.store("slm").is_committed(cow));
    // COW blackout is a small fraction of the full one.
    let full_block = full_rep.blocked_durations()[0].1;
    let cow_block = cow_rep.blocked_durations()[0].1;
    assert!(
        cow_block.as_millis_f64() < full_block.as_millis_f64() * 0.25,
        "cow {cow_block} vs full {full_block}"
    );
    // And the application is still correct — restart from the COW epoch.
    w.crash_node(0);
    w.crash_node(1);
    // Restart needs spare nodes; rebuild placement onto the same world is
    // not possible with both app nodes dead and only node 2 spare — so
    // just verify the images decode and carry the expected pods.
    let store = w.store("slm");
    for r in 0..2 {
        let bytes = store.get_image(&format!("rank{r}"), cow).unwrap();
        let img = cruz_repro_decode(&bytes);
        assert_eq!(img.name, format!("slm:rank{r}"));
    }
}

fn cruz_repro_decode(bytes: &[u8]) -> zap::image::PodImage {
    zap::image::PodImage::decode(bytes).expect("stored image decodes")
}

#[test]
fn periodic_checkpoint_driver_runs_the_job_to_completion() {
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 512 * 1024,
        iters: 120,
        compute_ns: 2_000_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(
        3,
        ClusterParams {
            prune_old_epochs: false,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&slm.job_spec("slm", 2)).unwrap();
    w.schedule_periodic_checkpoints(
        "slm",
        SimDuration::from_millis(60),
        ProtocolMode::Optimized,
        true,
    )
    .unwrap();
    assert!(w.run_until_pred(100_000_000, |w| w.job_finished("slm")));
    for r in 0..2 {
        assert_eq!(w.pod_exit_code("slm", &format!("rank{r}"), 1), Some(0));
    }
    // The ~260 ms run at a 60 ms cadence commits several epochs.
    let epochs = w.store("slm").committed_epochs();
    assert!(epochs.len() >= 3, "got {epochs:?}");
    // Driver retired: advancing time schedules no further checkpoints.
    let before = epochs.len();
    w.run_for(SimDuration::from_millis(300));
    assert_eq!(w.store("slm").committed_epochs().len(), before);
}

#[test]
fn incremental_epochs_restore_through_the_full_protocol() {
    use cluster::world::CkptOptions;
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 2 * 1024 * 1024,
        iters: 100_000,
        compute_ns: 2_000_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    // A snappy retransmission timer: the freeze drops in-flight halo frames,
    // and the ranks must recover and resume computing *within* the drain
    // window for the COW race to be exercised (with the default 200 ms
    // min-RTO they would idle until long after the drain).
    let tcp = simnet::tcp::TcpConfig {
        initial_rto: SimDuration::from_millis(2),
        min_rto: SimDuration::from_millis(1),
        ..simnet::tcp::TcpConfig::default()
    };
    let mut w = World::new(
        5,
        ClusterParams {
            tcp,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&slm.job_spec("slm", 4)).unwrap();
    w.run_for(SimDuration::from_millis(20));

    // Full epoch, then two incremental epochs.
    let full = w
        .start_checkpoint_with("slm", CkptOptions::default())
        .unwrap();
    assert!(w.run_until_op(full, 20_000_000));
    let mut incs = Vec::new();
    for _ in 0..2 {
        w.run_for(SimDuration::from_millis(5));
        let inc = w
            .start_checkpoint_with(
                "slm",
                CkptOptions {
                    incremental: true,
                    ..CkptOptions::default()
                },
            )
            .unwrap();
        assert!(w.run_until_op(inc, 20_000_000));
        incs.push(inc);
    }
    // The incremental images are dramatically smaller than the full one.
    let store = w.store("slm");
    let full_len = store.image_len("rank0", full).unwrap();
    let inc_len = store.image_len("rank0", incs[1]).unwrap();
    assert!(
        inc_len * 5 < full_len,
        "incremental {inc_len} B vs full {full_len} B"
    );

    // Crash and restart from the LAST incremental epoch: the runtime folds
    // the chain (full ← inc1 ← inc2) transparently.
    w.crash_node(0);
    w.crash_node(1);
    let rs = w
        .start_restart(
            "slm",
            incs[1],
            &[("rank0".into(), 2), ("rank1".into(), 3)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(rs, 20_000_000));
    // The ring resumes and keeps making progress (halo checks would fail
    // loudly on any corruption).
    let progress = |w: &World| {
        w.peek_guest("slm", "rank0", 1, workloads::slm::ITER_COUNTER_ADDR, 8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .unwrap_or(0)
    };
    let before = progress(&w);
    w.run_for(SimDuration::from_millis(60));
    assert!(progress(&w) > before, "ring advances after chained restore");
}

#[test]
fn allreduce_collective_survives_checkpoint_and_restart() {
    use workloads::allreduce::AllReduceConfig;
    let cfg = AllReduceConfig {
        ranks: 3,
        rounds: 200,
        port: 7400,
    };
    // 3 ranks on nodes 0-2, spares 3-5, coordinator 6.
    let mut w = World::new(7, ClusterParams::default());
    w.launch_job(&cfg.job_spec("ar", 6)).unwrap();
    w.run_for(SimDuration::from_millis(4));
    let ck = w
        .start_checkpoint("ar", ProtocolMode::Optimized, None)
        .unwrap();
    assert!(w.run_until_op(ck, 20_000_000));
    w.run_for(SimDuration::from_millis(3));
    for n in 0..3 {
        w.crash_node(n);
    }
    let placement: Vec<(String, usize)> = (0..3).map(|r| (format!("rank{r}"), 3 + r)).collect();
    let rs = w
        .start_restart("ar", ck, &placement, ProtocolMode::Blocking)
        .unwrap();
    assert!(w.run_until_op(rs, 20_000_000));
    assert!(w.run_until_pred(100_000_000, |w| w.job_finished("ar")));
    for r in 0..3 {
        assert_eq!(
            w.pod_exit_code("ar", &format!("rank{r}"), 1),
            Some(cfg.expected_total()),
            "collective result exact across crash+restart"
        );
    }
}

#[test]
fn rollback_in_place_replaces_live_pods() {
    // No crash at all: roll a RUNNING job back to an earlier epoch on the
    // same nodes. The restart tears the live pods down first.
    let mut w = World::new(3, ClusterParams::default());
    let (spec, _) = pingpong_job(600, 0, 1, 2);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(6));
    let ck = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(ck, 10_000_000));
    // Keep running well past the checkpoint...
    w.run_for(SimDuration::from_millis(10));
    // ...then rewind the whole job to it, in place.
    let rs = w
        .start_restart("pp", ck, &[], ProtocolMode::Blocking)
        .unwrap();
    assert!(
        w.run_until_op(rs, 10_000_000),
        "in-place rollback completes"
    );
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn cow_capture_shrinks_freeze_to_arm_window() {
    // The tentpole claim: with CkptCaptureMode::Cow the per-epoch pod freeze
    // is O(arm + non-memory state) instead of O(image bytes), while the
    // stored epoch stays fully restorable.
    use cluster::world::CkptOptions;
    use cluster::CkptCaptureMode;
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 16 * 1024 * 1024,
        iters: 100_000,
        compute_ns: 500_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    // A snappy retransmission timer: the freeze drops in-flight halo frames,
    // and the ranks must recover and resume computing *within* the drain
    // window for the COW race to be exercised (with the default 200 ms
    // min-RTO they would idle until long after the drain).
    let tcp = simnet::tcp::TcpConfig {
        initial_rto: SimDuration::from_millis(2),
        min_rto: SimDuration::from_millis(1),
        ..simnet::tcp::TcpConfig::default()
    };
    let mut w = World::new(
        5,
        ClusterParams {
            tcp,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&slm.job_spec("slm", 4)).unwrap();
    w.run_for(SimDuration::from_millis(20));

    let stw = w
        .start_checkpoint_with(
            "slm",
            CkptOptions {
                mode: ProtocolMode::Optimized,
                ..CkptOptions::default()
            },
        )
        .unwrap();
    assert!(w.run_until_op(stw, 20_000_000));
    let stw_rep = w.op_report(stw).unwrap();
    assert!(stw_rep.complete && !stw_rep.aborted);

    w.run_for(SimDuration::from_millis(20));
    let cow = w
        .start_checkpoint_with(
            "slm",
            CkptOptions {
                mode: ProtocolMode::Optimized,
                capture: Some(CkptCaptureMode::Cow),
                ..CkptOptions::default()
            },
        )
        .unwrap();
    assert!(w.run_until_op(cow, 20_000_000));
    let cow_rep = w.op_report(cow).unwrap();
    assert!(cow_rep.complete && !cow_rep.aborted);
    assert!(w.store("slm").is_committed(cow));

    let max_freeze = |rep: &cluster::world::OpReport| {
        rep.blocked_durations()
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap()
    };
    let stw_freeze = max_freeze(&stw_rep);
    let cow_freeze = max_freeze(&cow_rep);
    assert!(
        cow_freeze.as_micros_f64() * 5.0 < stw_freeze.as_micros_f64(),
        "cow freeze {cow_freeze} not ≥5× shorter than stop-the-world {stw_freeze}"
    );
    // The resumed guests raced the background drain, so COW really paid its
    // bounded extra copies — the snapshot was defended, not untouched.
    let copied: u64 = cow_rep.cow_copied_bytes.iter().map(|&(_, b)| b).sum();
    assert!(
        copied > 0,
        "no pre-image copies: the drain never raced writes"
    );

    // The COW epoch restores through the full protocol.
    w.crash_node(0);
    w.crash_node(1);
    let rs = w
        .start_restart(
            "slm",
            cow,
            &[("rank0".into(), 2), ("rank1".into(), 3)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(rs, 20_000_000));
    let progress = |w: &World| {
        w.peek_guest("slm", "rank0", 1, workloads::slm::ITER_COUNTER_ADDR, 8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .unwrap_or(0)
    };
    let before = progress(&w);
    w.run_for(SimDuration::from_millis(60));
    assert!(
        progress(&w) > before,
        "ring advances after COW-epoch restore"
    );
}

#[test]
fn cow_abort_cancels_armed_snapshots() {
    // Abort while the drain is still pending: the rollback must disarm the
    // snapshots and discard the epoch, and the late CkptDrain event must be
    // a no-op — exactly the stop-the-world abort semantics.
    use cluster::world::CkptOptions;
    use cluster::CkptCaptureMode;
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 8 * 1024 * 1024,
        iters: 100_000,
        compute_ns: 1_000_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&slm.job_spec("slm", 2)).unwrap();
    w.run_for(SimDuration::from_millis(20));
    w.crash_node(1);
    // 8 MiB of pages drain in ~4 ms at extract bandwidth; the 2 ms timeout
    // aborts first, so the survivor's rollback finds an undrained arm.
    let op = w
        .start_checkpoint_with(
            "slm",
            CkptOptions {
                capture: Some(CkptCaptureMode::Cow),
                timeout: Some(SimDuration::from_millis(2)),
                ..CkptOptions::default()
            },
        )
        .unwrap();
    assert!(w.run_until_op(op, 20_000_000));
    let rep = w.op_report(op).unwrap();
    assert!(rep.aborted, "dead agent must abort the 2PC");
    assert!(!w.store("slm").is_committed(op), "no commit record");
    // Let the now-orphaned CkptDrain event fire against the cancelled arm.
    w.run_for(SimDuration::from_millis(20));
    assert!(
        w.store("slm").get_image("rank0", op).is_none(),
        "aborted epoch must leave no orphan images"
    );
}
