//! The recovery ablation (EXPERIMENTS.md E16): detection latency and MTTR
//! of the self-healing manager as a function of the heartbeat interval,
//! plus the seeded chaos replay the CI smoke stage pins.
//!
//! The scenario is the acceptance case of the robustness PR: a pingpong
//! job takes one clean committed checkpoint, then a seeded [`FaultPlan`]
//! kills the client's node the moment its second local save completes —
//! inside the window the two-phase commit exists to cover. The heartbeat
//! plane must notice, roll the job back to the committed epoch, and
//! restart it on a spare; the sweep reports how detection and repair time
//! scale with the heartbeat interval.

use cluster::{
    ClusterParams, CrashFault, FaultPlan, JobSpec, PodSpec, ProtocolPoint, RecoveryOutcome,
    RecoveryReport, StoreConfig, World,
};
use cruz::digest;
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simnet::addr::{IpAddr, MacAddr};
use workloads::pingpong::PingPongConfig;
use zap::image::MacMode;

/// One heartbeat-interval operating point of the sweep.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Heartbeat interval driven through `RecoveryParams`.
    pub heartbeat_interval: SimDuration,
    /// Heartbeat timeout used (half the interval).
    pub heartbeat_timeout: SimDuration,
    /// Crash-to-detection latency of the recovery pass.
    pub detection: SimDuration,
    /// Crash-to-repair time (restart completed, pods running again).
    pub mttr: SimDuration,
    /// Committed epoch the job was rolled back to.
    pub rollback_epoch: u64,
    /// FNV digest over the rollback epoch's stored pod images, in pod
    /// order — identical across operating points when rollback is exact.
    pub image_digest: u64,
}

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

fn chaos_params(seed: u64) -> ClusterParams {
    let mut p = ClusterParams {
        seed,
        store: StoreConfig::dedup(),
        ..ClusterParams::default()
    };
    p.recovery.enabled = true;
    p
}

/// Digest over every pod image of one committed epoch, in pod order.
fn epoch_digest(w: &World, job: &str, epoch: u64) -> u64 {
    let store = w.store(job);
    let mut h = digest::OFFSET;
    for pod in store.pods_in_epoch(epoch) {
        h = digest::fold(h, pod.as_bytes());
        if let Some(img) = store.get_image(&pod, epoch) {
            h = digest::fold(h, &img);
        }
    }
    h
}

/// Runs the crash-mid-checkpoint scenario at one heartbeat interval and
/// returns the measured recovery pass. Panics (the bench's check) if the
/// job is not healed or committed state is disturbed.
pub fn run_recovery_point(heartbeat_interval: SimDuration, seed: u64) -> RecoveryRow {
    let mut params = chaos_params(seed);
    params.recovery.heartbeat_interval = heartbeat_interval;
    params.recovery.heartbeat_timeout = SimDuration::from_nanos(heartbeat_interval.as_nanos() / 2);
    let heartbeat_timeout = params.recovery.heartbeat_timeout;

    let mut w = World::new(6, params);
    w.launch_job(&pingpong_spec(4000)).expect("launch");
    w.run_for(SimDuration::from_millis(2));

    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("baseline checkpoint");
    assert!(w.run_until_op(op1, 50_000_000), "baseline ckpt stalls");
    assert!(w.store("pp").is_committed(op1));
    let digest_before = epoch_digest(&w, "pp", op1);

    let mut plan = FaultPlan::none(seed);
    plan.crashes.push(CrashFault {
        node: 1,
        point: ProtocolPoint::LocalDoneToDurable,
        nth: 0,
    });
    w.install_fault_plan(&plan);
    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("faulted checkpoint");
    let healed = w.run_until_pred(200_000_000, |w| {
        w.recovery_reports()
            .iter()
            .any(|r| r.outcome == RecoveryOutcome::Recovered)
    });
    assert!(healed, "job not healed at interval {heartbeat_interval:?}");

    let r: RecoveryReport = w
        .recovery_reports()
        .iter()
        .find(|r| r.outcome == RecoveryOutcome::Recovered)
        .expect("recovered report")
        .clone();
    assert_eq!(r.rollback_epoch, Some(op1), "rolled back past the commit");
    assert!(r.aborted_ops.contains(&op2));
    assert!(
        !w.store("pp").is_committed(op2),
        "torn epoch became visible"
    );
    let digest_after = epoch_digest(&w, "pp", op1);
    assert_eq!(digest_before, digest_after, "committed images disturbed");
    assert!(w.store("pp").orphan_chunks().is_empty(), "orphans leaked");

    RecoveryRow {
        heartbeat_interval,
        heartbeat_timeout,
        detection: r.detection_latency(),
        mttr: r.mttr().expect("recovered pass has an MTTR"),
        rollback_epoch: op1,
        image_digest: digest_after,
    }
}

/// Sweeps the heartbeat interval over `intervals` (same seed each point so
/// only the detector changes) and returns one row per operating point.
pub fn run_recovery_sweep(intervals: &[SimDuration], seed: u64) -> Vec<RecoveryRow> {
    intervals
        .iter()
        .map(|&hb| run_recovery_point(hb, seed))
        .collect()
}

/// Replays one pinned chaos scenario twice and returns the two trace
/// fingerprints `(digest, events)` — identical when the fault plane is
/// deterministic. Also asserts the world quiesces and leaks no orphans.
pub fn replay_fingerprints(world_seed: u64, plan_seed: u64) -> ((u64, u64), (u64, u64)) {
    let run = || {
        let mut w = World::new(6, chaos_params(world_seed));
        w.launch_job(&pingpong_spec(500)).expect("launch");
        w.run_for(SimDuration::from_millis(2));
        let op = w
            .start_checkpoint("pp", ProtocolMode::Blocking, None)
            .expect("baseline checkpoint");
        assert!(w.run_until_op(op, 50_000_000));
        let plan =
            FaultPlan::decode(&FaultPlan::random(plan_seed, 2).encode()).expect("plan round-trip");
        w.install_fault_plan(&plan);
        w.schedule_periodic_checkpoints(
            "pp",
            SimDuration::from_millis(4),
            ProtocolMode::Blocking,
            false,
        )
        .expect("periodic checkpoints");
        w.run_for(SimDuration::from_millis(120));
        assert!(
            w.run_until_pred(50_000_000, |w| !w.job_busy("pp")),
            "world failed to quiesce under plan seed {plan_seed}"
        );
        assert!(w.store("pp").orphan_chunks().is_empty(), "orphans leaked");
        (w.trace_digest(), w.events_processed())
    };
    (run(), run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_heartbeats_detect_faster() {
        let rows = run_recovery_sweep(
            &[SimDuration::from_millis(5), SimDuration::from_millis(40)],
            7,
        );
        assert!(rows[0].detection < rows[1].detection);
        assert!(rows[0].mttr < rows[1].mttr);
        assert_eq!(rows[0].image_digest, rows[1].image_digest);
    }

    #[test]
    fn pinned_replay_is_deterministic() {
        let (a, b) = replay_fingerprints(1, 7);
        assert_eq!(a, b);
    }
}
