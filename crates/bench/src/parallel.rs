//! Shared fixture and kernels for the parallel capture/restore scaling
//! benchmark (`bench_parallel`).
//!
//! The subject is `cruz::parpool`: the capture prepare (`split_ranges` →
//! chunk-id fold → compress) and the restore reassembly (manifest-ordered
//! chunk decompress) shard across a worker pool with an ordered merge.
//! The contract the bench enforces on every run — before any throughput
//! number is reported — is **byte-identity**: the manifests, the persisted
//! store files, and the reconstructed images must be equal at every thread
//! count, with `threads == 1` (the verbatim pre-pool serial loop) as the
//! reference oracle.

use cruz::store::{CheckpointStore, PreparedChunked, PreparedPut, StoreConfig};
use des::digest;
use simos::fs::NetFs;

/// Page size the synthetic images use (matches the guest page size).
pub const PAGE: usize = 4096;

/// The thread counts the scaling sweep measures.
pub const SWEEP_THREADS: &[usize] = &[1, 2, 4, 8];

/// Deterministic xorshift64* stream for reproducible page contents.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A capture-sized image plus its page cuts and base store config. Unlike
/// the hot-path fixture (which is zero-page heavy to showcase the zero
/// shortcut), this mix is dominated by pages that genuinely need hashing
/// and compression — the work the pool exists to shard.
pub struct ParallelFixture {
    /// The serialized image.
    pub raw: Vec<u8>,
    /// One cut per page, `(offset, len)`.
    pub cuts: Vec<(usize, usize)>,
    /// Chunking/codec settings; `threads` is overridden per run.
    pub cfg: StoreConfig,
}

/// Builds the fixture: `pages` pages — 1/8 zero, the rest an even spread
/// of text-like, sparse-counter, and incompressible payloads — between a
/// small metadata header and trailer.
pub fn fixture(pages: usize) -> ParallelFixture {
    let mut raw = vec![0xA5u8; 64];
    let mut cuts = Vec::with_capacity(pages);
    for i in 0..pages {
        cuts.push((raw.len(), PAGE));
        let mut page = vec![0u8; PAGE];
        let mut s = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        match i % 8 {
            6 => {} // zero page
            0 | 3 => {
                const TEXT: &[u8] = b"coordinated checkpoint of live tcp state ";
                for (j, b) in page.iter_mut().enumerate() {
                    *b = TEXT[(j + i) % TEXT.len()];
                }
            }
            1 | 4 => {
                for j in (0..PAGE).step_by(32) {
                    page[j] = (xorshift(&mut s) & 0xff) as u8;
                }
            }
            _ => {
                for b in page.iter_mut() {
                    *b = (xorshift(&mut s) & 0xff) as u8;
                }
            }
        }
        raw.extend_from_slice(&page);
    }
    raw.extend_from_slice(&[0x5A; 32]);
    ParallelFixture {
        raw,
        cuts,
        cfg: StoreConfig {
            chunk_bytes: 1024,
            dedup: true,
            compress: true,
            threads: 1,
            replicas: 1,
        },
    }
}

/// One capture prepare at the given thread count, against a fresh (empty)
/// store so novelty accounting is identical every call.
pub fn capture_prepared(f: &ParallelFixture, threads: usize) -> PreparedChunked {
    let store = CheckpointStore::new(NetFs::new(), "par");
    let cfg = StoreConfig { threads, ..f.cfg };
    store.prepare_chunked(&f.raw, &f.cuts, &cfg)
}

/// Prepares and persists the fixture into a fresh store at the given
/// thread count, then folds **every persisted file** (path and content,
/// in path order) into one digest — the strongest byte-identity witness:
/// chunk containers, manifest, and layout all pinned.
pub fn capture_store_checksum(f: &ParallelFixture, threads: usize) -> u64 {
    let fs = NetFs::new();
    let store = CheckpointStore::new(fs.clone(), "par");
    let cfg = StoreConfig { threads, ..f.cfg };
    let put = store.prepare_chunked(&f.raw, &f.cuts, &cfg);
    store.put_prepared("p", 1, PreparedPut::Chunked(put));
    let mut h = digest::OFFSET;
    for path in fs.list("/ckpt/") {
        let bytes = fs.read_file(&path).expect("listed file exists");
        h = digest::fold(h, path.as_bytes());
        h = digest::fold(h, &bytes);
    }
    h
}

/// Persists the fixture once through the serial reference path and returns
/// the backing filesystem; [`restore_bytes`] reads it back at any width.
pub fn restore_setup(f: &ParallelFixture) -> NetFs {
    let fs = NetFs::new();
    let store = CheckpointStore::new(fs.clone(), "par").with_threads(1);
    let put = store.prepare_chunked(&f.raw, &f.cuts, &f.cfg);
    store.put_prepared("p", 1, PreparedPut::Chunked(put));
    fs
}

/// Reconstructs the persisted image with a pool of the given width.
pub fn restore_bytes(fs: &NetFs, threads: usize) -> Option<Vec<u8>> {
    CheckpointStore::new(fs.clone(), "par")
        .with_threads(threads)
        .get_image("p", 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_restore_are_byte_identical_across_widths() {
        let f = fixture(48);
        let serial = capture_prepared(&f, 1);
        let store_serial = capture_store_checksum(&f, 1);
        let fs = restore_setup(&f);
        let image_serial = restore_bytes(&fs, 1).expect("serial restore");
        assert_eq!(image_serial, f.raw, "restore round-trips the image");
        for &t in SWEEP_THREADS {
            let p = capture_prepared(&f, t);
            assert_eq!(p.manifest(), serial.manifest(), "manifest at threads={t}");
            assert_eq!(p.novel_count(), serial.novel_count());
            assert_eq!(
                capture_store_checksum(&f, t),
                store_serial,
                "persisted store bytes at threads={t}"
            );
            assert_eq!(
                restore_bytes(&fs, t).expect("pooled restore"),
                image_serial,
                "restored image at threads={t}"
            );
        }
    }
}
