//! Hot-path micro-benchmark: times each optimized kernel against the
//! reference implementation it replaced and proves the outputs agree.
//!
//! Four pairs (see `bench::hotpath`): the scratch-reusing chunk codec, the
//! single-pass interleaved 128-bit chunk address (`fold2` vs two full
//! folds), the packed-key event queue, and the page-digest cached capture
//! prepare on a steady-state epoch (<30% dirty). The run fails unless at
//! least two of the four show a ≥2× median speedup and the cached capture
//! actually served clean pages from the cache.
//!
//! Also re-checks the pinned image digests in `BENCH_cow_downtime.json`
//! and `BENCH_recovery.json` — the optimizations must be invisible in
//! every produced byte — and emits `BENCH_hotpath.json` so the perf
//! trajectory is tracked across PRs.
//!
//! `--quick` runs smaller inputs and fewer samples as a CI smoke test; the
//! asserts are the check either way.

use std::time::Instant;

use bench::hotpath::{
    capture_fixture, capture_hinted, capture_reference, chunk_id_optimized, chunk_id_reference,
    codec_inputs, codec_optimized, codec_reference, queue_optimized_churn, queue_reference_churn,
    queue_schedule, zero_fraction,
};
use bench::util::check_pinned_digests;
use cruz::chunk::CodecScratch;

fn median_ns(samples: &mut Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `reference` and `optimized` in alternation (so clock drift and
/// cache warmth hit both sides equally) and returns the median ns pair
/// plus each side's warmup checksum. Both closures share one mutable
/// context so stateful kernels (scratch buffers, warm caches) work.
fn time_pair<C>(
    iters: usize,
    ctx: &mut C,
    mut reference: impl FnMut(&mut C) -> u64,
    mut optimized: impl FnMut(&mut C) -> u64,
) -> (u64, u64, u64, u64) {
    // One warmup round each; the checksums also feed the equality check.
    let ref_check = reference(ctx);
    let opt_check = optimized(ctx);
    let mut ref_ns = Vec::with_capacity(iters);
    let mut opt_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(reference(ctx));
        ref_ns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        std::hint::black_box(optimized(ctx));
        opt_ns.push(t.elapsed().as_nanos() as u64);
    }
    (
        median_ns(&mut ref_ns),
        median_ns(&mut opt_ns),
        ref_check,
        opt_check,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, codec_pages, digest_bytes, queue_events, cap_pages) = if quick {
        (15usize, 32usize, 256 * 1024usize, 16 * 1024usize, 96usize)
    } else {
        (41, 128, 4 * 1024 * 1024, 128 * 1024, 384)
    };
    // Steady state per the COW measurements: well under 30% of pages
    // touched between epochs.
    let dirty_pct = 20;
    let inputs = codec_inputs(codec_pages);
    println!(
        "# hot-path pairs: encode {codec_pages} pages ({}% zero), digest {} KiB, queue {queue_events} events, capture {cap_pages} pages at {dirty_pct}% dirty",
        zero_fraction(&inputs),
        digest_bytes / 1024
    );
    let mut scratch = CodecScratch::new();
    let (codec_ref, codec_opt, c1, c2) = time_pair(
        iters,
        &mut scratch,
        |_| codec_reference(&inputs),
        |s| codec_optimized(&inputs, s),
    );
    assert_eq!(c1, c2, "optimized page encode diverged from reference");

    let mut data = vec![0u8; digest_bytes];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let (dig_ref, dig_opt, d1, d2) = time_pair(
        iters,
        &mut (),
        |_| chunk_id_reference(&data),
        |_| chunk_id_optimized(&data),
    );
    assert_eq!(d1, d2, "interleaved fold2 address diverged from two folds");

    let schedule = queue_schedule(queue_events);
    let (q_ref, q_opt, q1, q2) = time_pair(
        iters,
        &mut (),
        |_| queue_reference_churn(&schedule),
        |_| queue_optimized_churn(&schedule),
    );
    assert_eq!(q1, q2, "packed-key queue reordered events");

    let mut fixture = capture_fixture(cap_pages, dirty_pct);
    let (cap_ref, cap_opt, m1, m2) = time_pair(
        iters,
        &mut fixture,
        |f| des::digest::fold(des::digest::OFFSET, capture_reference(f).manifest()),
        |f| des::digest::fold(des::digest::OFFSET, capture_hinted(f).manifest()),
    );
    assert_eq!(m1, m2, "cached prepare produced a different manifest");
    assert!(
        fixture.cache.hits() > 0,
        "steady-state epoch never hit the page-digest cache"
    );

    let rows = [
        ("page_encode", codec_ref, codec_opt),
        ("chunk_id", dig_ref, dig_opt),
        ("queue_churn", q_ref, q_opt),
        ("capture_cached", cap_ref, cap_opt),
    ];
    println!(
        "{:>16} {:>14} {:>14} {:>9}",
        "path", "ref_median_us", "opt_median_us", "speedup"
    );
    let mut at_2x = 0usize;
    for &(name, r, o) in &rows {
        let speedup = r as f64 / (o as f64).max(1.0);
        if speedup >= 2.0 {
            at_2x += 1;
        }
        println!(
            "{:>16} {:>14.1} {:>14.1} {:>8.2}x",
            name,
            r as f64 / 1000.0,
            o as f64 / 1000.0,
            speedup
        );
    }
    println!(
        "# capture cache: {} hits / {} misses",
        fixture.cache.hits(),
        fixture.cache.misses()
    );
    assert!(
        at_2x >= 2,
        "only {at_2x} of {} hot paths reached a 2x median speedup",
        rows.len()
    );
    println!(
        "# {at_2x}/{} hot paths at >=2x; all ref/opt outputs identical",
        rows.len()
    );

    check_pinned_digests();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|&(name, r, o)| {
            format!(
                "    {{\"path\": \"{}\", \"ref_median_ns\": {}, \"opt_median_ns\": {}, \"speedup\": {:.2}}}",
                name,
                r,
                o,
                r as f64 / (o as f64).max(1.0)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n  \"dirty_pct\": {dirty_pct},\n  \"paths_at_2x\": {at_2x},\n  \"capture_cache_hits\": {},\n  \"capture_cache_misses\": {},\n  \"pairs\": [\n{}\n  ]\n}}\n",
        fixture.cache.hits(),
        fixture.cache.misses(),
        json_rows.join(",\n"),
    );
    std::fs::write("BENCH_hotpath.json", json).expect("write BENCH_hotpath.json");
    println!("# wrote BENCH_hotpath.json");
}
