//! The copy-on-write downtime ablation: per-epoch pod freeze (p50/p99),
//! end-to-end epoch latency and extra pre-image copy traffic of the slm
//! ring under stop-the-world, §5.2 background-writeback, and full COW
//! capture — the Fig. 5(a) workload attacked from the downtime axis.
//!
//! Also emits a machine-readable `BENCH_cow_downtime.json` next to the
//! working directory so the perf trajectory is tracked across PRs.
//!
//! `--quick` runs fewer epochs as a CI smoke test; the asserts (≥5× p50
//! freeze reduction, byte-identical images, nonzero COW copy traffic) are
//! the check either way.

use bench::cow::{run_cow_sweep, CowRow};

fn json_row(r: &CowRow) -> String {
    format!(
        concat!(
            "    {{\"label\": \"{}\", \"p50_freeze_us\": {:.1}, ",
            "\"p99_freeze_us\": {:.1}, \"mean_epoch_latency_us\": {:.1}, ",
            "\"extra_copy_bytes\": {}, \"image_digest\": \"{:#018x}\"}}"
        ),
        r.label,
        r.p50_freeze().as_micros_f64(),
        r.p99_freeze().as_micros_f64(),
        r.mean_epoch_latency().as_micros_f64(),
        r.extra_copy_bytes,
        r.image_digest,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ranks, state_bytes, checkpoints) = if quick {
        (2usize, 8 * 1024 * 1024u64, 2usize)
    } else {
        (2usize, 8 * 1024 * 1024u64, 5usize)
    };
    println!(
        "# COW capture ablation: slm ring, {ranks} ranks x {} MiB state, {checkpoints} epochs ~100 ms apart",
        state_bytes / (1024 * 1024)
    );
    println!(
        "{:>15} {:>13} {:>13} {:>14} {:>15}",
        "capture", "p50_frz_ms", "p99_frz_ms", "epoch_lat_s", "extra_copy_KiB"
    );
    let rows = run_cow_sweep(ranks, state_bytes, checkpoints);
    for r in &rows {
        println!(
            "{:>15} {:>13.3} {:>13.3} {:>14.3} {:>15.1}",
            r.label,
            r.p50_freeze().as_micros_f64() / 1000.0,
            r.p99_freeze().as_micros_f64() / 1000.0,
            r.mean_epoch_latency().as_secs_f64(),
            r.extra_copy_bytes as f64 / 1024.0,
        );
    }

    let stw = &rows[0];
    let wb = &rows[1];
    let cow = &rows[2];
    let speedup = stw.p50_freeze().as_micros_f64() / cow.p50_freeze().as_micros_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "cow p50 freeze {:?} not ≥5× below stop-the-world {:?}",
        cow.p50_freeze(),
        stw.p50_freeze()
    );
    assert!(wb.p50_freeze() < stw.p50_freeze());
    assert!(cow.p50_freeze() <= wb.p50_freeze());
    assert_eq!(
        stw.image_digest, wb.image_digest,
        "writeback images diverge"
    );
    assert_eq!(stw.image_digest, cow.image_digest, "cow images diverge");
    assert_eq!(stw.extra_copy_bytes, 0);
    assert!(
        cow.extra_copy_bytes > 0,
        "cow drain never raced guest writes"
    );
    println!("# cow p50 freeze reduction vs stop-the-world: {speedup:.1}x");
    println!("# restored images byte-identical across all capture modes");

    let json = format!(
        "{{\n  \"bench\": \"cow_downtime\",\n  \"ranks\": {ranks},\n  \"state_bytes\": {state_bytes},\n  \"checkpoints\": {checkpoints},\n  \"p50_freeze_speedup_cow_vs_stw\": {speedup:.2},\n  \"variants\": [\n{}\n  ]\n}}\n",
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_cow_downtime.json", json).expect("write BENCH_cow_downtime.json");
    println!("# wrote BENCH_cow_downtime.json");
}
