//! Regenerates the §5.2 comparison: Cruz's O(N) coordination vs the
//! flush-based O(N²) baseline (MPVM/CoCheck/LAM-MPI style) under identical
//! link/CPU parameters and measured local-save times.

use baseline::{LoggingCosts, MessageProfile};
use bench::compare::run_compare;

fn main() {
    println!("# Cruz vs flush-based coordination (64 KiB in-flight per channel)");
    println!(
        "{:>6} {:>10} {:>14} {:>11} {:>15}",
        "nodes", "cruz_msgs", "cruz_ovh_us", "flush_msgs", "flush_ovh_us"
    );
    for n in [2usize, 4, 8, 12, 16] {
        let p = run_compare(n, 64 * 1024);
        println!(
            "{n:>6} {:>10} {:>14.1} {:>11} {:>15.1}",
            p.cruz_msgs,
            p.cruz_overhead.as_micros_f64(),
            p.flush_msgs,
            p.flush_overhead.as_micros_f64(),
        );
    }

    // The other §2 alternative: message logging taxes *normal* execution.
    println!();
    println!("# Message-logging baseline: steady-state slowdown vs message rate");
    println!("# (Cruz's fast-path overhead is zero by construction)");
    println!("{:>14} {:>12} {:>12}", "msgs/s", "log_MB/s", "slowdown");
    let costs = LoggingCosts::default();
    for rate in [100.0f64, 1_000.0, 10_000.0, 40_000.0, 80_000.0] {
        let r = MessageProfile {
            msgs_per_sec: rate,
            mean_msg_bytes: 1460,
        }
        .evaluate(&costs);
        let slowdown = if r.utilization >= 1.0 {
            "log saturated".to_string()
        } else {
            format!("{:.2}x", r.slowdown)
        };
        println!(
            "{rate:>14.0} {:>12.2} {:>12}",
            r.log_bytes_per_sec / 1e6,
            slowdown
        );
    }
}
