//! Regenerates the Fig. 4 ablation: per-node blocked time under the
//! blocking (Fig. 2) vs optimized (Fig. 4) protocols with heterogeneous
//! per-node save times.

use bench::ablation::run_ablation_opts;
use cruz::proto::ProtocolMode;

fn main() {
    println!("# Fig 4 + §5.2 ablation: per-node blocked time (ms), 4 nodes,");
    println!("# rank r saves 1 MiB + r * 4 MiB");
    for (mode, cow) in [
        (ProtocolMode::Blocking, false),
        (ProtocolMode::Optimized, false),
        (ProtocolMode::Blocking, true),
        (ProtocolMode::Optimized, true),
    ] {
        let p = run_ablation_opts(mode, 4, cow);
        let label = format!("{mode:?}{}", if cow { "+COW" } else { "" });
        print!("{label:<15}");
        for (n, d) in &p.blocked {
            print!("  node{n}={:>8.1}", d.as_millis_f64());
        }
        println!("  ckpt_latency={:.1} ms", p.latency.as_millis_f64());
    }
}
