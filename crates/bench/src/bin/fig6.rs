//! Regenerates Fig. 6: TCP streaming rate across a coordinated checkpoint.

use bench::fig6::run_fig6;

fn main() {
    let run = run_fig6(10 * 1024 * 1024, 50, 500, 2, 10);
    println!("# Fig 6: TCP streaming rate across a checkpoint");
    println!(
        "# checkpoint (local save) window: {:.1} ms",
        run.checkpoint_ms
    );
    match run.recovery_ms {
        Some(r) => println!("# stream back at >=50% rate: t = {r:.1} ms"),
        None => println!("# stream did not recover in the sampled window"),
    }
    println!("{:>10} {:>12}", "t_ms", "rate_Mbps");
    for s in &run.samples {
        println!("{:>10.1} {:>12.1}", s.t_ms, s.rate_mbps);
    }
}
