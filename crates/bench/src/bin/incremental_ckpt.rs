//! Incremental-checkpoint ablation (the paper's named future-work
//! optimization): image size of full vs. incremental checkpoints of an
//! slm-like pod that dirties a small working set per timestep.

use des::{SimDuration, SimTime};
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use simnet::NetStack;
use simos::disk::{Disk, DiskParams};
use simos::fs::NetFs;
use simos::guest::AsmOs;
use simos::kernel::{Kernel, KernelParams};
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;
use zap::image::MacMode;
use zap::{PodConfig, Zap};

/// A pod program that dirties 16 pages of a big array per step.
fn stepper(state_bytes: u64, steps: u64) -> Program {
    use simcpu::isa::{R11, R12, R13, R5, R9};
    let state = 0x0200_0000i64;
    let pages = (state_bytes / 4096).max(16);
    let windows = (pages / 16) as i64;
    let mut a = simcpu::asm::Asm::new(CODE_BASE);
    a.movi(R9, 0);
    let top = a.label();
    a.bind(top);
    a.mov(R11, R9);
    a.remi(R11, R11, windows);
    a.muli(R11, R11, 16 * 4096);
    a.addi(R11, R11, state);
    a.movi(R12, 0);
    let touch = a.label();
    a.bind(touch);
    a.mov(R13, R12);
    a.shli(R13, R13, 12);
    a.add(R13, R13, R11);
    a.st(R13, R9, 0);
    a.addi(R12, R12, 1);
    a.movi(R5, 16);
    a.cltu(simcpu::isa::R14, R12, R5);
    a.jnz(simcpu::isa::R14, touch);
    a.sys1(nr::SLEEP, 2_000_000);
    a.addi(R9, R9, 1);
    a.movi(R5, steps as i64);
    a.cltu(simcpu::isa::R14, R9, R5);
    a.jnz(simcpu::isa::R14, top);
    a.sys1(nr::EXIT, 0);
    let data: Vec<u8> = (0..state_bytes).map(|i| (i % 251) as u8 | 1).collect();
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 4096])
        .with_data(0x0200_0000, data)
}

fn main() {
    let net = NetStack::new(
        MacAddr::from_index(1),
        IpAddr::from_octets([10, 0, 0, 1]),
        24,
        TcpConfig::default(),
    );
    let mut k = Kernel::new(
        net,
        NetFs::new(),
        Disk::new(DiskParams::default()),
        KernelParams::default(),
    );
    let z = Zap::new();
    z.install(&mut k);
    let pod = z
        .create_pod(
            &mut k,
            PodConfig {
                name: "inc".into(),
                ip: IpAddr::from_octets([10, 0, 0, 50]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(50)),
            },
        )
        .unwrap();
    let state_mib = 16u64;
    z.spawn_in_pod(&mut k, pod, &stepper(state_mib * 1024 * 1024, 1_000_000))
        .unwrap();

    // Run ~20 ms between checkpoints (≈10 timesteps, ≈160 dirtied pages).
    let mut now = SimTime::ZERO;
    let run_for = |k: &mut Kernel, now: &mut SimTime, d: SimDuration| {
        let end = *now + d;
        while *now < end {
            if k.has_runnable() {
                *now = *now + k.run_slice(*now).elapsed;
                let _ = k.take_frames();
            } else if let Some(t) = k.next_timer() {
                if t > end {
                    *now = end;
                    break;
                }
                *now = (*now).max(t);
                k.on_tick(*now);
            } else {
                break;
            }
        }
    };

    println!(
        "# Incremental checkpointing: {state_mib} MiB resident, ~160 pages dirtied per interval"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "epoch", "kind", "bytes", "vs_full%"
    );
    run_for(&mut k, &mut now, SimDuration::from_millis(20));
    let full = z.checkpoint_pod(&mut k, pod, now).unwrap();
    z.resume_pod(&mut k, pod, now).unwrap();
    let full_len = full.encoded_len();
    println!("{:>8} {:>14} {:>14} {:>10.2}", 1, "full", full_len, 100.0);
    let mut chain = full;
    for epoch in 2..=6u64 {
        run_for(&mut k, &mut now, SimDuration::from_millis(20));
        let delta = z
            .checkpoint_pod_incremental(&mut k, pod, now, epoch - 1)
            .unwrap();
        z.resume_pod(&mut k, pod, now).unwrap();
        let len = delta.encoded_len();
        println!(
            "{:>8} {:>14} {:>14} {:>10.2}",
            epoch,
            "incremental",
            len,
            len as f64 / full_len as f64 * 100.0
        );
        chain = chain.apply_delta(&delta).expect("chain folds");
    }
    println!(
        "# folded chain equals a fresh full checkpoint of the same instant: {}",
        chain.encoded_len() == z.checkpoint_pod(&mut k, pod, now).unwrap().encoded_len()
    );
}
