//! Regenerates Fig. 5(b): coordination overhead of the slm checkpoint vs.
//! node count.

use bench::fig5::run_fig5;
use bench::util::mean_std_micros;
use des::SimDuration;

fn main() {
    println!("# Fig 5(b): coordination overhead (slm)");
    println!("{:>6} {:>14} {:>10}", "nodes", "overhead_us", "std_us");
    for n in [2usize, 3, 4, 5, 6, 7, 8] {
        let p = run_fig5(n, 3, SimDuration::from_secs(2));
        let (mean, std) = mean_std_micros(&p.overheads());
        println!("{n:>6} {mean:>14.1} {std:>10.2}");
    }
}
