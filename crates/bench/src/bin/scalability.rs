//! The §6 closing claim: "the system should scale to a large number of
//! nodes before the overhead becomes comparable with the checkpoint time".
//! Sweeps far past the paper's 8-node testbed and reports the ratio.

use bench::fig5::run_scalability;

fn main() {
    println!("# Scalability: coordination overhead vs local save, 1 MiB/rank");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "nodes", "overhead_us", "local_save_ms", "ratio_%"
    );
    for n in [2usize, 4, 8, 16, 24, 32] {
        let rep = run_scalability(n);
        let overhead = rep.coordination_overhead().unwrap().as_micros_f64();
        let local = rep
            .local_ops
            .iter()
            .map(|(_, s, e)| e.duration_since(*s).as_millis_f64())
            .fold(0.0, f64::max);
        println!(
            "{n:>6} {overhead:>14.1} {local:>14.1} {:>12.2}",
            overhead / (local * 1000.0) * 100.0
        );
    }
}
