//! CI chaos smoke: replay pinned fault-plan seeds and demand byte-identical
//! event traces.
//!
//! Each pinned `(world_seed, plan_seed)` pair drives the full chaos
//! scenario twice — clean baseline checkpoint, a random [`FaultPlan`]
//! round-tripped through its wire encoding, periodic checkpoints under
//! crashes/disk faults/frame faults — and the two runs must produce the
//! same trace digest and event count. The underlying harness additionally
//! asserts the world quiesces and the chunk pool leaks no orphans.
//!
//! [`FaultPlan`]: cluster::FaultPlan

use bench::recovery::replay_fingerprints;

const PINNED: [(u64, u64); 3] = [(1, 7), (2, 19), (9, 104)];

fn main() {
    println!(
        "# chaos replay smoke: {} pinned fault-plan seeds",
        PINNED.len()
    );
    println!(
        "{:>11} {:>10} {:>20} {:>12}",
        "world_seed", "plan_seed", "trace_digest", "events"
    );
    for (world_seed, plan_seed) in PINNED {
        let (a, b) = replay_fingerprints(world_seed, plan_seed);
        assert_eq!(
            a, b,
            "replay of plan seed {plan_seed} (world {world_seed}) diverged"
        );
        println!(
            "{:>11} {:>10} {:>#20x} {:>12}",
            world_seed, plan_seed, a.0, a.1
        );
    }
    println!("# all pinned plans replay byte-for-byte");
}
