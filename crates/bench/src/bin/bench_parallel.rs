//! Parallel capture/restore scaling benchmark: throughput of the pooled
//! prepare (hash + compress) and pooled restore (decompress + reassemble)
//! at 1/2/4/8 worker threads, with byte-identity asserted at every width
//! before any number is reported.
//!
//! `threads == 1` is the verbatim pre-pool serial loop — the reference
//! oracle. For every other width the run asserts the manifest, the
//! persisted store files, and the reconstructed image equal the serial
//! run's byte for byte; a determinism bug fails the bench no matter how
//! fast it went.
//!
//! The scaling floor (≥2.5× capture encode at 4 threads) is asserted only
//! when the host actually has ≥4 CPUs — on a smaller host the sweep still
//! runs and the identity asserts still gate, but wall-clock speedup is
//! physically unmeasurable, so the floor is recorded in the JSON
//! (`host_cpus`) rather than enforced. Also re-checks the pinned image
//! digests: the pool must be invisible in every produced byte.
//!
//! `--quick` runs a smaller image and fewer samples as a CI smoke test;
//! the identity asserts are the check either way.

use std::time::Instant;

use bench::parallel::{
    capture_prepared, capture_store_checksum, fixture, restore_bytes, restore_setup, SWEEP_THREADS,
};
use bench::util::check_pinned_digests;

fn median_ns(samples: &mut Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn mb_per_s(bytes: usize, ns: u64) -> f64 {
    (bytes as f64 / (1024.0 * 1024.0)) / (ns as f64 / 1e9)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (pages, iters) = if quick { (192usize, 9usize) } else { (768, 15) };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let f = fixture(pages);
    let image_bytes = f.raw.len();
    println!(
        "# parallel scaling: {pages} pages ({:.1} MiB), threads {SWEEP_THREADS:?}, host_cpus {host_cpus}",
        image_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- byte-identity gates first: no number without the proof ---------
    let serial = capture_prepared(&f, 1);
    let store_serial = capture_store_checksum(&f, 1);
    let fs = restore_setup(&f);
    let image_serial = restore_bytes(&fs, 1).expect("serial restore reconstructs");
    assert_eq!(image_serial, f.raw, "serial restore round-trips the image");
    for &t in SWEEP_THREADS {
        let p = capture_prepared(&f, t);
        assert_eq!(
            p.manifest(),
            serial.manifest(),
            "threads={t}: manifest diverged from serial"
        );
        assert_eq!(
            capture_store_checksum(&f, t),
            store_serial,
            "threads={t}: persisted store bytes diverged from serial"
        );
        assert_eq!(
            restore_bytes(&fs, t).expect("pooled restore reconstructs"),
            image_serial,
            "threads={t}: restored image diverged from serial"
        );
    }
    println!("# byte-identity: manifests, store files and restored images equal at every width");

    // ---- throughput sweep ------------------------------------------------
    let mut capture_ns: Vec<(usize, u64)> = Vec::new();
    let mut restore_ns: Vec<(usize, u64)> = Vec::new();
    for &t in SWEEP_THREADS {
        std::hint::black_box(capture_prepared(&f, t)); // warmup
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let clock = Instant::now();
            std::hint::black_box(capture_prepared(&f, t).manifest_len());
            samples.push(clock.elapsed().as_nanos() as u64);
        }
        capture_ns.push((t, median_ns(&mut samples)));

        std::hint::black_box(restore_bytes(&fs, t)); // warmup
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let clock = Instant::now();
            std::hint::black_box(restore_bytes(&fs, t).map(|b| b.len()));
            samples.push(clock.elapsed().as_nanos() as u64);
        }
        restore_ns.push((t, median_ns(&mut samples)));
    }

    let base_capture = capture_ns[0].1;
    let base_restore = restore_ns[0].1;
    println!(
        "{:>8} {:>16} {:>10} {:>9} {:>16} {:>10} {:>9}",
        "threads", "capture_ms", "cap_MB/s", "cap_x", "restore_ms", "rst_MB/s", "rst_x"
    );
    for (&(t, c), &(_, r)) in capture_ns.iter().zip(&restore_ns) {
        println!(
            "{:>8} {:>16.2} {:>10.1} {:>8.2}x {:>16.2} {:>10.1} {:>8.2}x",
            t,
            c as f64 / 1e6,
            mb_per_s(image_bytes, c),
            base_capture as f64 / c as f64,
            r as f64 / 1e6,
            mb_per_s(image_bytes, r),
            base_restore as f64 / r as f64,
        );
    }

    let cap_at_4 = capture_ns
        .iter()
        .find(|&&(t, _)| t == 4)
        .map_or(1.0, |&(_, ns)| base_capture as f64 / ns as f64);
    if host_cpus >= 4 {
        assert!(
            cap_at_4 >= 2.5,
            "capture encode at 4 threads reached only {cap_at_4:.2}x (floor 2.5x, host_cpus {host_cpus})"
        );
        println!("# capture encode at 4 threads: {cap_at_4:.2}x (floor 2.5x met)");
    } else {
        println!(
            "# capture encode at 4 threads: {cap_at_4:.2}x — floor not enforced (host_cpus {host_cpus} < 4; identity asserts still gate)"
        );
    }

    check_pinned_digests();

    let fmt_rows = |rows: &[(usize, u64)], base: u64| -> String {
        rows.iter()
            .map(|&(t, ns)| {
                format!(
                    "    {{\"threads\": {t}, \"median_ns\": {ns}, \"mb_per_s\": {:.1}, \"speedup\": {:.2}}}",
                    mb_per_s(image_bytes, ns),
                    base as f64 / ns as f64
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"quick\": {quick},\n  \"pages\": {pages},\n  \"image_bytes\": {image_bytes},\n  \"host_cpus\": {host_cpus},\n  \"byte_identical\": true,\n  \"capture_speedup_at_4\": {cap_at_4:.2},\n  \"capture\": [\n{}\n  ],\n  \"restore\": [\n{}\n  ]\n}}\n",
        fmt_rows(&capture_ns, base_capture),
        fmt_rows(&restore_ns, base_restore),
    );
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!("# wrote BENCH_parallel.json");
}
