//! The dedup-store ablation table: bytes written per checkpoint epoch,
//! checkpoint latency and restart cost of the slm ring under the plain,
//! dedup and dedup+compress store representations.
//!
//! `--quick` runs a reduced sweep (smaller state, fewer epochs) as a CI
//! smoke test.

use bench::dedup::run_dedup_sweep;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ranks, state_bytes, checkpoints) = if quick {
        (2usize, 1024 * 1024u64, 3usize)
    } else {
        (2usize, 8 * 1024 * 1024u64, 4usize)
    };
    println!(
        "# Store ablation: slm ring, {ranks} ranks x {} MiB state, {checkpoints} epochs ~100 ms apart",
        state_bytes / (1024 * 1024)
    );
    println!(
        "{:>9} {:>12} {:>13} {:>11} {:>12} {:>13} {:>12}",
        "store",
        "first_MiB",
        "steady_KiB",
        "first_lat_s",
        "steady_lat_s",
        "restart_MiB",
        "restart_s"
    );
    let rows = run_dedup_sweep(ranks, state_bytes, checkpoints);
    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    for r in &rows {
        println!(
            "{:>9} {:>12.2} {:>13.1} {:>11.3} {:>12.3} {:>13.2} {:>12.3}",
            r.label,
            mib(r.first_epoch_bytes),
            r.steady_epoch_bytes as f64 / 1024.0,
            r.first_latency.as_secs_f64(),
            r.steady_latency.as_secs_f64(),
            mib(r.restart_bytes),
            r.restart_latency.as_secs_f64(),
        );
        assert!(r.progressed, "{}: job stalled after restart", r.label);
    }
    let plain = &rows[0];
    for r in &rows[1..] {
        assert_eq!(
            r.image_digest, plain.image_digest,
            "{}: restored images diverge from plain",
            r.label
        );
    }
    let ratio = plain.steady_epoch_bytes as f64 / rows[2].steady_epoch_bytes.max(1) as f64;
    println!("# dedup+lz steady-state write reduction vs plain: {ratio:.1}x");
    println!("# restored images byte-identical across all variants");
}
