//! Regenerates Fig. 5(a): total checkpoint latency of the slm benchmark
//! vs. node count. `--quick` runs only the smallest point (CI smoke test).

use bench::fig5::run_fig5;
use bench::util::mean_std_secs;
use des::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, checkpoints): (&[usize], usize) =
        if quick { (&[2], 1) } else { (&[2, 4, 6, 8], 3) };
    println!("# Fig 5(a): total checkpoint latency (slm)");
    println!("{:>6} {:>14} {:>10}", "nodes", "latency_s", "std_s");
    for &n in sizes {
        let p = run_fig5(n, checkpoints, SimDuration::from_secs(2));
        let (mean, std) = mean_std_secs(&p.latencies());
        println!("{n:>6} {mean:>14.3} {std:>10.4}");
    }
}
