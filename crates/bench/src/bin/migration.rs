//! Regenerates the §4.2 migration scenario: live-migrate the receiver of a
//! maximum-rate TCP stream and measure the delivery pause; the remote peer
//! is untouched and the connection survives.

use bench::fig6::streaming_job;
use cluster::{ClusterParams, World};
use des::SimDuration;
use workloads::streaming::RECV_COUNTER_ADDR;

fn counter(w: &World) -> u64 {
    w.peek_guest("stream", "receiver", 1, RECV_COUNTER_ADDR, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

fn main() {
    let (spec, _) = streaming_job(10 * 1024 * 1024);
    let mut w = World::new(4, ClusterParams::default());
    w.launch_job(&spec).expect("launch");
    w.run_for(SimDuration::from_millis(300));
    let before = counter(&w);
    let t0 = w.now;
    w.migrate_pod("stream", "receiver", 2).expect("migrate");
    // Sample delivery until the stream is back at full rate.
    let mut resumed_at = None;
    let mut last = before;
    for step in 1..=600u64 {
        w.run_for(SimDuration::from_millis(2));
        let c = counter(&w);
        if resumed_at.is_none() && c > last && step > 2 {
            resumed_at = Some(w.now.duration_since(t0));
        }
        last = c;
    }
    println!("# Live migration of the streaming receiver (sender untouched)");
    println!(
        "receiver now on node {}",
        w.job("stream").unwrap().placement("receiver").unwrap().node
    );
    println!("bytes before migration: {before}");
    println!("bytes after window:     {last}");
    match resumed_at {
        Some(d) => println!(
            "delivery resumed {:.1} ms after migration started",
            d.as_millis_f64()
        ),
        None => println!("stream did NOT resume (connection lost)"),
    }
    assert!(last > before, "stream must survive the migration");
}
