//! Replicated-store robustness bench (EXPERIMENTS.md E19): restore
//! success and MTTR with k−1 of k replica stores killed mid-checkpoint,
//! and the write amplification replication pays for it.
//!
//! Emits a machine-readable `BENCH_replication.json` so the robustness
//! trajectory is tracked across PRs. The asserts are the check: the job
//! heals at every k, the restored images are byte-identical across the
//! sweep, and storage grows with k in the expected band.
//!
//! `--quick` sweeps only k ∈ {1, 3} as a CI smoke test. `--chaos` instead
//! replays pinned replica-kill fault-plan seeds twice each and demands
//! byte-identical event traces (the replica fault plane must be exactly
//! as deterministic as the rest of the world).

use bench::replication::{replica_chaos_fingerprints, run_replication_sweep, ReplicationRow};

const PINNED: [(u64, u64); 3] = [(1, 7), (2, 19), (9, 104)];

fn json_row(r: &ReplicationRow, write_amp: f64) -> String {
    format!(
        concat!(
            "    {{\"k\": {}, \"replicas_killed\": {}, \"restore_ok\": {}, ",
            "\"detection_ms\": {:.3}, \"mttr_ms\": {:.3}, \"scrubbed\": {}, ",
            "\"stored_bytes\": {}, \"write_amp_vs_k1\": {:.3}, ",
            "\"image_digest\": \"{:#018x}\"}}"
        ),
        r.k,
        r.replicas_killed,
        r.restore_ok,
        r.detection.as_micros_f64() / 1000.0,
        r.mttr.as_micros_f64() / 1000.0,
        r.scrubbed,
        r.stored_bytes,
        write_amp,
        r.image_digest,
    )
}

fn chaos_main() {
    println!(
        "# replica-kill chaos replay: {} pinned seeds at k = 3",
        PINNED.len()
    );
    println!(
        "{:>11} {:>10} {:>20} {:>12}",
        "world_seed", "plan_seed", "trace_digest", "events"
    );
    for (world_seed, plan_seed) in PINNED {
        let (a, b) = replica_chaos_fingerprints(world_seed, plan_seed);
        assert_eq!(
            a, b,
            "replica chaos replay of plan seed {plan_seed} (world {world_seed}) diverged"
        );
        println!(
            "{:>11} {:>10} {:>#20x} {:>12}",
            world_seed, plan_seed, a.0, a.1
        );
    }
    println!("# all pinned replica-kill plans replay byte-for-byte");
}

fn main() {
    if std::env::args().any(|a| a == "--chaos") {
        chaos_main();
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let ks: &[usize] = if quick { &[1, 3] } else { &[1, 2, 3, 5] };

    println!("# replicated store: kill k-1 of k replica stores mid-checkpoint, heal, restore");
    println!(
        "{:>3} {:>7} {:>8} {:>11} {:>9} {:>8} {:>13} {:>9}",
        "k", "killed", "restore", "detect_ms", "mttr_ms", "scrub", "stored_bytes", "amp_k1"
    );
    let rows = run_replication_sweep(ks, 7);
    let base_bytes = rows[0].stored_bytes as f64;
    let amps: Vec<f64> = rows
        .iter()
        .map(|r| r.stored_bytes as f64 / base_bytes)
        .collect();
    for (r, amp) in rows.iter().zip(&amps) {
        println!(
            "{:>3} {:>7} {:>8} {:>11.3} {:>9.3} {:>8} {:>13} {:>9.3}",
            r.k,
            r.replicas_killed,
            r.restore_ok,
            r.detection.as_micros_f64() / 1000.0,
            r.mttr.as_micros_f64() / 1000.0,
            r.scrubbed,
            r.stored_bytes,
            amp,
        );
    }

    for (r, amp) in rows.iter().zip(&amps) {
        assert!(r.restore_ok, "k = {} failed to restore", r.k);
        assert_eq!(r.replicas_killed, r.k - 1, "the plan must kill k-1");
        assert_eq!(
            r.image_digest, rows[0].image_digest,
            "restored images diverge at k = {}",
            r.k
        );
        // Each replica costs one store tree plus one op log, and the
        // post-heal compaction pass shrinks every log to the minimal
        // self-contained form — roughly one tree's bytes, since the log
        // must keep carrying the retained epoch's blobs for scrub's
        // replay-from-empty. Amplification therefore tracks ≈2k; drifting
        // above 2.2k means compaction stopped firing and history is
        // accreting in the logs again.
        if r.k > 1 {
            let lo = 1.9 * r.k as f64;
            let hi = 2.2 * r.k as f64;
            assert!(
                (lo..hi).contains(amp),
                "write amplification {amp:.2} outside [{lo:.1}, {hi:.1}) at k = {}",
                r.k
            );
        }
    }
    println!("# restore succeeded at every k with byte-identical rollback images");
    println!("# write amplification tracks ~2k (store trees + compacted operation logs)");

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"replication\",\n  \"scenario\": ",
            "\"kill k-1 replica stores and the client node mid-checkpoint, heal via scrub+rollback\",\n",
            "  \"seed\": 7,\n  \"points\": [\n{}\n  ]\n}}\n"
        ),
        rows.iter()
            .zip(&amps)
            .map(|(r, &amp)| json_row(r, amp))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_replication.json", json).expect("write BENCH_replication.json");
    println!("# wrote BENCH_replication.json");
}
