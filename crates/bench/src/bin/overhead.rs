//! Regenerates the §6 runtime-overhead claim: the virtualization layer
//! costs well under 0.5 % for realistic syscall densities.

use bench::overhead::run_overhead;
use workloads::ComputeConfig;

fn main() {
    println!("# Runtime virtualization overhead (pod vs bare kernel)");
    println!(
        "{:>22} {:>12} {:>12} {:>10}",
        "instr_per_syscall", "bare_s", "pod_s", "overhead%"
    );
    for (outer, inner) in [
        (200u64, 50_000u64),
        (500, 10_000),
        (2_000, 2_000),
        (10_000, 200),
    ] {
        let rep = run_overhead(ComputeConfig { outer, inner });
        // inner loop is ~4 instructions per iteration plus loop overhead
        let ips = inner * 4 + 6;
        println!(
            "{ips:>22} {:>12.6} {:>12.6} {:>10.3}",
            rep.bare_secs,
            rep.pod_secs,
            rep.overhead_percent()
        );
    }
}
