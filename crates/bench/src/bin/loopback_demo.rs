//! End-to-end demo of the runtime seam: the same checkpoint → fault →
//! recover → restore cycle run twice — once in the deterministic DES
//! backend, once over real loopback-UDP sockets and OS threads — and the
//! restored-image digests compared.
//!
//! This is the acceptance demo of the sim-agnostic protocol engine: the
//! coordinator/agent state machines, the transport seam and the store
//! are shared; only the carrier (event queue vs. `std::net::UdpSocket`)
//! and the clock (virtual vs. wall) differ. A matching digest means the
//! loopback run froze, captured, committed, detected the fail-stop crash
//! by heartbeat, and restored the *same bytes* the simulator pins.
//!
//! Prints `SKIPPED` and exits 0 where the sandbox forbids loopback
//! sockets, so CI can run it unconditionally.

use cluster::netrt::loopback_available;
use cluster::{ClusterParams, JobSpec, NetRuntime, PodSpec, SimRuntime};
use simnet::addr::{IpAddr, MacAddr};
use workloads::compute::ComputeConfig;
use zap::image::MacMode;

/// The demo cluster: pod on node 0, spare node 1, coordinator node 2.
const NODES: usize = 3;
const SPARE: usize = 1;

fn demo_spec() -> JobSpec {
    let cfg = ComputeConfig {
        outer: 60,
        inner: 80,
    };
    JobSpec {
        name: "demo".into(),
        coordinator_node: 2,
        pods: vec![PodSpec {
            name: "p0".into(),
            ip: IpAddr::from_octets([10, 0, 1, 5]),
            mac_mode: MacMode::Dedicated(MacAddr::from_index(2101)),
            node: 0,
            programs: vec![cfg.program()],
        }],
    }
}

fn main() {
    if !loopback_available() {
        println!("SKIPPED: loopback UDP sockets unavailable in this environment");
        return;
    }
    let spec = demo_spec();

    println!("# twin cycle: run to completion, checkpoint, kill node 0, heartbeat-detect, restore on spare");
    let mut sim = SimRuntime::new(NODES, ClusterParams::default());
    let sim_rep = sim.run_cycle(&spec, SPARE).expect("sim cycle completes");
    println!(
        "sim : epoch {}  pods {:?}  digest {:#018x}  ({} DES events)",
        sim_rep.epoch, sim_rep.restored_pods, sim_rep.restored_digest, sim_rep.events_processed
    );

    let net = NetRuntime::new(NODES, ClusterParams::default());
    let net_rep = net
        .run_cycle(&spec, SPARE)
        .expect("loopback cycle completes");
    println!(
        "net : epoch {}  pods {:?}  digest {:#018x}  ({} pings, {} pongs, {} threads joined)",
        net_rep.epoch,
        net_rep.restored_pods,
        net_rep.restored_digest,
        net_rep.pings_sent,
        net_rep.pongs_received,
        net_rep.joined_threads
    );

    assert_eq!(
        net_rep.failed_nodes,
        vec![0],
        "heartbeat pass must converge on the killed node"
    );
    assert_eq!(
        net_rep.joined_threads,
        NODES + 1,
        "every node thread and the store service must join"
    );
    assert_eq!(
        net_rep.restored_digest, sim_rep.restored_digest,
        "loopback restore must be byte-identical to the simulated restore"
    );
    println!("# digests match: the loopback-UDP backend restored the simulator's exact bytes");
}
