//! Regenerates the §6 claim that restart behaves like Fig. 5(a)/(b):
//! checkpoint an slm job, crash its nodes, restart on spares, and compare
//! the two operations.

use bench::fig5::run_restart_sweep;

fn main() {
    println!("# Restart vs checkpoint (slm, restart onto fresh nodes)");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14}",
        "nodes", "ckpt_s", "restart_s", "ckpt_ovh_us", "restart_ovh_us"
    );
    for n in [2usize, 4, 8] {
        let (ck, rs) = run_restart_sweep(n);
        println!(
            "{n:>6} {:>12.3} {:>12.3} {:>14.1} {:>14.1}",
            ck.stats.checkpoint_latency().unwrap().as_secs_f64(),
            rs.stats.checkpoint_latency().unwrap().as_secs_f64(),
            ck.coordination_overhead().unwrap().as_micros_f64(),
            rs.coordination_overhead().unwrap().as_micros_f64(),
        );
    }
}
