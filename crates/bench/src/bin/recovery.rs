//! The MTTR ablation (EXPERIMENTS.md E16): crash a node mid-checkpoint via
//! a seeded fault plan and measure detection latency and mean-time-to-repair
//! of the self-healing manager across heartbeat intervals.
//!
//! Also emits a machine-readable `BENCH_recovery.json` next to the working
//! directory so the robustness trajectory is tracked across PRs.
//!
//! `--quick` sweeps fewer operating points as a CI smoke test; the asserts
//! (job healed at every point, rollback exact, detection monotone in the
//! heartbeat interval, byte-identical committed images) are the check
//! either way.

use bench::recovery::{run_recovery_sweep, RecoveryRow};
use des::SimDuration;

fn json_row(r: &RecoveryRow) -> String {
    format!(
        concat!(
            "    {{\"heartbeat_interval_ms\": {:.1}, \"heartbeat_timeout_ms\": {:.1}, ",
            "\"detection_ms\": {:.3}, \"mttr_ms\": {:.3}, ",
            "\"rollback_epoch\": {}, \"image_digest\": \"{:#018x}\"}}"
        ),
        r.heartbeat_interval.as_micros_f64() / 1000.0,
        r.heartbeat_timeout.as_micros_f64() / 1000.0,
        r.detection.as_micros_f64() / 1000.0,
        r.mttr.as_micros_f64() / 1000.0,
        r.rollback_epoch,
        r.image_digest,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let intervals: Vec<SimDuration> = if quick {
        [5u64, 80]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect()
    } else {
        [5u64, 20, 80]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect()
    };
    println!(
        "# self-healing MTTR ablation: pingpong client node crashed between local-done and durable"
    );
    println!(
        "{:>12} {:>12} {:>13} {:>10}",
        "hb_int_ms", "hb_to_ms", "detect_ms", "mttr_ms"
    );
    let rows = run_recovery_sweep(&intervals, 7);
    for r in &rows {
        println!(
            "{:>12.1} {:>12.1} {:>13.3} {:>10.3}",
            r.heartbeat_interval.as_micros_f64() / 1000.0,
            r.heartbeat_timeout.as_micros_f64() / 1000.0,
            r.detection.as_micros_f64() / 1000.0,
            r.mttr.as_micros_f64() / 1000.0,
        );
    }

    for pair in rows.windows(2) {
        assert!(
            pair[0].detection <= pair[1].detection,
            "detection latency not monotone in the heartbeat interval"
        );
        assert!(pair[0].mttr <= pair[1].mttr, "MTTR not monotone");
        assert_eq!(
            pair[0].image_digest, pair[1].image_digest,
            "rollback images diverge across operating points"
        );
        assert_eq!(pair[0].rollback_epoch, pair[1].rollback_epoch);
    }
    for r in &rows {
        assert!(
            r.detection <= r.heartbeat_interval + r.heartbeat_timeout + SimDuration::from_millis(1),
            "detection {:?} exceeds one heartbeat round at interval {:?}",
            r.detection,
            r.heartbeat_interval,
        );
        assert!(r.mttr >= r.detection);
    }
    println!("# detection bounded by one heartbeat round at every operating point");
    println!("# rollback epoch and restored image digest identical across the sweep");

    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"scenario\": \"crash client node at local-done-to-durable, heal via heartbeat\",\n  \"seed\": 7,\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_recovery.json", json).expect("write BENCH_recovery.json");
    println!("# wrote BENCH_recovery.json");
}
