//! §5.2 ablation: how the length of the communication blackout (set by the
//! checkpoint's local-save time) shapes the TCP disturbance. Supports the
//! paper's proposal to re-enable communication as soon as the *network*
//! state is saved.

use bench::fig6::run_fig6;

fn main() {
    println!("# Communication-blackout sweep: state size vs TCP disturbance");
    println!(
        "{:>12} {:>14} {:>14}",
        "state_MiB", "blackout_ms", "recovery_ms"
    );
    for mib in [1u64, 4, 10, 20] {
        let run = run_fig6(mib * 1024 * 1024, 40, 700, 2, 10);
        println!(
            "{mib:>12} {:>14.1} {:>14}",
            run.checkpoint_ms,
            run.recovery_ms
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "none".into())
        );
    }
}
