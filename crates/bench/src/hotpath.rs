//! Shared kernels for the hot-path micro-benchmarks: each optimized path
//! paired with the reference implementation it must match byte-for-byte.
//!
//! Four pairs, mirroring the optimization pass DESIGN.md §15 describes:
//!
//! * **codec** — fresh-allocation [`cruz::chunk::encode_chunk`] vs the
//!   scratch-reusing [`cruz::chunk::encode_chunk_with`];
//! * **chunk_id** — the 128-bit content address as two independent FNV
//!   passes over the page vs [`des::digest::fold2`]'s single interleaved
//!   pass (what [`cruz::chunk::ChunkId::of`] now does);
//! * **queue** — the pre-optimization two-field heap entry (kept here as
//!   [`RefQueue`]) vs [`des::EventQueue`]'s packed `u128` key;
//! * **capture** — [`CheckpointStore::prepare_chunked`] vs the page-digest
//!   cached `prepare_chunked_hinted` on a steady-state epoch where most
//!   pages are clean.
//!
//! Both the `hotpath` criterion harness and the `bench_hotpath` binary
//! drive these kernels; the binary additionally asserts the ref/opt
//! outputs agree, so a speedup can never come from diverging behavior.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cruz::chunk::{self, CodecScratch};
use cruz::pagecache::{DigestCache, PageHint};
use cruz::store::{CheckpointStore, PreparedChunked, StoreConfig};
use des::digest;
use des::{EventQueue, SimTime};
use simos::fs::NetFs;

/// Page size the synthetic images use (matches the guest page size).
pub const PAGE: usize = 4096;

/// Deterministic xorshift64* stream for reproducible inputs.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Fills `buf` with a page of the given flavor: `0` zero page, `1`
/// text-like (compressible), `2` sparse counters, `3` incompressible.
fn fill_page(buf: &mut [u8], flavor: u64, seed: u64) {
    let mut s = seed | 1;
    match flavor % 4 {
        0 => buf.fill(0),
        1 => {
            const TEXT: &[u8] = b"the quick brown fox jumps over the lazy dog ";
            for (i, b) in buf.iter_mut().enumerate() {
                *b = TEXT[i % TEXT.len()];
            }
        }
        2 => {
            buf.fill(0);
            for i in (0..buf.len()).step_by(64) {
                buf[i] = (xorshift(&mut s) & 0xff) as u8;
            }
        }
        _ => {
            for b in buf.iter_mut() {
                *b = (xorshift(&mut s) & 0xff) as u8;
            }
        }
    }
}

/// A representative novel-page mix for the identify+encode kernels. A
/// first-epoch capture of an idle-heavy pod is dominated by never-written
/// (all-zero) pages — the population the zero-page shortcut targets — with
/// the rest a spread of compressible, sparse, and incompressible payloads.
/// Callers report the realized zero fraction via [`zero_fraction`].
pub fn codec_inputs(pages: usize) -> Vec<Vec<u8>> {
    const FLAVORS: [u64; 16] = [0, 1, 0, 2, 0, 0, 3, 0, 0, 2, 0, 0, 1, 0, 0, 0];
    (0..pages)
        .map(|i| {
            let mut p = vec![0u8; PAGE];
            fill_page(&mut p, FLAVORS[i % FLAVORS.len()], i as u64 + 1);
            p
        })
        .collect()
}

/// Share of `inputs` that are all-zero pages, in percent.
pub fn zero_fraction(inputs: &[Vec<u8>]) -> usize {
    if inputs.is_empty() {
        return 0;
    }
    100 * inputs.iter().filter(|p| chunk::is_zero_page(p)).count() / inputs.len()
}

/// Folds a chunk id and its stored container into a running checksum, so
/// the ref/opt kernels can be compared without keeping every output alive.
fn fold_chunk(h: u64, id: chunk::ChunkId, stored: &[u8]) -> u64 {
    digest::fold(digest::fold_u64(digest::fold_u64(h, id.0), id.1), stored)
}

/// Reference per-page identify+encode: two full FNV folds for the chunk id
/// plus a fresh match-finder table and output allocation per page — what
/// the capture path did before this pass.
pub fn codec_reference(inputs: &[Vec<u8>]) -> u64 {
    inputs.iter().fold(digest::OFFSET, |h, p| {
        fold_chunk(h, chunk::ChunkId::of(p), &chunk::encode_chunk(p, true))
    })
}

/// Optimized per-page identify+encode: the zero-page fast path skips both
/// folds and the codec entirely; non-zero pages reuse the scratch table
/// and output buffer.
pub fn codec_optimized(inputs: &[Vec<u8>], scratch: &mut CodecScratch) -> u64 {
    inputs.iter().fold(digest::OFFSET, |h, p| {
        if chunk::is_zero_page(p) {
            fold_chunk(h, chunk::zero_page_id(), chunk::zero_page_encoded(true))
        } else {
            fold_chunk(
                h,
                chunk::ChunkId::of(p),
                &chunk::encode_chunk_with(p, true, scratch),
            )
        }
    })
}

/// Reference 128-bit content address: two complete, independent FNV-1a
/// folds over the data — the data read twice, each fold latency-bound on
/// its own multiply chain. What [`cruz::chunk::ChunkId::of`] did before
/// [`des::digest::fold2`]. Returns the two halves folded together so the
/// pair can be compared as one checksum.
pub fn chunk_id_reference(data: &[u8]) -> u64 {
    let lo = digest::fold(digest::OFFSET, data);
    let hi = digest::fold(digest::OFFSET_ALT, data);
    digest::fold_u64(lo, hi)
}

/// Optimized 128-bit content address: one interleaved [`des::digest::fold2`]
/// pass — the data read once, the two independent multiply chains kept in
/// flight together.
pub fn chunk_id_optimized(data: &[u8]) -> u64 {
    let (lo, hi) = digest::fold2(digest::OFFSET, digest::OFFSET_ALT, data);
    digest::fold_u64(lo, hi)
}

/// The pre-optimization event-queue entry: time and sequence number as
/// separate fields compared lexicographically. Kept verbatim as the
/// reference side of the queue churn pair.
#[derive(Debug)]
struct RefEntry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for RefEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for RefEntry<T> {}
impl<T> PartialOrd for RefEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for RefEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-optimization event queue (two-field comparator), FIFO on ties.
#[derive(Debug)]
pub struct RefQueue<T> {
    heap: BinaryHeap<RefEntry<T>>,
    seq: u64,
}

impl<T> RefQueue<T> {
    /// Creates an empty reference queue.
    pub fn new() -> Self {
        RefQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(RefEntry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }
}

impl<T> Default for RefQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The churn schedule both queue kernels replay: `(time_nanos, payload)`
/// pushes with clustered timestamps (simulation events bunch at epoch
/// boundaries, so ties are common).
pub fn queue_schedule(n: usize) -> Vec<(u64, u64)> {
    let mut s = 0x9e37_79b9u64;
    (0..n as u64)
        .map(|i| {
            let t = (xorshift(&mut s) % 1000) * 100 + (i / 16) * 50;
            (t, i)
        })
        .collect()
}

/// Reference queue churn: push half, interleave pop/push, drain.
/// Returns an order-sensitive checksum of the popped sequence.
pub fn queue_reference_churn(schedule: &[(u64, u64)]) -> u64 {
    churn(&mut RefQueue::new(), schedule)
}

/// Optimized queue churn: same schedule through [`des::EventQueue`]'s
/// packed-key entries.
pub fn queue_optimized_churn(schedule: &[(u64, u64)]) -> u64 {
    churn(&mut EventQueue::new(), schedule)
}

/// The two queue implementations under one interface so both replay the
/// exact same churn loop.
trait Churnable {
    fn push(&mut self, at: SimTime, payload: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl Churnable for RefQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        RefQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        RefQueue::pop(self)
    }
}

impl Churnable for EventQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        EventQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

fn churn(q: &mut impl Churnable, schedule: &[(u64, u64)]) -> u64 {
    let half = schedule.len() / 2;
    let mut sum = digest::OFFSET;
    for &(t, p) in &schedule[..half] {
        q.push(SimTime::from_nanos(t), p);
    }
    for &(t, p) in &schedule[half..] {
        if let Some((at, got)) = q.pop() {
            sum = digest::fold_u64(sum, at.as_nanos());
            sum = digest::fold_u64(sum, got);
        }
        q.push(SimTime::from_nanos(t), p);
    }
    while let Some((at, got)) = q.pop() {
        sum = digest::fold_u64(sum, at.as_nanos());
        sum = digest::fold_u64(sum, got);
    }
    sum
}

/// A steady-state capture epoch: the serialized image, its page hints,
/// and a cache warmed by the previous epoch's prepare.
pub struct CaptureFixture {
    /// The store both paths prepare against (nothing is ever written, so
    /// novelty accounting is identical every iteration).
    pub store: CheckpointStore,
    /// Chunking/codec settings.
    pub cfg: StoreConfig,
    /// The current epoch's serialized image.
    pub raw: Vec<u8>,
    /// Page hints for `raw`; clean pages carry keys into the warm cache.
    pub hints: Vec<PageHint>,
    /// The same cuts as `(offset, len)` pairs for the reference path.
    pub cuts: Vec<(usize, usize)>,
    /// Cache holding the previous epoch's page digests.
    pub cache: DigestCache,
}

/// Builds the steady-state epoch: `pages` private pages of which
/// `dirty_pct`% were rewritten since the previous capture; the rest are
/// byte-identical and marked clean. The returned cache is warm (the
/// previous epoch was prepared through it).
pub fn capture_fixture(pages: usize, dirty_pct: usize) -> CaptureFixture {
    // threads: 1 pins both paths to the serial kernels: this pair isolates
    // the digest-cache win; thread scaling is bench_parallel's subject.
    let cfg = StoreConfig {
        chunk_bytes: 1024,
        dedup: true,
        compress: true,
        threads: 1,
        replicas: 1,
    };
    let store = CheckpointStore::new(NetFs::new(), "bench");
    let mut cache = DigestCache::new();

    let build = |rewrite: &dyn Fn(usize) -> bool| -> (Vec<u8>, Vec<PageHint>) {
        let mut raw = vec![0xA5u8; 64]; // image header metadata
        let mut hints = Vec::with_capacity(pages);
        for i in 0..pages {
            let mut p = vec![0u8; PAGE];
            let flavor = [1u64, 2, 2, 3, 0][i % 5];
            let seed = if rewrite(i) {
                0x8000 + i as u64
            } else {
                1 + i as u64
            };
            fill_page(&mut p, flavor, seed);
            hints.push(PageHint {
                offset: raw.len(),
                len: PAGE,
                key: Some((0, i as u64 * PAGE as u64)),
                clean: !rewrite(i),
            });
            raw.extend_from_slice(&p);
        }
        raw.extend_from_slice(&[0x5A; 32]); // trailer metadata
        (raw, hints)
    };

    // Previous epoch: everything computed fresh, warming the cache.
    let (raw0, mut hints0) = build(&|_| false);
    for h in &mut hints0 {
        h.clean = false;
    }
    store.prepare_chunked_hinted(&raw0, &hints0, &cfg, "pod", &mut cache);

    // Current epoch: a dirty_pct% slice of pages rewritten.
    let stride = (100 / dirty_pct.clamp(1, 100)).max(1);
    let (raw, hints) = build(&|i| i % stride == 0);
    let cuts = hints.iter().map(|h| (h.offset, h.len)).collect();
    CaptureFixture {
        store,
        cfg,
        raw,
        hints,
        cuts,
        cache,
    }
}

/// Reference capture prepare: every page re-hashed and re-encoded.
pub fn capture_reference(f: &CaptureFixture) -> PreparedChunked {
    f.store.prepare_chunked(&f.raw, &f.cuts, &f.cfg)
}

/// Cached capture prepare: clean pages served from the warm digest cache.
/// Steady state is preserved across calls — each prepare re-records the
/// epoch's entries, so repeated invocations keep hitting.
pub fn capture_hinted(f: &mut CaptureFixture) -> PreparedChunked {
    f.store
        .prepare_chunked_hinted(&f.raw, &f.hints, &f.cfg, "pod", &mut f.cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_and_opt_kernels_agree() {
        let inputs = codec_inputs(16);
        let mut scratch = CodecScratch::new();
        assert_eq!(
            codec_reference(&inputs),
            codec_optimized(&inputs, &mut scratch)
        );

        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(chunk_id_reference(&data), chunk_id_optimized(&data));

        let sched = queue_schedule(4096);
        assert_eq!(queue_reference_churn(&sched), queue_optimized_churn(&sched));

        let mut f = capture_fixture(64, 25);
        let r = capture_reference(&f);
        let h = capture_hinted(&mut f);
        assert_eq!(r.manifest(), h.manifest());
        assert!(f.cache.hits() > 0, "steady-state epoch must hit the cache");
    }
}
