//! Figures 5(a) and 5(b): checkpoint latency and coordination overhead of
//! the `slm` benchmark as the node count grows, plus the restart
//! counterpart the paper says behaves "similarly" (§6).

use cluster::{ClusterParams, OpReport, World};
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simos::disk::DiskParams;
use workloads::slm::SlmConfig;

/// Per-rank resident state (sets the checkpoint payload). Scaled from the
/// paper's testbed together with the disk bandwidth below so the local save
/// lands at ≈1 s, as in Fig. 5(a); see `EXPERIMENTS.md`.
pub const STATE_BYTES: u64 = 8 * 1024 * 1024;

/// Cluster parameters for the Fig. 5 runs: disk bandwidth scaled with the
/// state size to keep the state-to-disk ratio (and thus the ≈1 s local
/// save) of the paper's testbed.
pub fn fig5_params() -> ClusterParams {
    ClusterParams {
        disk: DiskParams {
            bandwidth_bps: 8 * 1024 * 1024,
            op_overhead: SimDuration::from_millis(5),
        },
        prune_old_epochs: true,
        ..ClusterParams::default()
    }
}

/// The slm configuration used by both Fig. 5 sweeps.
pub fn fig5_slm(ranks: usize) -> SlmConfig {
    SlmConfig {
        ranks,
        state_bytes: STATE_BYTES,
        iters: u64::MAX / 2, // runs for the whole experiment
        compute_ns: 5_000_000,
        halo_bytes: 8 * 1024,
        port: 7100,
        state_step_bytes: 0,
    }
}

/// One measured point of the Fig. 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Node (rank) count.
    pub nodes: usize,
    /// Reports of each checkpoint taken.
    pub reports: Vec<OpReport>,
}

impl Fig5Point {
    /// Total checkpoint latencies (Fig. 5(a)'s series).
    pub fn latencies(&self) -> Vec<SimDuration> {
        self.reports
            .iter()
            .filter_map(|r| r.stats.checkpoint_latency())
            .collect()
    }

    /// Coordination overheads (Fig. 5(b)'s series).
    pub fn overheads(&self) -> Vec<SimDuration> {
        self.reports
            .iter()
            .filter_map(|r| r.coordination_overhead())
            .collect()
    }
}

/// Runs `checkpoints` coordinated checkpoints of an `n`-rank slm job,
/// spaced `interval` apart (the paper used an 8 s interval of execution
/// time; the spacing does not affect either metric).
pub fn run_fig5(n: usize, checkpoints: usize, interval: SimDuration) -> Fig5Point {
    let slm = fig5_slm(n);
    let mut w = World::new(n + 1, fig5_params());
    w.launch_job(&slm.job_spec("slm", n)).expect("launch slm");
    // Let the ring establish and settle into the timestep rhythm.
    w.run_for(SimDuration::from_millis(100));
    let mut reports = Vec::new();
    for _ in 0..checkpoints {
        w.run_for(interval);
        let op = w
            .start_checkpoint("slm", ProtocolMode::Blocking, None)
            .expect("start checkpoint");
        assert!(w.run_until_op(op, 100_000_000), "checkpoint completes");
        reports.push(w.op_report(op).expect("report exists"));
    }
    Fig5Point { nodes: n, reports }
}

/// Runs the restart counterpart: checkpoint an `n`-rank job once, then
/// restart it from that epoch onto `n` fresh nodes, measuring the restart
/// operation. Returns (checkpoint report, restart report).
pub fn run_restart_sweep(n: usize) -> (OpReport, OpReport) {
    let slm = fig5_slm(n);
    // Nodes 0..n run the job; nodes n..2n receive the restart; node 2n
    // hosts the coordinator.
    let mut w = World::new(2 * n + 1, fig5_params());
    w.launch_job(&slm.job_spec("slm", 2 * n))
        .expect("launch slm");
    w.run_for(SimDuration::from_millis(100));
    w.run_for(SimDuration::from_secs(1));
    let ck = w
        .start_checkpoint("slm", ProtocolMode::Blocking, None)
        .expect("start checkpoint");
    assert!(w.run_until_op(ck, 100_000_000));
    let ck_report = w.op_report(ck).expect("checkpoint report");
    // The original nodes fail; restart everything on the spare nodes.
    w.run_for(SimDuration::from_millis(100));
    for node in 0..n {
        w.crash_node(node);
    }
    let placement: Vec<(String, usize)> = (0..n).map(|r| (format!("rank{r}"), n + r)).collect();
    let rs = w
        .start_restart("slm", ck, &placement, ProtocolMode::Blocking)
        .expect("start restart");
    assert!(w.run_until_op(rs, 100_000_000), "restart completes");
    let rs_report = w.op_report(rs).expect("restart report");
    // Sanity: the job makes progress after restart.
    let before = w.now;
    w.run_for(SimDuration::from_millis(200));
    assert!(w.now > before);
    (ck_report, rs_report)
}

/// The scalability extrapolation (§6's closing claim): overhead vs. local
/// save time as the cluster grows well past the paper's 8 nodes. Uses a
/// smaller per-rank state so wide sweeps stay tractable; the ratio is what
/// matters.
pub fn run_scalability(n: usize) -> OpReport {
    let slm = SlmConfig {
        ranks: n,
        state_bytes: 1024 * 1024,
        iters: u64::MAX / 2,
        compute_ns: 5_000_000,
        halo_bytes: 4 * 1024,
        port: 7100,
        state_step_bytes: 0,
    };
    let params = ClusterParams {
        prune_old_epochs: true,
        ..ClusterParams::default()
    };
    let mut w = World::new(n + 1, params);
    w.launch_job(&slm.job_spec("slm", n)).expect("launch slm");
    w.run_for(SimDuration::from_millis(100));
    let op = w
        .start_checkpoint("slm", ProtocolMode::Blocking, None)
        .expect("start checkpoint");
    assert!(w.run_until_op(op, 200_000_000));
    w.op_report(op).expect("report")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_point_lands_near_one_second() {
        let p = run_fig5(2, 2, SimDuration::from_millis(500));
        assert_eq!(p.reports.len(), 2);
        for lat in p.latencies() {
            let s = lat.as_secs_f64();
            assert!(
                (0.8..1.4).contains(&s),
                "latency {s} s outside Fig 5(a) band"
            );
        }
        for ov in p.overheads() {
            assert!(
                ov < SimDuration::from_millis(2),
                "overhead {ov} should be microseconds-scale"
            );
        }
    }
}
