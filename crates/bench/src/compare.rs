//! Cruz vs. the flush-based baseline (§5.2): message complexity and
//! coordination overhead as the node count grows.

use baseline::FlushSim;
use cluster::{ClusterParams, World};
use cruz::proto::ProtocolMode;
use des::SimDuration;
use workloads::slm::SlmConfig;

/// One node-count point of the comparison.
#[derive(Debug, Clone, Copy)]
pub struct ComparePoint {
    /// Node count.
    pub nodes: usize,
    /// Cruz coordinator messages (sent + received).
    pub cruz_msgs: u64,
    /// Cruz coordination overhead.
    pub cruz_overhead: SimDuration,
    /// Baseline total messages.
    pub flush_msgs: u64,
    /// Baseline coordination overhead.
    pub flush_overhead: SimDuration,
}

/// Runs a Cruz checkpoint of an `n`-rank slm job, then feeds the measured
/// local-save durations into the flush-based model under identical link
/// and CPU parameters.
pub fn run_compare(n: usize, channel_flush_bytes: u64) -> ComparePoint {
    let slm = SlmConfig {
        ranks: n,
        state_bytes: 512 * 1024,
        iters: u64::MAX / 2,
        compute_ns: 2_000_000,
        halo_bytes: 4 * 1024,
        port: 7100,
        state_step_bytes: 0,
    };
    let params = ClusterParams {
        prune_old_epochs: true,
        ..ClusterParams::default()
    };
    let mut w = World::new(n + 1, params.clone());
    w.launch_job(&slm.job_spec("slm", n)).expect("launch slm");
    w.run_for(SimDuration::from_millis(50));
    let op = w
        .start_checkpoint("slm", ProtocolMode::Blocking, None)
        .expect("start checkpoint");
    assert!(w.run_until_op(op, 100_000_000));
    let rep = w.op_report(op).expect("report");
    let local_save: Vec<SimDuration> = {
        let mut v: Vec<(usize, SimDuration)> = rep
            .local_ops
            .iter()
            .map(|&(node, s, e)| (node, e.duration_since(s)))
            .collect();
        v.sort_by_key(|&(n, _)| n);
        v.into_iter().map(|(_, d)| d).collect()
    };
    let flush = FlushSim {
        nodes: n,
        link: params.link,
        ctl_msg_cpu: params.ctl_msg_cpu,
        local_save,
        channel_flush_bytes,
        marker_bytes: 64,
        reconnect_rtt: SimDuration::from_micros(300),
    }
    .run_checkpoint();
    ComparePoint {
        nodes: n,
        cruz_msgs: rep.stats.msgs_sent + rep.stats.msgs_received,
        cruz_overhead: rep.coordination_overhead().expect("overhead"),
        flush_msgs: flush.messages,
        flush_overhead: flush.coordination_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cruz_stays_linear_while_flush_grows_quadratically() {
        let p4 = run_compare(4, 64 * 1024);
        let p8 = run_compare(8, 64 * 1024);
        // Cruz: exactly 4 messages per node.
        assert_eq!(p4.cruz_msgs, 16);
        assert_eq!(p8.cruz_msgs, 32);
        // Baseline: the N(N-1) marker term dominates growth.
        assert!(p8.flush_msgs > p4.flush_msgs * 2);
        // And Cruz's coordination is cheaper at every size.
        assert!(p4.cruz_overhead < p4.flush_overhead);
        assert!(p8.cruz_overhead < p8.flush_overhead);
    }
}
