//! Small statistics helpers for the harness binaries.

use des::SimDuration;

/// Image digests pinned by earlier PRs; optimization passes must not move
/// them by a single byte. Re-checked by `bench_hotpath` and
/// `bench_parallel` against whatever pinned-digest bench output is present
/// in the working directory.
pub const PINNED_IMAGE_DIGESTS: &[(&str, &str)] = &[
    ("BENCH_cow_downtime.json", "0x71635655e9e70ed2"),
    ("BENCH_recovery.json", "0x44d88ab0991c9bd1"),
];

/// Asserts every `image_digest` field in the pinned bench outputs still
/// carries its pinned value. Missing files are skipped with a note (the
/// producing bench simply hasn't run in this checkout), but a present file
/// with a moved digest aborts the run.
pub fn check_pinned_digests() {
    for &(path, want) in PINNED_IMAGE_DIGESTS {
        let Ok(text) = std::fs::read_to_string(path) else {
            println!("# note: {path} not found; digest pin skipped (run that bench first)");
            continue;
        };
        let mut found = 0usize;
        for part in text.split("\"image_digest\": \"").skip(1) {
            let got = part.split('"').next().unwrap_or("");
            assert_eq!(
                got, want,
                "{path}: image digest moved — an optimization pass changed produced bytes"
            );
            found += 1;
        }
        assert!(found > 0, "{path} has no image_digest fields");
        println!("# {path}: {found} image digest(s) still {want}");
    }
}

/// Mean and (population) standard deviation of durations, in seconds.
pub fn mean_std_secs(xs: &[SimDuration]) -> (f64, f64) {
    mean_std(&xs.iter().map(|d| d.as_secs_f64()).collect::<Vec<_>>())
}

/// Mean and (population) standard deviation of durations, in microseconds.
pub fn mean_std_micros(xs: &[SimDuration]) -> (f64, f64) {
    mean_std(&xs.iter().map(|d| d.as_micros_f64()).collect::<Vec<_>>())
}

/// The `p`-th percentile (nearest-rank) of a set of durations.
pub fn percentile_duration(xs: &[SimDuration], p: f64) -> SimDuration {
    if xs.is_empty() {
        return SimDuration::ZERO;
    }
    let mut sorted: Vec<SimDuration> = xs.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let xs: Vec<SimDuration> = (1..=100).map(SimDuration::from_micros).collect();
        assert_eq!(percentile_duration(&xs, 50.0), SimDuration::from_micros(50));
        assert_eq!(percentile_duration(&xs, 99.0), SimDuration::from_micros(99));
        assert_eq!(
            percentile_duration(&xs, 100.0),
            SimDuration::from_micros(100)
        );
        let one = [SimDuration::from_micros(7)];
        assert_eq!(percentile_duration(&one, 50.0), SimDuration::from_micros(7));
        assert_eq!(percentile_duration(&[], 50.0), SimDuration::ZERO);
    }
}
