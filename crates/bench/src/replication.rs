//! Replicated-store robustness bench (EXPERIMENTS.md E19): restore
//! success and MTTR when k−1 of k replica stores are lost mid-checkpoint,
//! and the storage bill replication pays (write amplification vs k).
//!
//! The scenario stacks the replica fault plane on top of the E16 recovery
//! case: a pingpong job takes one clean committed checkpoint, then a
//! seeded [`FaultPlan`] crashes the client's node in the durability window
//! *and* kills k−1 of the k replica stores at the same checkpoint's store
//! traffic — one cold crash, the rest mid-log-append torn writes. The
//! heartbeat plane must detect the node death, scrub/rebuild the lost
//! replicas from the surviving operation log, roll back to the committed
//! epoch, and restart the job — with restored images byte-identical at
//! every k.

use cluster::{
    ClusterParams, CrashFault, FaultPlan, JobSpec, PodSpec, ProtocolPoint, RecoveryOutcome,
    RecoveryReport, ReplicaFault, ReplicaFaultKind, StoreConfig, StoreOpPoint, World,
};
use cruz::digest;
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simnet::addr::{IpAddr, MacAddr};
use workloads::pingpong::PingPongConfig;
use zap::image::MacMode;

/// One replication-factor operating point.
#[derive(Debug, Clone)]
pub struct ReplicationRow {
    /// Replication factor k of the checkpoint store.
    pub k: usize,
    /// Replica stores killed by the plan (always k − 1).
    pub replicas_killed: usize,
    /// The job healed and the rollback epoch's images survived unchanged.
    pub restore_ok: bool,
    /// Crash-to-detection latency of the recovery pass.
    pub detection: SimDuration,
    /// Crash-to-repair time (restart completed, pods running again).
    pub mttr: SimDuration,
    /// Replica stores the pre-rollback scrub rebuilt.
    pub scrubbed: usize,
    /// Total bytes of checkpoint state on the shared filesystem after the
    /// heal: all k store trees plus the operation logs.
    pub stored_bytes: u64,
    /// FNV digest over the rollback epoch's restored pod images, read
    /// through the quorum path — identical across every k.
    pub image_digest: u64,
}

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

fn replicated_params(k: usize, seed: u64) -> ClusterParams {
    let mut p = ClusterParams {
        seed,
        store: StoreConfig {
            replicas: k,
            ..StoreConfig::dedup()
        },
        ..ClusterParams::default()
    };
    p.recovery.enabled = true;
    p
}

/// Digest over every pod image of one committed epoch, in pod order.
fn epoch_digest(w: &World, job: &str, epoch: u64) -> u64 {
    let store = w.store(job);
    let mut h = digest::OFFSET;
    for pod in store.pods_in_epoch(epoch) {
        h = digest::fold(h, pod.as_bytes());
        if let Some(img) = store.get_image(&pod, epoch) {
            h = digest::fold(h, &img);
        }
    }
    h
}

/// Total bytes of checkpoint state on the shared filesystem: every replica
/// store tree (`/ckpt`, `/repN`) plus the operation logs (`/replog`).
pub fn store_footprint(w: &World) -> u64 {
    ["/ckpt", "/rep"]
        .iter()
        .flat_map(|prefix| w.fs.list(prefix))
        .map(|path| w.fs.len_of(&path).unwrap_or(0))
        .sum()
}

/// The k−1 replica faults of the scenario: at the first put of the
/// faulted checkpoint, replica 0 stops cold and every other victim tears
/// its log append partway through. With k = 1 the list is empty — node
/// loss only.
pub fn kill_faults(k: usize) -> Vec<ReplicaFault> {
    (0..k.saturating_sub(1))
        .map(|r| ReplicaFault {
            replica: r,
            point: StoreOpPoint::Put,
            nth: 0,
            kind: if r == 0 {
                ReplicaFaultKind::Crash
            } else {
                ReplicaFaultKind::TornLog(128)
            },
        })
        .collect()
}

/// Runs the crash-plus-replica-loss scenario at replication factor `k` and
/// returns the measured point. Panics (the bench's check) if the job is
/// not healed or committed state is disturbed.
pub fn run_replication_point(k: usize, seed: u64) -> ReplicationRow {
    let mut w = World::new(6, replicated_params(k, seed));
    w.launch_job(&pingpong_spec(4000)).expect("launch");
    w.run_for(SimDuration::from_millis(2));

    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("baseline checkpoint");
    assert!(w.run_until_op(op1, 50_000_000), "baseline ckpt stalls");
    assert!(w.store("pp").is_committed(op1));
    let digest_before = epoch_digest(&w, "pp", op1);

    let mut plan = FaultPlan::none(seed);
    plan.crashes.push(CrashFault {
        node: 1,
        point: ProtocolPoint::LocalDoneToDurable,
        nth: 0,
    });
    plan.replicas = kill_faults(k);
    let replicas_killed = plan.replicas.len();
    // Round-trip through the wire form: the CRZF v2 replica section must
    // drive the run, not just the in-memory value.
    let plan = FaultPlan::decode(&plan.encode()).expect("plan round-trip");
    w.install_fault_plan(&plan);

    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("faulted checkpoint");
    let healed = w.run_until_pred(200_000_000, |w| {
        w.recovery_reports()
            .iter()
            .any(|r| r.outcome == RecoveryOutcome::Recovered)
    });
    assert!(healed, "job not healed at k = {k}");

    let r: RecoveryReport = w
        .recovery_reports()
        .iter()
        .find(|r| r.outcome == RecoveryOutcome::Recovered)
        .expect("recovered report")
        .clone();
    assert_eq!(r.rollback_epoch, Some(op1), "rolled back past the commit");
    assert!(
        !w.store("pp").is_committed(op2),
        "torn epoch became visible"
    );
    let digest_after = epoch_digest(&w, "pp", op1);
    assert_eq!(digest_before, digest_after, "committed images disturbed");
    assert!(w.store("pp").orphan_chunks().is_empty(), "orphans leaked");
    if k > 1 {
        let store = w.store("pp");
        let d0 = store.tree_digest(0);
        assert!(
            (1..k).all(|rep| store.tree_digest(rep) == d0),
            "replicas diverged after the heal at k = {k}"
        );
    }

    ReplicationRow {
        k,
        replicas_killed,
        restore_ok: true,
        detection: r.detection_latency(),
        mttr: r.mttr().expect("recovered pass has an MTTR"),
        scrubbed: r.scrubbed_replicas.len(),
        stored_bytes: store_footprint(&w),
        image_digest: digest_after,
    }
}

/// Sweeps the replication factor (same seed each point so only k changes).
pub fn run_replication_sweep(ks: &[usize], seed: u64) -> Vec<ReplicationRow> {
    ks.iter().map(|&k| run_replication_point(k, seed)).collect()
}

/// Replays one pinned replica-kill chaos scenario twice at k = 3 and
/// returns the two trace fingerprints `(digest, events)` — identical when
/// the replica fault plane is deterministic. The random plan is augmented
/// with seeded replica faults so log tears and store crashes mix with the
/// node/disk/frame chaos.
pub fn replica_chaos_fingerprints(world_seed: u64, plan_seed: u64) -> ((u64, u64), (u64, u64)) {
    let run = || {
        let mut w = World::new(6, replicated_params(3, world_seed));
        w.launch_job(&pingpong_spec(500)).expect("launch");
        w.run_for(SimDuration::from_millis(2));
        let op = w
            .start_checkpoint("pp", ProtocolMode::Blocking, None)
            .expect("baseline checkpoint");
        assert!(w.run_until_op(op, 50_000_000));
        let mut plan = FaultPlan::random(plan_seed, 2);
        for i in 0..2usize {
            let s = plan_seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
            plan.replicas.push(ReplicaFault {
                replica: (s % 3) as usize,
                point: StoreOpPoint::ALL[(s / 3 % 4) as usize],
                nth: (s / 16 % 3) as u32,
                kind: match s / 64 % 3 {
                    0 => ReplicaFaultKind::Crash,
                    1 => ReplicaFaultKind::TornLog((s % 200) as u8 + 20),
                    _ => ReplicaFaultKind::TornChunk((s % 200) as u8 + 20),
                },
            });
        }
        let plan = FaultPlan::decode(&plan.encode()).expect("plan round-trip");
        w.install_fault_plan(&plan);
        w.schedule_periodic_checkpoints(
            "pp",
            SimDuration::from_millis(4),
            ProtocolMode::Blocking,
            false,
        )
        .expect("periodic checkpoints");
        w.run_for(SimDuration::from_millis(120));
        assert!(
            w.run_until_pred(50_000_000, |w| !w.job_busy("pp")),
            "world failed to quiesce under replica plan seed {plan_seed}"
        );
        // Whatever the chaos did, the committed prefix must still be
        // readable through the quorum path.
        let store = w.store("pp");
        if let Some(e) = store.latest_committed_epoch() {
            for pod in store.pods_in_epoch(e) {
                assert!(
                    store.get_image(&pod, e).is_some(),
                    "committed epoch {e} unreadable under replica chaos"
                );
            }
        }
        (w.trace_digest(), w.events_processed())
    };
    (run(), run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dead_replicas_still_restore_byte_identically() {
        let rows = run_replication_sweep(&[1, 3], 7);
        assert!(rows.iter().all(|r| r.restore_ok));
        assert_eq!(rows[0].image_digest, rows[1].image_digest);
        assert_eq!(rows[1].replicas_killed, 2);
        assert!(rows[1].scrubbed >= 2, "both dead replicas rebuilt");
        // k store trees plus k op logs. The recovery pass compacts each
        // log to the minimal self-contained form (≈ one tree's bytes), so
        // amplification sits at ≈2k — not the 2.4k+ an append-only log
        // retaining the discarded epoch's blobs would show.
        let amp = rows[1].stored_bytes as f64 / rows[0].stored_bytes as f64;
        assert!((5.8..6.4).contains(&amp), "write amplification {amp}");
    }

    #[test]
    fn pinned_replica_chaos_replays_identically() {
        let (a, b) = replica_chaos_fingerprints(1, 7);
        assert_eq!(a, b);
    }
}
