//! The copy-on-write capture ablation: per-epoch pod freeze duration,
//! end-to-end epoch latency and extra pre-image copy traffic of the `slm`
//! ring under the three capture/write-out disciplines —
//!
//! * `stw` — stop-the-world capture, freeze covers capture *and* the disk
//!   write (the paper's measured Fig. 5(a) behavior);
//! * `stw+writeback` — stop-the-world capture with the §5.2 durability
//!   split: freeze covers capture only, the write completes in the
//!   background and gates the commit;
//! * `cow` — [`cluster::CkptCaptureMode::Cow`]: freeze covers only arming
//!   the memory snapshot plus the non-memory skeleton; pages drain in the
//!   background while the resumed guests race the snapshot.
//!
//! The paper names COW checkpointing as the key future optimization for
//! exactly this downtime (§6); the ablation quantifies each step of the
//! ladder. Restored images must be byte-identical across all three
//! variants — the capture discipline is invisible in the stored epoch —
//! so each row carries a first-epoch digest the binary and tests check.

use cluster::world::CkptOptions;
use cluster::{CkptCaptureMode, ClusterParams, World};
use cruz::digest;
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simnet::tcp::TcpConfig;

use crate::fig5::{fig5_params, fig5_slm};
use crate::util::percentile_duration;

/// One measured capture-ablation row.
#[derive(Debug, Clone)]
pub struct CowRow {
    /// Variant label (`stw`, `stw+writeback`, `cow`).
    pub label: String,
    /// Per-node pod freeze durations, one sample per (node, epoch).
    pub freezes: Vec<SimDuration>,
    /// End-to-end checkpoint latency per epoch (start to commit point).
    pub epoch_latencies: Vec<SimDuration>,
    /// Total pre-image bytes copied because guest writes raced the drain
    /// (zero for the stop-the-world variants).
    pub extra_copy_bytes: u64,
    /// FNV-1a digest over the first epoch's reassembled image bytes —
    /// equal across variants iff capture is semantically invisible.
    pub image_digest: u64,
}

impl CowRow {
    /// Median per-epoch freeze.
    pub fn p50_freeze(&self) -> SimDuration {
        percentile_duration(&self.freezes, 50.0)
    }

    /// Tail per-epoch freeze.
    pub fn p99_freeze(&self) -> SimDuration {
        percentile_duration(&self.freezes, 99.0)
    }

    /// Mean end-to-end epoch latency.
    pub fn mean_epoch_latency(&self) -> SimDuration {
        if self.epoch_latencies.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(
            self.epoch_latencies
                .iter()
                .map(|d| d.as_nanos())
                .sum::<u64>()
                / self.epoch_latencies.len() as u64,
        )
    }
}

/// The three variants the ablation sweeps, coarsest freeze first. All run
/// the Fig. 4 optimized protocol so the capture discipline is the only
/// difference.
pub fn variants() -> Vec<(&'static str, CkptOptions)> {
    let base = CkptOptions {
        mode: ProtocolMode::Optimized,
        ..CkptOptions::default()
    };
    vec![
        ("stw", base),
        ("stw+writeback", CkptOptions { cow: true, ..base }),
        (
            "cow",
            CkptOptions {
                capture: Some(CkptCaptureMode::Cow),
                ..base
            },
        ),
    ]
}

/// Cluster parameters for the ablation: the Fig. 5 disk/state scaling plus
/// a snappy TCP retransmission timer, so ranks whose in-flight halo frames
/// were dropped by the freeze recover *within* the drain window — the
/// regime where COW actually pays its pre-image copies.
pub fn cow_params() -> ClusterParams {
    ClusterParams {
        tcp: TcpConfig {
            initial_rto: SimDuration::from_millis(2),
            min_rto: SimDuration::from_millis(1),
            ..TcpConfig::default()
        },
        ..fig5_params()
    }
}

/// Runs one variant: an `ranks`-rank slm ring with `state_bytes` of
/// resident state per rank, checkpointed `checkpoints` times ~100 ms of
/// execution apart. Returns the freeze/latency distributions and the
/// first-epoch image digest.
pub fn run_cow_variant(
    label: &str,
    opts: CkptOptions,
    ranks: usize,
    state_bytes: u64,
    checkpoints: usize,
) -> CowRow {
    let mut slm = fig5_slm(ranks);
    slm.state_bytes = state_bytes;
    // 1 ms timesteps: several writes land inside a multi-ms drain window.
    slm.compute_ns = 1_000_000;
    let mut w = World::new(ranks + 1, cow_params());
    w.launch_job(&slm.job_spec("slm", ranks))
        .expect("launch slm");
    w.run_for(SimDuration::from_millis(100));

    let mut freezes = Vec::new();
    let mut epoch_latencies = Vec::new();
    let mut extra_copy_bytes = 0u64;
    let mut digest = digest::OFFSET;
    for i in 0..checkpoints {
        w.run_for(SimDuration::from_millis(100));
        let started = w.now;
        let op = w
            .start_checkpoint_with("slm", opts)
            .expect("start checkpoint");
        assert!(
            w.run_until_op(op, 100_000_000),
            "{label}: checkpoint completes"
        );
        let report = w.op_report(op).expect("checkpoint report");
        assert!(
            report.complete && !report.aborted,
            "{label}: epoch committed"
        );
        freezes.extend(report.blocked_durations().iter().map(|&(_, d)| d));
        // Start-to-commit, durability included — `checkpoint_latency()`
        // only spans through global Done, which COW moves to the arm
        // instant and so no longer bounds the epoch.
        epoch_latencies.push(w.now.duration_since(started));
        extra_copy_bytes += report.cow_copied_bytes.iter().map(|&(_, b)| b).sum::<u64>();
        if i == 0 {
            // Only the first capture happens at an identical sim time in
            // every variant (afterwards resume times diverge with the
            // freeze schedule), so it is the byte-equivalence witness.
            let store = w.store("slm");
            for pod in store.pods_in_epoch(op) {
                let bytes = store
                    .get_image(&pod, op)
                    .expect("committed image reconstructs");
                digest = digest::fold(digest, pod.as_bytes());
                digest = digest::fold(digest, &bytes);
            }
        }
    }
    CowRow {
        label: label.to_owned(),
        freezes,
        epoch_latencies,
        extra_copy_bytes,
        image_digest: digest,
    }
}

/// Runs the full capture ablation sweep.
pub fn run_cow_sweep(ranks: usize, state_bytes: u64, checkpoints: usize) -> Vec<CowRow> {
    variants()
        .into_iter()
        .map(|(label, opts)| run_cow_variant(label, opts, ranks, state_bytes, checkpoints))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_cuts_p50_freeze_five_fold_with_identical_images() {
        // The acceptance criterion at the Fig. 5 image size: 8 MiB of
        // per-rank state, COW p50 freeze ≥5× below stop-the-world.
        let rows = run_cow_sweep(2, 8 * 1024 * 1024, 2);
        let stw = &rows[0];
        let cow = &rows[2];
        assert!(
            cow.p50_freeze().as_micros_f64() * 5.0 < stw.p50_freeze().as_micros_f64(),
            "cow p50 {:?} not ≥5× below stop-the-world {:?}",
            cow.p50_freeze(),
            stw.p50_freeze()
        );
        // The §5.2 writeback split sits strictly between the two.
        let wb = &rows[1];
        assert!(wb.p50_freeze() < stw.p50_freeze());
        assert!(cow.p50_freeze() <= wb.p50_freeze());
        // Only COW pays pre-image copies, and it really does pay them.
        assert_eq!(stw.extra_copy_bytes, 0);
        assert_eq!(wb.extra_copy_bytes, 0);
        assert!(cow.extra_copy_bytes > 0, "drain never raced guest writes");
        // Capture discipline is invisible in the stored epoch.
        assert_eq!(stw.image_digest, wb.image_digest);
        assert_eq!(stw.image_digest, cow.image_digest);
    }
}
