//! The dedup-store ablation: bytes written to disk per checkpoint epoch,
//! checkpoint latency and restart latency of the `slm` ring under the
//! three store representations — plain monolithic images, content-addressed
//! dedup, and dedup with per-chunk compression.
//!
//! The experiment attacks the dominant cost in the paper's own evaluation:
//! Fig. 5(a) shows checkpoint latency "dominated by the time to write this
//! state to disk". At steady state slm dirties only a rotating window of
//! its resident state between checkpoints, so a content-addressed store
//! writes a small fraction of the full image — and the per-chunk codec
//! shrinks even those novel pages, since slm's state is periodic.
//!
//! Restored images must be byte-equivalent across every variant (the store
//! representation is invisible above [`cruz::store::CheckpointStore`]);
//! each row carries a digest of the restored epoch's images so the binary
//! and tests can check it.

use cluster::{ClusterParams, StoreConfig, World};
use cruz::digest;
use cruz::proto::ProtocolMode;
use des::{SimDuration, SimTime};

use crate::fig5::{fig5_params, fig5_slm};

/// One measured store-ablation row.
#[derive(Debug, Clone)]
pub struct DedupRow {
    /// Variant label (`plain`, `dedup`, `dedup+lz`).
    pub label: String,
    /// Disk bytes written by the first (cold, all-novel) epoch.
    pub first_epoch_bytes: u64,
    /// Mean disk bytes written per steady-state epoch.
    pub steady_epoch_bytes: u64,
    /// First-epoch checkpoint latency (start to commit point).
    pub first_latency: SimDuration,
    /// Mean steady-state checkpoint latency.
    pub steady_latency: SimDuration,
    /// Disk bytes read to restart from the final epoch.
    pub restart_bytes: u64,
    /// Restart latency (start to all agents restored).
    pub restart_latency: SimDuration,
    /// FNV-1a digest over the first epoch's reassembled image bytes —
    /// equal across variants iff the representations are byte-equivalent.
    pub image_digest: u64,
    /// Whether the restarted job kept making progress.
    pub progressed: bool,
}

/// The three variants the ablation sweeps.
pub fn variants() -> Vec<(&'static str, StoreConfig)> {
    vec![
        ("plain", StoreConfig::default()),
        ("dedup", StoreConfig::dedup()),
        ("dedup+lz", StoreConfig::dedup_compress()),
    ]
}

/// Runs one variant: an `ranks`-rank slm ring with `state_bytes` of
/// resident state per rank, checkpointed `checkpoints` times ~100 ms of
/// execution apart, then crashed and restarted from the final epoch onto
/// spare nodes.
///
/// The 100 ms spacing is the steady-state knob: slm dirties 16 pages per
/// ~5 ms timestep, so successive epochs share most of their pages — the
/// regime content addressing exploits.
pub fn run_dedup_variant(
    label: &str,
    store: StoreConfig,
    ranks: usize,
    state_bytes: u64,
    checkpoints: usize,
) -> DedupRow {
    assert!(checkpoints >= 2, "need a cold epoch and a steady epoch");
    let mut slm = fig5_slm(ranks);
    slm.state_bytes = state_bytes;
    let params = ClusterParams {
        store,
        ..fig5_params()
    };
    // Nodes 0..ranks run the job, ranks..2*ranks receive the restart,
    // node 2*ranks hosts the coordinator.
    let mut w = World::new(2 * ranks + 1, params);
    w.launch_job(&slm.job_spec("slm", 2 * ranks))
        .expect("launch slm");
    w.run_for(SimDuration::from_millis(100));

    let written = |w: &World| -> u64 { (0..ranks).map(|n| w.kernel(n).disk.bytes_written()).sum() };
    let mut epoch_bytes = Vec::with_capacity(checkpoints);
    let mut latencies = Vec::with_capacity(checkpoints);
    let mut last_epoch = 0;
    let mut digest = digest::OFFSET;
    for i in 0..checkpoints {
        w.run_for(SimDuration::from_millis(100));
        let before = written(&w);
        let op = w
            .start_checkpoint("slm", ProtocolMode::Blocking, None)
            .expect("start checkpoint");
        assert!(w.run_until_op(op, 100_000_000), "checkpoint completes");
        epoch_bytes.push(written(&w) - before);
        let report = w.op_report(op).expect("checkpoint report");
        latencies.push(
            report
                .stats
                .checkpoint_latency()
                .unwrap_or(SimDuration::ZERO),
        );
        last_epoch = op;
        if i == 0 {
            // Digest the first epoch's images as a restart would reassemble
            // them. Only the first capture happens at an identical sim time
            // in every variant (afterwards resume times diverge with the
            // disk schedule), so it is the byte-equivalence witness.
            let store_handle = w.store("slm");
            for pod in store_handle.pods_in_epoch(op) {
                let bytes = store_handle
                    .get_image(&pod, op)
                    .expect("committed image reconstructs");
                digest = digest::fold(digest, pod.as_bytes());
                digest = digest::fold(digest, &bytes);
            }
        }
    }

    // Crash the original nodes and restart on the spares.
    w.run_for(SimDuration::from_millis(50));
    for node in 0..ranks {
        w.crash_node(node);
    }
    let read_before: u64 = (ranks..2 * ranks)
        .map(|n| w.kernel(n).disk.bytes_read())
        .sum();
    let placement: Vec<(String, usize)> = (0..ranks)
        .map(|r| (format!("rank{r}"), ranks + r))
        .collect();
    let rs = w
        .start_restart("slm", last_epoch, &placement, ProtocolMode::Blocking)
        .expect("start restart");
    assert!(w.run_until_op(rs, 100_000_000), "restart completes");
    let restart_bytes = (ranks..2 * ranks)
        .map(|n| w.kernel(n).disk.bytes_read())
        .sum::<u64>()
        - read_before;
    let rs_report = w.op_report(rs).expect("restart report");

    // Progress check: the ring must keep iterating after the restart.
    let before: SimTime = w.now;
    w.run_for(SimDuration::from_millis(200));
    let progressed = w.now > before && !w.job_finished("slm");

    let steady = &epoch_bytes[1..];
    let steady_lat = &latencies[1..];
    DedupRow {
        label: label.to_owned(),
        first_epoch_bytes: epoch_bytes[0],
        steady_epoch_bytes: steady.iter().sum::<u64>() / steady.len() as u64,
        first_latency: latencies[0],
        steady_latency: SimDuration::from_nanos(
            steady_lat.iter().map(|d| d.as_nanos()).sum::<u64>() / steady_lat.len() as u64,
        ),
        restart_bytes,
        restart_latency: rs_report
            .stats
            .checkpoint_latency()
            .unwrap_or(SimDuration::ZERO),
        image_digest: digest,
        progressed,
    }
}

/// Runs the full ablation sweep.
pub fn run_dedup_sweep(ranks: usize, state_bytes: u64, checkpoints: usize) -> Vec<DedupRow> {
    variants()
        .into_iter()
        .map(|(label, store)| run_dedup_variant(label, store, ranks, state_bytes, checkpoints))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_with_compression_beats_plain_five_fold() {
        // Small state keeps the test fast; the ratio is what matters.
        let rows = run_dedup_sweep(2, 1024 * 1024, 3);
        let plain = &rows[0];
        let lz = &rows[2];
        assert!(
            lz.steady_epoch_bytes * 5 < plain.steady_epoch_bytes,
            "dedup+lz steady bytes {} not 5x below plain {}",
            lz.steady_epoch_bytes,
            plain.steady_epoch_bytes
        );
        assert!(
            lz.steady_latency < plain.steady_latency,
            "dedup+lz latency {:?} not below plain {:?}",
            lz.steady_latency,
            plain.steady_latency
        );
        // Restart must be representation-transparent: identical images.
        assert_eq!(plain.image_digest, rows[1].image_digest);
        assert_eq!(plain.image_digest, lz.image_digest);
        for row in &rows {
            assert!(row.progressed, "{} restart did not progress", row.label);
        }
    }
}
