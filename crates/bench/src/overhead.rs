//! The runtime-overhead experiment (§6): Cruz's virtualization layer costs
//! less than 0.5 % because it only virtualizes identifiers on the syscall
//! path.

use des::SimTime;
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use simnet::NetStack;
use simos::disk::{Disk, DiskParams};
use simos::fs::NetFs;
use simos::kernel::{Kernel, KernelParams};
use simos::proc::ProcState;
use workloads::ComputeConfig;
use zap::image::MacMode;
use zap::{PodConfig, Zap};

/// The result of one overhead comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Completion time on the bare kernel (no interposition), seconds.
    pub bare_secs: f64,
    /// Completion time inside a pod (full interposition), seconds.
    pub pod_secs: f64,
}

impl OverheadReport {
    /// Relative slowdown of the virtualized run, in percent.
    pub fn overhead_percent(&self) -> f64 {
        (self.pod_secs - self.bare_secs) / self.bare_secs * 100.0
    }
}

fn fresh_kernel() -> Kernel {
    let net = NetStack::new(
        MacAddr::from_index(1),
        IpAddr::from_octets([10, 0, 0, 1]),
        24,
        TcpConfig::default(),
    );
    Kernel::new(
        net,
        NetFs::new(),
        Disk::new(DiskParams::default()),
        KernelParams::default(),
    )
}

fn run_to_exit(k: &mut Kernel, pid: simos::Pid) -> SimTime {
    let mut now = SimTime::ZERO;
    for _ in 0..200_000_000u64 {
        if matches!(k.process(pid).map(|p| &p.state), Some(ProcState::Zombie(_))) {
            return now;
        }
        if k.has_runnable() {
            now += k.run_slice(now).elapsed;
            let _ = k.take_frames();
        } else if let Some(t) = k.next_timer() {
            now = now.max(t);
            k.on_tick(now);
        } else {
            break;
        }
    }
    now
}

/// Runs the compute microbenchmark bare and inside a pod, returning the
/// two completion times.
pub fn run_overhead(cfg: ComputeConfig) -> OverheadReport {
    let prog = cfg.program();
    // Bare: no hook installed at all.
    let mut bare = fresh_kernel();
    let pid = bare.spawn(&prog).expect("spawn bare");
    let bare_end = run_to_exit(&mut bare, pid);

    // Pod: Zap installed, process confined to a pod.
    let mut podk = fresh_kernel();
    let z = Zap::new();
    z.install(&mut podk);
    let pod = z
        .create_pod(
            &mut podk,
            PodConfig {
                name: "bench".into(),
                ip: IpAddr::from_octets([10, 0, 0, 50]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(50)),
            },
        )
        .expect("create pod");
    let vpid = z.spawn_in_pod(&mut podk, pod, &prog).expect("spawn in pod");
    let real = z.real_pid(pod, vpid).expect("real pid");
    let pod_end = run_to_exit(&mut podk, real);

    OverheadReport {
        bare_secs: bare_end.as_secs_f64(),
        pod_secs: pod_end.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtualization_overhead_is_small_for_compute_bound_work() {
        // Tens of thousands of instructions per syscall, like the paper's
        // compute-bound applications.
        let rep = run_overhead(ComputeConfig {
            outer: 500,
            inner: 10_000,
        });
        let pct = rep.overhead_percent();
        assert!(pct > 0.0, "interposition is not free");
        assert!(pct < 0.5, "paper claims < 0.5 %, measured {pct:.3} %");
    }

    #[test]
    fn syscall_heavy_work_pays_more() {
        let light = run_overhead(ComputeConfig {
            outer: 500,
            inner: 2_000,
        });
        let heavy = run_overhead(ComputeConfig {
            outer: 2_000,
            inner: 50,
        });
        assert!(heavy.overhead_percent() > light.overhead_percent());
    }
}
