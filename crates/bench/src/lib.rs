//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§6), plus the ablations DESIGN.md calls out.
//!
//! Each module builds the workload, drives the simulated cluster, and
//! returns the measured series; the `src/bin/*` binaries print them in the
//! shape the paper reports. `EXPERIMENTS.md` records paper-vs-measured for
//! every experiment.

#![warn(missing_docs)]

pub mod ablation;
pub mod compare;
pub mod cow;
pub mod dedup;
pub mod fig5;
pub mod fig6;
pub mod hotpath;
pub mod overhead;
pub mod parallel;
pub mod recovery;
pub mod replication;
pub mod util;

pub use cow::{run_cow_sweep, run_cow_variant, CowRow};
pub use dedup::{run_dedup_sweep, run_dedup_variant, DedupRow};
pub use fig5::{fig5_params, run_fig5, run_restart_sweep, Fig5Point};
pub use fig6::{run_fig6, Fig6Sample};
pub use recovery::{replay_fingerprints, run_recovery_point, run_recovery_sweep, RecoveryRow};
pub use replication::{
    replica_chaos_fingerprints, run_replication_point, run_replication_sweep, ReplicationRow,
};
