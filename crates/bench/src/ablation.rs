//! The Fig. 4 ablation: blocking vs. optimized coordination, measured as
//! per-node blocked time when local save durations are heterogeneous.

use cluster::{ClusterParams, World};
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simos::disk::DiskParams;
use workloads::slm::SlmConfig;

/// One protocol's measured blocking behaviour.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Protocol variant.
    pub mode: ProtocolMode,
    /// (node, blocked duration) pairs, sorted by node.
    pub blocked: Vec<(usize, SimDuration)>,
    /// Total checkpoint latency.
    pub latency: SimDuration,
}

/// Runs one checkpoint of a heterogeneous-state slm job under `mode` and
/// reports each node's blocked window.
pub fn run_ablation(mode: ProtocolMode, ranks: usize) -> AblationPoint {
    run_ablation_opts(mode, ranks, false)
}

/// Like [`run_ablation`], with the §5.2 COW optimization selectable.
pub fn run_ablation_opts(mode: ProtocolMode, ranks: usize, cow: bool) -> AblationPoint {
    let slm = SlmConfig {
        ranks,
        state_bytes: 1024 * 1024,
        // Rank r saves 1 MiB + r * 4 MiB: later ranks save much longer.
        state_step_bytes: 4 * 1024 * 1024,
        iters: u64::MAX / 2,
        compute_ns: 2_000_000,
        halo_bytes: 4 * 1024,
        port: 7100,
    };
    let params = ClusterParams {
        // A slower disk exaggerates save-time differences.
        disk: DiskParams {
            bandwidth_bps: 32 * 1024 * 1024,
            op_overhead: SimDuration::from_millis(5),
        },
        prune_old_epochs: true,
        ..ClusterParams::default()
    };
    let mut w = World::new(ranks + 1, params);
    w.launch_job(&slm.job_spec("slm", ranks)).expect("launch");
    w.run_for(SimDuration::from_millis(50));
    let op = w
        .start_checkpoint_opts("slm", mode, cow, None)
        .expect("start");
    assert!(w.run_until_op(op, 100_000_000));
    let rep = w.op_report(op).expect("report");
    let mut blocked = rep.blocked_durations();
    blocked.sort_by_key(|&(n, _)| n);
    AblationPoint {
        mode,
        blocked,
        latency: rep.stats.checkpoint_latency().expect("latency"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_shrinks_every_blackout_to_capture_time() {
        let full = run_ablation_opts(ProtocolMode::Optimized, 3, false);
        let cow = run_ablation_opts(ProtocolMode::Optimized, 3, true);
        let full_max = full.blocked.iter().map(|&(_, d)| d).max().unwrap();
        let cow_max = cow.blocked.iter().map(|&(_, d)| d).max().unwrap();
        assert!(
            cow_max.as_millis_f64() < full_max.as_millis_f64() * 0.25,
            "cow blackout {cow_max} vs full {full_max}"
        );
    }

    #[test]
    fn optimized_mode_releases_fast_savers_early() {
        let blocking = run_ablation(ProtocolMode::Blocking, 4);
        let optimized = run_ablation(ProtocolMode::Optimized, 4);
        // Node 0 (smallest state) is blocked far less under Fig. 4.
        let b0 = blocking.blocked[0].1;
        let o0 = optimized.blocked[0].1;
        assert!(
            o0.as_millis_f64() < b0.as_millis_f64() * 0.5,
            "optimized node0 blocked {o0} vs blocking {b0}"
        );
        // The slowest node is blocked roughly the same in both modes.
        let b_last = blocking.blocked.last().unwrap().1;
        let o_last = optimized.blocked.last().unwrap().1;
        let ratio = o_last.as_millis_f64() / b_last.as_millis_f64();
        assert!((0.8..1.2).contains(&ratio), "slowest node ratio {ratio}");
    }
}
