//! Figure 6: the received-rate timeline of a maximum-rate TCP stream across
//! a coordinated checkpoint — rate collapses while communication is
//! disabled, a short pulse drains the receive buffer, and the sender
//! resumes after TCP's retransmission backoff.

use cluster::{ClusterParams, JobSpec, PodSpec, World};
use cruz::proto::ProtocolMode;
use des::{SimDuration, SimTime};
use simnet::addr::{IpAddr, MacAddr};
use workloads::streaming::{StreamingConfig, RECV_COUNTER_ADDR};
use zap::image::MacMode;

/// One sample of the rate timeline.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Sample {
    /// Time relative to checkpoint start, in milliseconds.
    pub t_ms: f64,
    /// Received rate over the preceding `window_ms`, in Mb/s.
    pub rate_mbps: f64,
}

/// The result of a Fig. 6 run.
#[derive(Debug, Clone)]
pub struct Fig6Run {
    /// The sampled timeline.
    pub samples: Vec<Fig6Sample>,
    /// How long the checkpoint kept communication disabled (the local save
    /// window), in milliseconds.
    pub checkpoint_ms: f64,
    /// First post-checkpoint time the stream was back at ≥50 % of its
    /// pre-checkpoint rate, in ms relative to checkpoint start.
    pub recovery_ms: Option<f64>,
}

/// Builds the streaming job used by Fig. 6.
pub fn streaming_job(state_bytes: u64) -> (JobSpec, StreamingConfig) {
    let cfg = StreamingConfig {
        receiver_ip: IpAddr::from_octets([10, 0, 1, 2]),
        port: 7200,
        total_bytes: None,
        state_bytes,
    };
    let spec = JobSpec {
        name: "stream".into(),
        coordinator_node: 2,
        pods: vec![
            PodSpec {
                name: "sender".into(),
                ip: IpAddr::from_octets([10, 0, 1, 1]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2101)),
                node: 0,
                programs: vec![cfg.sender_program()],
            },
            PodSpec {
                name: "receiver".into(),
                ip: cfg.receiver_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2102)),
                node: 1,
                programs: vec![cfg.receiver_program()],
            },
        ],
    };
    (spec, cfg)
}

fn counter(w: &World) -> u64 {
    w.peek_guest("stream", "receiver", 1, RECV_COUNTER_ADDR, 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .unwrap_or(0)
}

/// Runs the Fig. 6 experiment: stream at maximum rate, checkpoint at t=0,
/// sample the received rate every `step_ms` over a sliding `window_ms`.
///
/// `state_bytes` sets the checkpoint's local-save window (the paper's was
/// ≈120 ms).
pub fn run_fig6(
    state_bytes: u64,
    pre_ms: u64,
    post_ms: u64,
    step_ms: u64,
    window_ms: u64,
) -> Fig6Run {
    let (spec, _) = streaming_job(state_bytes);
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&spec).expect("launch streaming job");
    // Warm the stream up to steady state.
    w.run_for(SimDuration::from_millis(300));

    // Record (t, cumulative bytes) while stepping; checkpoint fires at t=0.
    let t_ckpt = w.now + SimDuration::from_millis(pre_ms);
    let mut history: Vec<(SimTime, u64)> = Vec::new();
    let mut op = None;
    let t_end = t_ckpt + SimDuration::from_millis(post_ms);
    let mut t = w.now;
    while t <= t_end {
        if op.is_none() && t >= t_ckpt {
            op = Some(
                w.start_checkpoint("stream", ProtocolMode::Blocking, None)
                    .expect("start checkpoint"),
            );
        }
        w.run_until(t);
        history.push((t, counter(&w)));
        t += SimDuration::from_millis(step_ms);
    }
    let op = op.expect("checkpoint fired");
    let report = w.op_report(op).expect("checkpoint report");
    let checkpoint_ms = report
        .local_ops
        .iter()
        .map(|(_, s, e)| e.duration_since(*s).as_millis_f64())
        .fold(0.0, f64::max);

    // Sliding-window rates relative to the checkpoint instant.
    let window = SimDuration::from_millis(window_ms);
    let mut samples = Vec::new();
    for (i, &(at, bytes)) in history.iter().enumerate() {
        let from = at.saturating_duration_since(SimTime::ZERO);
        let _ = from;
        // Find the sample one window earlier.
        let start = if at.as_nanos() >= window.as_nanos() {
            at - window
        } else {
            SimTime::ZERO
        };
        let earlier = history[..=i]
            .iter()
            .rev()
            .find(|(ht, _)| *ht <= start)
            .copied()
            .unwrap_or(history[0]);
        let dt = at.duration_since(earlier.0).as_secs_f64();
        let db = bytes.saturating_sub(earlier.1) as f64;
        let rate = if dt > 0.0 { db * 8.0 / dt / 1e6 } else { 0.0 };
        let t_ms = (at.as_nanos() as f64 - t_ckpt.as_nanos() as f64) / 1e6;
        samples.push(Fig6Sample {
            t_ms,
            rate_mbps: rate,
        });
    }

    // Pre-checkpoint steady rate and recovery point.
    let pre_rate: f64 = {
        let pre: Vec<f64> = samples
            .iter()
            .filter(|s| s.t_ms < 0.0)
            .map(|s| s.rate_mbps)
            .collect();
        pre.iter().sum::<f64>() / pre.len().max(1) as f64
    };
    let recovery_ms = samples
        .iter()
        .filter(|s| s.t_ms > checkpoint_ms)
        .find(|s| s.rate_mbps >= pre_rate * 0.5)
        .map(|s| s.t_ms);

    Fig6Run {
        samples,
        checkpoint_ms,
        recovery_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_collapses_and_recovers() {
        let run = run_fig6(2 * 1024 * 1024, 40, 400, 2, 10);
        // Steady pre-checkpoint rate is most of a gigabit.
        let pre: Vec<f64> = run
            .samples
            .iter()
            .filter(|s| s.t_ms < -5.0)
            .map(|s| s.rate_mbps)
            .collect();
        let pre_avg = pre.iter().sum::<f64>() / pre.len() as f64;
        assert!(pre_avg > 500.0, "steady rate {pre_avg} Mb/s");
        // During the checkpoint the rate collapses.
        let mid: Vec<f64> = run
            .samples
            .iter()
            .filter(|s| s.t_ms > 12.0 && s.t_ms < run.checkpoint_ms - 2.0)
            .map(|s| s.rate_mbps)
            .collect();
        assert!(!mid.is_empty());
        assert!(
            mid.iter().cloned().fold(f64::MAX, f64::min) < pre_avg * 0.2,
            "rate must collapse during the blackout"
        );
        // And it recovers after TCP's backoff.
        let rec = run.recovery_ms.expect("stream recovers");
        assert!(
            rec > run.checkpoint_ms && rec < 600.0,
            "recovery at {rec} ms (checkpoint {} ms)",
            run.checkpoint_ms
        );
    }
}
