//! Criterion benchmarks: wall-clock cost of the simulation substrate and of
//! regenerating each paper experiment at reduced scale. These guard against
//! performance regressions in the simulator itself; the `src/bin/*`
//! binaries print the paper-shaped numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::fig5::run_fig5;
use bench::fig6::streaming_job;
use cluster::{ClusterParams, World};
use cruz::proto::ProtocolMode;
use des::SimDuration;
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use workloads::slm::SlmConfig;
use zap::image::{MacMode, PodImage};

/// Image codec throughput (encode + decode of a realistic pod image).
fn bench_image_codec(c: &mut Criterion) {
    // Build a real image by checkpointing a pod with 1 MiB of state.
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 1024 * 1024,
        iters: u64::MAX / 2,
        compute_ns: 1_000_000,
        halo_bytes: 1024,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&slm.job_spec("slm", 2)).unwrap();
    w.run_for(SimDuration::from_millis(30));
    let op = w
        .start_checkpoint("slm", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 50_000_000));
    let bytes = w.store("slm").get_image("rank0", op).expect("image stored");

    c.bench_function("image_decode_1mib", |b| {
        b.iter(|| PodImage::decode(black_box(&bytes)).unwrap())
    });
    let image = PodImage::decode(&bytes).unwrap();
    c.bench_function("image_encode_1mib", |b| {
        b.iter(|| black_box(&image).encode())
    });
}

/// Wall cost of simulating 20 ms of a maximum-rate TCP stream (Fig. 6's
/// inner loop).
fn bench_streaming_sim(c: &mut Criterion) {
    c.bench_function("simulate_20ms_gigabit_stream", |b| {
        b.iter(|| {
            let (spec, _) = streaming_job(4096);
            let mut w = World::new(3, ClusterParams::default());
            w.launch_job(&spec).unwrap();
            w.run_for(SimDuration::from_millis(20));
            black_box(w.now)
        })
    });
}

/// Wall cost of one full coordinated checkpoint (Fig. 5's inner loop) at
/// reduced state size.
fn bench_coordinated_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(20));
    g.bench_function("coordinated_checkpoint_2_nodes", |b| {
        b.iter(|| {
            let mut point = run_fig5(2, 1, SimDuration::from_millis(20));
            black_box(point.reports.pop())
        })
    });
    g.finish();
}

/// Wall cost of the TCP state machine: one endpoint pair moving 1 MiB.
fn bench_tcp_pair(c: &mut Criterion) {
    use simnet::tcp::{seq::SeqNum, Tcb};
    c.bench_function("tcb_pair_transfer_1mib", |b| {
        b.iter(|| {
            let cfg = TcpConfig::default();
            let t0 = des::SimTime::ZERO;
            let la = simnet::addr::SockAddr::new(IpAddr::from_octets([10, 0, 0, 1]), 1);
            let lb = simnet::addr::SockAddr::new(IpAddr::from_octets([10, 0, 0, 2]), 2);
            let (mut a, syns) = Tcb::connect(cfg.clone(), la, lb, SeqNum::new(1), t0);
            let (mut bb, synacks) = Tcb::accept_syn(cfg, lb, la, SeqNum::new(2), &syns[0], t0);
            let acks = a.on_segment(&synacks[0], t0);
            for s in &acks {
                let _ = bb.on_segment(s, t0);
            }
            // Nodelay: the driver below never fires timers, so Nagle must
            // not hold the sub-MSS tail back.
            let _ = a.set_nodelay(true, t0);
            let payload = vec![7u8; 1024 * 1024];
            let mut sent = 0;
            let mut received = 0usize;
            while received < payload.len() {
                let (n, segs) = a.write(&payload[sent..], t0);
                sent += n;
                let mut replies = Vec::new();
                for s in &segs {
                    replies.extend(bb.on_segment(s, t0));
                }
                let (data, more) = bb.read(usize::MAX, t0);
                received += data.len();
                for r in replies.iter().chain(more.iter()) {
                    let _ = a.on_segment(r, t0);
                }
            }
            black_box(received)
        })
    });
    let _ = MacAddr::from_index(0);
    let _ = MacMode::Dedicated(MacAddr::from_index(0));
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_image_codec, bench_streaming_sim, bench_coordinated_checkpoint, bench_tcp_pair
}
criterion_main!(benches);
