//! Criterion micro-benchmarks for the capture hot paths: chunk range
//! splitting, the LZ codec, chunk encoding, the 128-bit chunk address,
//! event queue churn, and the COW drain's prepare step — each optimized kernel
//! next to the reference implementation it must match byte-for-byte
//! (`bench::hotpath` holds the shared kernels; the `bench_hotpath` binary
//! asserts the ref/opt equivalence and speedup floors).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::hotpath::{
    capture_fixture, capture_hinted, capture_reference, chunk_id_optimized, chunk_id_reference,
    codec_inputs, codec_optimized, codec_reference, queue_optimized_churn, queue_reference_churn,
    queue_schedule, PAGE,
};
use cruz::chunk::{self, CodecScratch};

/// `chunk::split_ranges` over a page-grained image layout.
fn bench_split_ranges(c: &mut Criterion) {
    let pages = 512usize;
    let cuts: Vec<(usize, usize)> = (0..pages).map(|i| (64 + i * PAGE, PAGE)).collect();
    let total = 64 + pages * PAGE + 32;
    c.bench_function("split_ranges_512_pages", |b| {
        b.iter(|| chunk::split_ranges(black_box(total), black_box(&cuts), 1024))
    });
}

/// The raw LZ compressor on one compressible page.
fn bench_compress(c: &mut Criterion) {
    let inputs = codec_inputs(16);
    let page = inputs
        .iter()
        .find(|p| !chunk::is_zero_page(p))
        .expect("mix has non-zero pages");
    c.bench_function("compress_page", |b| {
        b.iter(|| chunk::compress(black_box(page)))
    });
}

/// Container encoding: fresh-allocation reference vs scratch reuse.
fn bench_encode_chunk(c: &mut Criterion) {
    let inputs = codec_inputs(16);
    let page = inputs
        .iter()
        .find(|p| !chunk::is_zero_page(p))
        .expect("mix has non-zero pages");
    let mut g = c.benchmark_group("encode_chunk");
    g.bench_function("reference", |b| {
        b.iter(|| chunk::encode_chunk(black_box(page), true))
    });
    let mut scratch = CodecScratch::new();
    g.bench_function("scratch", |b| {
        b.iter(|| chunk::encode_chunk_with(black_box(page), true, &mut scratch))
    });
    g.finish();
}

/// Whole-page identify+encode over the novel-page mix (zero fast path +
/// scratch vs the pre-pass path).
fn bench_page_encode(c: &mut Criterion) {
    let inputs = codec_inputs(64);
    let mut g = c.benchmark_group("page_encode");
    g.bench_function("reference", |b| {
        b.iter(|| codec_reference(black_box(&inputs)))
    });
    let mut scratch = CodecScratch::new();
    g.bench_function("optimized", |b| {
        b.iter(|| codec_optimized(black_box(&inputs), &mut scratch))
    });
    g.finish();
}

/// The 128-bit chunk content address: two independent FNV passes vs one
/// interleaved `fold2` pass.
fn bench_chunk_id(c: &mut Criterion) {
    let data: Vec<u8> = (0..1024 * 1024usize).map(|i| (i % 251) as u8).collect();
    let mut g = c.benchmark_group("chunk_id_1mib");
    g.bench_function("two_folds", |b| {
        b.iter(|| chunk_id_reference(black_box(&data)))
    });
    g.bench_function("fold2", |b| b.iter(|| chunk_id_optimized(black_box(&data))));
    g.finish();
}

/// Event-queue push/pop churn: two-field comparator vs packed `u128` key.
fn bench_queue_churn(c: &mut Criterion) {
    let schedule = queue_schedule(32 * 1024);
    let mut g = c.benchmark_group("queue_churn_32k");
    g.bench_function("reference", |b| {
        b.iter(|| queue_reference_churn(black_box(&schedule)))
    });
    g.bench_function("packed_key", |b| {
        b.iter(|| queue_optimized_churn(black_box(&schedule)))
    });
    g.finish();
}

/// The COW drain's encode step: full re-hash/re-encode vs the page-digest
/// cache on a steady-state epoch (20% dirty).
fn bench_cow_drain_encoding(c: &mut Criterion) {
    let mut fixture = capture_fixture(128, 20);
    // Warm the hinted side once so the timed iterations are steady-state.
    let _ = capture_hinted(&mut fixture);
    let mut g = c.benchmark_group("cow_drain_encoding");
    g.sample_size(20);
    g.bench_function("reference", |b| {
        b.iter(|| capture_reference(black_box(&fixture)).manifest_len())
    });
    g.bench_function("digest_cache", |b| {
        b.iter(|| capture_hinted(black_box(&mut fixture)).manifest_len())
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = hotpath;
    config = config();
    targets = bench_split_ranges, bench_compress, bench_encode_chunk, bench_page_encode,
        bench_chunk_id, bench_queue_churn, bench_cow_drain_encoding
}
criterion_main!(hotpath);
