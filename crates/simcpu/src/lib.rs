//! The guest virtual machine of the Cruz reproduction.
//!
//! Applications that run inside simulated-OS processes are programs for this
//! small register machine. Because program text, data, stack and heap all
//! live in the simulated address space, and the only per-CPU state is the
//! register file and program counter ([`cpu::Cpu`]), a checkpoint taken by
//! the OS layer captures execution state **without any cooperation from the
//! application** — the property the Cruz paper calls application
//! transparency.
//!
//! * [`isa`] — the instruction set and its fixed 16-byte encoding;
//! * [`cpu`] — the interpreter;
//! * [`mem`] — the memory interface the interpreter executes against;
//! * [`asm`] — an assembler eDSL used by the `workloads` crate to build the
//!   benchmark programs (slm, TCP streaming, …).
//!
//! # Examples
//!
//! ```
//! use simcpu::asm::Asm;
//! use simcpu::cpu::{Cpu, StepOutcome};
//! use simcpu::isa::{R0, R1};
//! use simcpu::mem::FlatMem;
//!
//! // A program that doubles r1 then issues syscall 0 (exit).
//! let mut asm = Asm::new(0);
//! asm.movi(R1, 21);
//! asm.add(R1, R1, R1);
//! asm.movi(R0, 0);
//! asm.syscall();
//! let mut mem = FlatMem::new(4096);
//! asm.load_into(&mut mem)?;
//!
//! let mut cpu = Cpu::new(0);
//! let (_, outcome) = cpu.run(&mut mem, 100)?;
//! assert_eq!(outcome, StepOutcome::Syscall);
//! assert_eq!(cpu.reg(R1), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod mem;

pub use asm::Asm;
pub use cpu::{Cpu, CpuFault, StepOutcome};
pub use isa::{Inst, Reg, INST_SIZE};
pub use mem::{FlatMem, MemFault, Memory};
