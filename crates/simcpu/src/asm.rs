//! A small assembler eDSL for building guest programs from Rust.
//!
//! Programs are built instruction-by-instruction with forward-referencable
//! labels, then assembled to the fixed 16-byte encoding at a chosen base
//! address.
//!
//! Register `r14` is reserved as assembler scratch by the composite helpers
//! (such as [`Asm::cmp_gt_jump`]); plain instruction emitters never touch it.
//!
//! # Examples
//!
//! ```
//! use simcpu::asm::Asm;
//! use simcpu::isa::{R1, R2};
//!
//! let mut asm = Asm::new(0x1000);
//! let done = asm.label();
//! asm.movi(R1, 3);
//! asm.jnz(R1, done);
//! asm.movi(R2, 0xbad);
//! asm.bind(done);
//! asm.halt();
//! let image = asm.assemble().unwrap();
//! assert_eq!(image.len() % 16, 0);
//! ```

use std::fmt;

use crate::isa::{AluOp, CmpOp, FaluOp, FcmpOp, Inst, Reg, INST_SIZE, R14};
use crate::mem::{MemFault, Memory};

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembly error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`Asm::bind`].
    UnboundLabel(usize),
    /// A label was bound twice.
    DoubleBind(usize),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} referenced but never bound"),
            AsmError::DoubleBind(i) => write!(f, "label {i} bound more than once"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum AInst {
    Fixed(Inst),
    Jmp(Label),
    Jz(Reg, Label),
    Jnz(Reg, Label),
    Call(Label),
    MoviLabel(Reg, Label),
}

/// An incremental program builder.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    insts: Vec<AInst>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Creates an assembler that will place its first instruction at `base`.
    pub fn new(base: u64) -> Self {
        Asm {
            base,
            insts: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Returns the base address the program assembles at.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Returns the number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Returns the address the *next* emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_SIZE
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (this is a programming error in
    /// the caller, caught eagerly).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound more than once",
            label.0
        );
        self.labels[label.0] = Some(self.insts.len());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(AInst::Fixed(inst));
    }

    /// Resolves labels and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        let resolve = |l: Label| -> Result<u64, AsmError> {
            let idx = self.labels[l.0].ok_or(AsmError::UnboundLabel(l.0))?;
            Ok(self.base + idx as u64 * INST_SIZE)
        };
        let mut out = Vec::with_capacity(self.insts.len() * INST_SIZE as usize);
        for ai in &self.insts {
            let inst = match *ai {
                AInst::Fixed(i) => i,
                AInst::Jmp(l) => Inst::Jmp {
                    target: resolve(l)?,
                },
                AInst::Jz(r, l) => Inst::Jz {
                    rs: r,
                    target: resolve(l)?,
                },
                AInst::Jnz(r, l) => Inst::Jnz {
                    rs: r,
                    target: resolve(l)?,
                },
                AInst::Call(l) => Inst::Call {
                    target: resolve(l)?,
                },
                AInst::MoviLabel(r, l) => Inst::Movi {
                    rd: r,
                    imm: resolve(l)? as i64,
                },
            };
            out.extend_from_slice(&inst.encode());
        }
        Ok(out)
    }

    /// Assembles and writes the program into `mem` at the base address.
    ///
    /// # Errors
    ///
    /// Returns an assembly error or the memory fault from the write.
    pub fn load_into<M: Memory + ?Sized>(&self, mem: &mut M) -> Result<(), LoadError> {
        let bytes = self.assemble()?;
        mem.store(self.base, &bytes)?;
        Ok(())
    }

    // ---- plain emitters -------------------------------------------------

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Emits `syscall`.
    pub fn syscall(&mut self) {
        self.emit(Inst::Syscall);
    }

    /// Emits `rd <- imm`.
    pub fn movi(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::Movi { rd, imm });
    }

    /// Emits `rd <- address of label`.
    pub fn movi_label(&mut self, rd: Reg, label: Label) {
        self.insts.push(AInst::MoviLabel(rd, label));
    }

    /// Emits `rd <- rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Mov { rd, rs });
    }

    /// Emits `rd <- rs + rt`.
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs - rt`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs * rt`.
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs / rt` (unsigned).
    pub fn div(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Divu,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs % rt` (unsigned).
    pub fn rem(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Remu,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs & rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::And,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs | rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs ^ rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs + imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Add,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs - imm`.
    pub fn subi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Sub,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs * imm`.
    pub fn muli(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Mul,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs / imm` (unsigned).
    pub fn divi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Divu,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs % imm` (unsigned).
    pub fn remi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Remu,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs & imm`.
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::And,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs << imm`.
    pub fn shli(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Shl,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- rs >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Inst::Alui {
            op: AluOp::Shr,
            rd,
            rs,
            imm,
        });
    }

    /// Emits `rd <- (rs == rt) ? 1 : 0`.
    pub fn ceq(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Cmp {
            op: CmpOp::Eq,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- (rs != rt) ? 1 : 0`.
    pub fn cne(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Cmp {
            op: CmpOp::Ne,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- (rs < rt) ? 1 : 0` (unsigned).
    pub fn cltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Cmp {
            op: CmpOp::LtU,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- (rs < rt) ? 1 : 0` (signed).
    pub fn clts(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Cmp {
            op: CmpOp::LtS,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- (rs <= rt) ? 1 : 0` (unsigned).
    pub fn cleu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Cmp {
            op: CmpOp::LeU,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs + rt` on `f64` bit patterns.
    pub fn fadd(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Falu {
            op: FaluOp::Add,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs - rt` on `f64` bit patterns.
    pub fn fsub(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Falu {
            op: FaluOp::Sub,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs * rt` on `f64` bit patterns.
    pub fn fmul(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Falu {
            op: FaluOp::Mul,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- rs / rt` on `f64` bit patterns.
    pub fn fdiv(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Falu {
            op: FaluOp::Div,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- (rs < rt) ? 1 : 0` on `f64` bit patterns.
    pub fn flt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Inst::Fcmp {
            op: FcmpOp::Lt,
            rd,
            rs,
            rt,
        });
    }

    /// Emits `rd <- sqrt(rs)` on `f64` bit patterns.
    pub fn fsqrt(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Fsqrt { rd, rs });
    }

    /// Emits `rd <- (f64) rs`.
    pub fn i2f(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::I2f { rd, rs });
    }

    /// Emits `rd <- (i64) rs` (truncating float-to-int).
    pub fn f2i(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::F2i { rd, rs });
    }

    /// Emits `rd <- mem64[base + off]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Ld { rd, base, off });
    }

    /// Emits `mem64[base + off] <- src`.
    pub fn st(&mut self, base: Reg, src: Reg, off: i64) {
        self.emit(Inst::St { base, src, off });
    }

    /// Emits `rd <- mem8[base + off]`.
    pub fn ldb(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Inst::Ldb { rd, base, off });
    }

    /// Emits `mem8[base + off] <- src`.
    pub fn stb(&mut self, base: Reg, src: Reg, off: i64) {
        self.emit(Inst::Stb { base, src, off });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.insts.push(AInst::Jmp(label));
    }

    /// Emits a jump to `label` taken when `rs == 0`.
    pub fn jz(&mut self, rs: Reg, label: Label) {
        self.insts.push(AInst::Jz(rs, label));
    }

    /// Emits a jump to `label` taken when `rs != 0`.
    pub fn jnz(&mut self, rs: Reg, label: Label) {
        self.insts.push(AInst::Jnz(rs, label));
    }

    /// Emits an indirect jump to the address in `rs`.
    pub fn jmp_r(&mut self, rs: Reg) {
        self.emit(Inst::JmpR { rs });
    }

    /// Emits a call to `label`.
    pub fn call_label(&mut self, label: Label) {
        self.insts.push(AInst::Call(label));
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Emits `push rs`.
    pub fn push(&mut self, rs: Reg) {
        self.emit(Inst::Push { rs });
    }

    /// Emits `pop rd`.
    pub fn pop(&mut self, rd: Reg) {
        self.emit(Inst::Pop { rd });
    }

    // ---- composite helpers (use scratch register r14) -------------------

    /// Jumps to `label` if `rs > rt` (unsigned). Clobbers `r14`.
    pub fn cmp_gt_jump(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.cltu(R14, rt, rs);
        self.jnz(R14, label);
    }

    /// Jumps to `label` if `rs < rt` (unsigned). Clobbers `r14`.
    pub fn cmp_lt_jump(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.cltu(R14, rs, rt);
        self.jnz(R14, label);
    }

    /// Jumps to `label` if `rs == rt`. Clobbers `r14`.
    pub fn cmp_eq_jump(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.ceq(R14, rs, rt);
        self.jnz(R14, label);
    }

    /// Jumps to `label` if `rs != rt`. Clobbers `r14`.
    pub fn cmp_ne_jump(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.cne(R14, rs, rt);
        self.jnz(R14, label);
    }
}

/// A failure while assembling-and-loading a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The program failed to assemble.
    Asm(AsmError),
    /// The target memory rejected the write.
    Mem(MemFault),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Asm(e) => write!(f, "{e}"),
            LoadError::Mem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<AsmError> for LoadError {
    fn from(e: AsmError) -> Self {
        LoadError::Asm(e)
    }
}

impl From<MemFault> for LoadError {
    fn from(e: MemFault) -> Self {
        LoadError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{R1, R2};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new(0x100);
        let fwd = a.label();
        a.jmp(fwd);
        let back = a.label();
        a.bind(back);
        a.nop();
        a.bind(fwd);
        a.jmp(back);
        let bytes = a.assemble().unwrap();
        // inst 0: jmp to 0x100 + 2*16 = 0x120
        let i0 = Inst::decode(bytes[0..16].try_into().unwrap()).unwrap();
        assert_eq!(i0, Inst::Jmp { target: 0x120 });
        // inst 2: jmp back to 0x110
        let i2 = Inst::decode(bytes[32..48].try_into().unwrap()).unwrap();
        assert_eq!(i2, Inst::Jmp { target: 0x110 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.jmp(l);
        assert_eq!(a.assemble(), Err(AsmError::UnboundLabel(0)));
    }

    #[test]
    #[should_panic(expected = "bound more than once")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn movi_label_materializes_address() {
        let mut a = Asm::new(0x200);
        let f = a.label();
        a.movi_label(R1, f);
        a.halt();
        a.bind(f);
        a.nop();
        let bytes = a.assemble().unwrap();
        let i0 = Inst::decode(bytes[0..16].try_into().unwrap()).unwrap();
        assert_eq!(i0, Inst::Movi { rd: R1, imm: 0x220 });
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(0x40);
        assert_eq!(a.here(), 0x40);
        a.movi(R2, 0);
        assert_eq!(a.here(), 0x50);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
