//! The memory interface the CPU executes against.

use std::fmt;

/// A faulting guest memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The virtual address that faulted.
    pub addr: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault on {} at {:#x}",
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Byte-addressed guest memory.
///
/// Implemented by the simulated OS's per-process address space; a flat
/// test implementation is provided as [`FlatMem`].
pub trait Memory {
    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if any byte of the range is not readable.
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault>;

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if any byte of the range is not writable.
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault>;

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Propagates the fault from [`Memory::load`].
    fn load_u64(&mut self, addr: u64) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.load(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Propagates the fault from [`Memory::store`].
    fn store_u64(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        self.store(addr, &value.to_le_bytes())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Propagates the fault from [`Memory::load`].
    fn load_u8(&mut self, addr: u64) -> Result<u8, MemFault> {
        let mut b = [0u8; 1];
        self.load(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Propagates the fault from [`Memory::store`].
    fn store_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        self.store(addr, &[value])
    }
}

/// A simple contiguous memory starting at address zero.
///
/// Useful for unit tests and for assembling programs before loading them into
/// a real address space.
///
/// # Examples
///
/// ```
/// use simcpu::mem::{FlatMem, Memory};
///
/// let mut m = FlatMem::new(64);
/// m.store_u64(8, 0xdead_beef).unwrap();
/// assert_eq!(m.load_u64(8).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMem {
    bytes: Vec<u8>,
}

impl FlatMem {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        FlatMem {
            bytes: vec![0; size],
        }
    }

    /// Returns the size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns true if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns the raw contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Memory for FlatMem {
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let start = addr as usize;
        let end = start.checked_add(buf.len());
        match end {
            Some(end) if end <= self.bytes.len() => {
                buf.copy_from_slice(&self.bytes[start..end]);
                Ok(())
            }
            _ => Err(MemFault { addr, write: false }),
        }
    }

    fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let start = addr as usize;
        let end = start.checked_add(data.len());
        match end {
            Some(end) if end <= self.bytes.len() => {
                self.bytes[start..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(MemFault { addr, write: true }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_mem_bounds_checked() {
        let mut m = FlatMem::new(16);
        assert!(m.store_u64(8, 1).is_ok());
        assert_eq!(
            m.store_u64(9, 1),
            Err(MemFault {
                addr: 9,
                write: true
            })
        );
        assert_eq!(
            m.load_u64(9),
            Err(MemFault {
                addr: 9,
                write: false
            })
        );
    }

    #[test]
    fn byte_access() {
        let mut m = FlatMem::new(4);
        m.store_u8(3, 0xab).unwrap();
        assert_eq!(m.load_u8(3).unwrap(), 0xab);
        assert_eq!(m.as_bytes(), &[0, 0, 0, 0xab]);
    }

    #[test]
    fn fault_display() {
        let f = MemFault {
            addr: 0x20,
            write: true,
        };
        assert_eq!(f.to_string(), "memory fault on write at 0x20");
    }
}
