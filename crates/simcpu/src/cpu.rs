//! The guest CPU interpreter.

use std::fmt;

use crate::isa::{AluOp, CmpOp, FaluOp, FcmpOp, Inst, Reg, INST_SIZE, SP};
use crate::mem::{MemFault, Memory};

/// Why the CPU stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An ordinary instruction retired; execution can continue.
    Continue,
    /// A `syscall` instruction retired. The PC already points at the next
    /// instruction; the kernel should read `r0..=r5` and eventually write the
    /// result into `r0`.
    Syscall,
    /// A `halt` instruction retired; the CPU will not run again.
    Halted,
}

/// A fault raised by the executing program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuFault {
    /// A memory access failed.
    Mem(MemFault),
    /// The bytes at the PC did not decode to an instruction.
    BadInstruction {
        /// The PC of the undecodable instruction.
        pc: u64,
        /// The offending opcode byte.
        opcode: u8,
    },
    /// Integer division or remainder by zero.
    DivByZero {
        /// The PC of the faulting instruction.
        pc: u64,
    },
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::Mem(m) => write!(f, "{m}"),
            CpuFault::BadInstruction { pc, opcode } => {
                write!(
                    f,
                    "undecodable instruction at {pc:#x} (opcode {opcode:#04x})"
                )
            }
            CpuFault::DivByZero { pc } => write!(f, "division by zero at {pc:#x}"),
        }
    }
}

impl std::error::Error for CpuFault {}

impl From<MemFault> for CpuFault {
    fn from(m: MemFault) -> Self {
        CpuFault::Mem(m)
    }
}

/// The architectural state of a guest CPU: sixteen 64-bit registers and a
/// program counter.
///
/// The whole execution state of a program is this struct plus the address
/// space it runs in, which is exactly what a checkpoint captures.
///
/// # Examples
///
/// ```
/// use simcpu::asm::Asm;
/// use simcpu::cpu::{Cpu, StepOutcome};
/// use simcpu::isa::R1;
/// use simcpu::mem::FlatMem;
///
/// let mut asm = Asm::new(0);
/// asm.movi(R1, 41);
/// asm.addi(R1, R1, 1);
/// asm.halt();
/// let mut mem = FlatMem::new(4096);
/// asm.load_into(&mut mem).unwrap();
///
/// let mut cpu = Cpu::new(0);
/// let (_, outcome) = cpu.run(&mut mem, 100).unwrap();
/// assert_eq!(outcome, StepOutcome::Halted);
/// assert_eq!(cpu.reg(R1), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u64; Reg::COUNT],
    pc: u64,
    halted: bool,
}

impl Cpu {
    /// Creates a CPU with all registers zero and the PC at `entry`.
    pub fn new(entry: u64) -> Self {
        Cpu {
            regs: [0; Reg::COUNT],
            pc: entry,
            halted: false,
        }
    }

    /// Reconstructs a CPU from checkpointed architectural state.
    pub fn restore(regs: [u64; Reg::COUNT], pc: u64, halted: bool) -> Self {
        Cpu { regs, pc, halted }
    }

    /// Returns a register value.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Sets a register value.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Returns the program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Returns true once a `halt` instruction has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Returns the full register file, for checkpointing.
    pub fn regs(&self) -> &[u64; Reg::COUNT] {
        &self.regs
    }

    /// Restores the full register file, for restart.
    pub fn set_regs(&mut self, regs: [u64; Reg::COUNT]) {
        self.regs = regs;
    }

    /// Clears the halted flag (used when reusing a CPU slot).
    pub fn reset(&mut self, entry: u64) {
        self.regs = [0; Reg::COUNT];
        self.pc = entry;
        self.halted = false;
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CpuFault`] for memory faults, undecodable instructions and
    /// division by zero. The PC is left at the faulting instruction.
    pub fn step<M: Memory + ?Sized>(&mut self, mem: &mut M) -> Result<StepOutcome, CpuFault> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let mut raw = [0u8; 16];
        mem.load(pc, &mut raw)?;
        let inst = Inst::decode(&raw).map_err(|e| CpuFault::BadInstruction {
            pc,
            opcode: e.opcode,
        })?;
        let next = pc + INST_SIZE;
        self.pc = next;
        match inst {
            Inst::Halt => {
                self.halted = true;
                return Ok(StepOutcome::Halted);
            }
            Inst::Nop => {}
            Inst::Syscall => return Ok(StepOutcome::Syscall),
            Inst::Movi { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Mov { rd, rs } => self.set_reg(rd, self.reg(rs)),
            Inst::Alu { op, rd, rs, rt } => {
                let v = self.alu(op, self.reg(rs), self.reg(rt), pc)?;
                self.set_reg(rd, v);
            }
            Inst::Alui { op, rd, rs, imm } => {
                let v = self.alu(op, self.reg(rs), imm as u64, pc)?;
                self.set_reg(rd, v);
            }
            Inst::Cmp { op, rd, rs, rt } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                let v = match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::LtU => a < b,
                    CmpOp::LtS => (a as i64) < (b as i64),
                    CmpOp::LeU => a <= b,
                    CmpOp::LeS => (a as i64) <= (b as i64),
                };
                self.set_reg(rd, v as u64);
            }
            Inst::Falu { op, rd, rs, rt } => {
                let a = f64::from_bits(self.reg(rs));
                let b = f64::from_bits(self.reg(rt));
                let v = match op {
                    FaluOp::Add => a + b,
                    FaluOp::Sub => a - b,
                    FaluOp::Mul => a * b,
                    FaluOp::Div => a / b,
                };
                self.set_reg(rd, v.to_bits());
            }
            Inst::Fcmp { op, rd, rs, rt } => {
                let a = f64::from_bits(self.reg(rs));
                let b = f64::from_bits(self.reg(rt));
                let v = match op {
                    FcmpOp::Lt => a < b,
                    FcmpOp::Le => a <= b,
                    FcmpOp::Eq => a == b,
                };
                self.set_reg(rd, v as u64);
            }
            Inst::Fsqrt { rd, rs } => {
                let v = f64::from_bits(self.reg(rs)).sqrt();
                self.set_reg(rd, v.to_bits());
            }
            Inst::I2f { rd, rs } => {
                self.set_reg(rd, ((self.reg(rs) as i64) as f64).to_bits());
            }
            Inst::F2i { rd, rs } => {
                self.set_reg(rd, (f64::from_bits(self.reg(rs)) as i64) as u64);
            }
            Inst::Ld { rd, base, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                let v = mem.load_u64(addr)?;
                self.set_reg(rd, v);
            }
            Inst::St { base, src, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                mem.store_u64(addr, self.reg(src))?;
            }
            Inst::Ldb { rd, base, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                let v = mem.load_u8(addr)?;
                self.set_reg(rd, v as u64);
            }
            Inst::Stb { base, src, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                mem.store_u8(addr, self.reg(src) as u8)?;
            }
            Inst::Jmp { target } => self.pc = target,
            Inst::Jz { rs, target } => {
                if self.reg(rs) == 0 {
                    self.pc = target;
                }
            }
            Inst::Jnz { rs, target } => {
                if self.reg(rs) != 0 {
                    self.pc = target;
                }
            }
            Inst::JmpR { rs } => self.pc = self.reg(rs),
            Inst::Call { target } => {
                let sp = self.reg(SP).wrapping_sub(8);
                mem.store_u64(sp, next)?;
                self.set_reg(SP, sp);
                self.pc = target;
            }
            Inst::Ret => {
                let sp = self.reg(SP);
                let ret = mem.load_u64(sp)?;
                self.set_reg(SP, sp + 8);
                self.pc = ret;
            }
            Inst::Push { rs } => {
                let sp = self.reg(SP).wrapping_sub(8);
                mem.store_u64(sp, self.reg(rs))?;
                self.set_reg(SP, sp);
            }
            Inst::Pop { rd } => {
                let sp = self.reg(SP);
                let v = mem.load_u64(sp)?;
                self.set_reg(SP, sp + 8);
                self.set_reg(rd, v);
            }
        }
        Ok(StepOutcome::Continue)
    }

    /// Runs up to `max_steps` instructions, stopping early on a syscall or
    /// halt. Returns the number of instructions retired and the reason for
    /// stopping ([`StepOutcome::Continue`] means the step budget ran out).
    ///
    /// # Errors
    ///
    /// Returns the first [`CpuFault`] encountered; the count of retired
    /// instructions before the fault is lost (callers treat faults as fatal
    /// to the process).
    pub fn run<M: Memory + ?Sized>(
        &mut self,
        mem: &mut M,
        max_steps: u64,
    ) -> Result<(u64, StepOutcome), CpuFault> {
        let mut steps = 0;
        while steps < max_steps {
            let outcome = self.step(mem)?;
            steps += 1;
            match outcome {
                StepOutcome::Continue => {}
                other => return Ok((steps, other)),
            }
        }
        Ok((steps, StepOutcome::Continue))
    }

    fn alu(&self, op: AluOp, a: u64, b: u64, pc: u64) -> Result<u64, CpuFault> {
        Ok(match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => a.checked_div(b).ok_or(CpuFault::DivByZero { pc })?,
            AluOp::Remu => a.checked_rem(b).ok_or(CpuFault::DivByZero { pc })?,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Sar => ((a as i64).wrapping_shr(b as u32)) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{R0, R1, R2, R3};
    use crate::mem::FlatMem;

    fn run_asm(asm: Asm, max: u64) -> (Cpu, FlatMem, StepOutcome) {
        let mut mem = FlatMem::new(1 << 16);
        let entry = asm.base();
        asm.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(entry);
        cpu.set_reg(SP, 1 << 15);
        let (_, outcome) = cpu.run(&mut mem, max).unwrap();
        (cpu, mem, outcome)
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let mut a = Asm::new(0);
        a.movi(R1, 0); // acc
        a.movi(R2, 1); // i
        a.movi(R3, 10);
        let top = a.label();
        a.bind(top);
        a.add(R1, R1, R2);
        a.addi(R2, R2, 1);
        let done = a.label();
        a.cmp_gt_jump(R2, R3, done);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let (cpu, _, outcome) = run_asm(a, 1000);
        assert_eq!(outcome, StepOutcome::Halted);
        assert_eq!(cpu.reg(R1), 55);
    }

    #[test]
    fn call_ret_push_pop() {
        let mut a = Asm::new(0);
        let func = a.label();
        a.movi(R1, 5);
        a.call_label(func);
        a.halt();
        a.bind(func);
        a.push(R1);
        a.movi(R1, 9);
        a.pop(R2);
        a.ret();
        let (cpu, _, outcome) = run_asm(a, 100);
        assert_eq!(outcome, StepOutcome::Halted);
        assert_eq!(cpu.reg(R1), 9);
        assert_eq!(cpu.reg(R2), 5);
    }

    #[test]
    fn loads_and_stores() {
        let mut a = Asm::new(0);
        a.movi(R1, 0x8000);
        a.movi(R2, 0xabcd);
        a.st(R1, R2, 8);
        a.ld(R3, R1, 8);
        a.stb(R1, R2, 0);
        a.ldb(R0, R1, 0);
        a.halt();
        let (cpu, mem, _) = run_asm(a, 100);
        assert_eq!(cpu.reg(R3), 0xabcd);
        assert_eq!(cpu.reg(R0), 0xcd);
        assert_eq!(mem.as_bytes()[0x8000], 0xcd);
    }

    #[test]
    fn float_ops() {
        let mut a = Asm::new(0);
        a.movi(R1, 9);
        a.i2f(R1, R1);
        a.fsqrt(R2, R1);
        a.f2i(R3, R2);
        a.halt();
        let (cpu, _, _) = run_asm(a, 100);
        assert_eq!(cpu.reg(R3), 3);
        assert_eq!(f64::from_bits(cpu.reg(R2)), 3.0);
    }

    #[test]
    fn syscall_stops_and_resumes() {
        let mut a = Asm::new(0);
        a.movi(R0, 7);
        a.syscall();
        a.mov(R2, R0);
        a.halt();
        let mut mem = FlatMem::new(4096);
        a.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(0);
        let (_, out) = cpu.run(&mut mem, 100).unwrap();
        assert_eq!(out, StepOutcome::Syscall);
        assert_eq!(cpu.reg(R0), 7);
        // kernel writes result
        cpu.set_reg(R0, 1234);
        let (_, out) = cpu.run(&mut mem, 100).unwrap();
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(cpu.reg(R2), 1234);
    }

    #[test]
    fn div_by_zero_faults() {
        let mut a = Asm::new(0);
        a.movi(R1, 1);
        a.movi(R2, 0);
        a.div(R3, R1, R2);
        let mut mem = FlatMem::new(4096);
        a.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(0);
        let err = cpu.run(&mut mem, 10).unwrap_err();
        assert!(matches!(err, CpuFault::DivByZero { .. }));
    }

    #[test]
    fn bad_instruction_faults() {
        let mut mem = FlatMem::new(4096);
        mem.store(0, &[0xff; 16]).unwrap();
        let mut cpu = Cpu::new(0);
        let err = cpu.step(&mut mem).unwrap_err();
        assert!(matches!(
            err,
            CpuFault::BadInstruction {
                pc: 0,
                opcode: 0xff
            }
        ));
    }

    #[test]
    fn halted_cpu_stays_halted() {
        let mut a = Asm::new(0);
        a.halt();
        let mut mem = FlatMem::new(4096);
        a.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(0);
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Halted);
        assert!(cpu.is_halted());
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Halted);
    }

    #[test]
    fn checkpointable_state_round_trip() {
        let mut cpu = Cpu::new(0x40);
        cpu.set_reg(R3, 99);
        let regs = *cpu.regs();
        let pc = cpu.pc();
        let mut restored = Cpu::new(0);
        restored.set_regs(regs);
        restored.set_pc(pc);
        assert_eq!(cpu, restored);
    }
}
