//! Instruction-set architecture of the guest virtual machine.
//!
//! The ISA is a small load/store machine: sixteen 64-bit general-purpose
//! registers, a byte-addressed flat virtual address space, and fixed-width
//! 16-byte instructions. Program text is ordinary data in guest memory, which
//! is what makes checkpoint/restart fully transparent: saving the registers
//! and the address space captures the complete execution state.

use std::fmt;

/// Size in bytes of every encoded instruction.
pub const INST_SIZE: u64 = 16;

/// A general-purpose register identifier (`r0`–`r15`).
///
/// By convention `r15` is the stack pointer used by [`Inst::Call`],
/// [`Inst::Ret`], [`Inst::Push`] and [`Inst::Pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 16, "register index out of range");
        Reg(index)
    }

    /// Returns the register index (0–15).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Register `r0` — syscall number and syscall/return value by convention.
pub const R0: Reg = Reg(0);
/// Register `r1` — first syscall argument by convention.
pub const R1: Reg = Reg(1);
/// Register `r2` — second syscall argument by convention.
pub const R2: Reg = Reg(2);
/// Register `r3` — third syscall argument by convention.
pub const R3: Reg = Reg(3);
/// Register `r4` — fourth syscall argument by convention.
pub const R4: Reg = Reg(4);
/// Register `r5` — fifth syscall argument by convention.
pub const R5: Reg = Reg(5);
/// Register `r6` — caller-saved scratch.
pub const R6: Reg = Reg(6);
/// Register `r7` — caller-saved scratch.
pub const R7: Reg = Reg(7);
/// Register `r8` — caller-saved scratch.
pub const R8: Reg = Reg(8);
/// Register `r9` — caller-saved scratch.
pub const R9: Reg = Reg(9);
/// Register `r10` — caller-saved scratch.
pub const R10: Reg = Reg(10);
/// Register `r11` — caller-saved scratch.
pub const R11: Reg = Reg(11);
/// Register `r12` — caller-saved scratch.
pub const R12: Reg = Reg(12);
/// Register `r13` — caller-saved scratch.
pub const R13: Reg = Reg(13);
/// Register `r14` — caller-saved scratch.
pub const R14: Reg = Reg(14);
/// Register `r15` — the stack pointer.
pub const SP: Reg = Reg(15);

/// A three-register arithmetic/logic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero faults.
    Divu,
    /// Unsigned remainder; division by zero faults.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
    /// Arithmetic shift right (modulo 64).
    Sar,
}

/// An integer comparison producing 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Signed less-than.
    LtS,
    /// Unsigned less-or-equal.
    LeU,
    /// Signed less-or-equal.
    LeS,
}

/// A double-precision floating-point operation on bit-cast registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A floating-point comparison producing 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmpOp {
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Equal.
    Eq,
}

/// A decoded machine instruction.
///
/// Jump/call targets are absolute byte addresses in the guest address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Stop the CPU permanently.
    Halt,
    /// Do nothing.
    Nop,
    /// Trap into the kernel; `r0` holds the syscall number, `r1..=r5` the
    /// arguments, and the result is written to `r0`.
    Syscall,
    /// `rd <- imm`.
    Movi {
        /// Destination register.
        rd: Reg,
        /// Immediate value (sign-extended to 64 bits).
        imm: i64,
    },
    /// `rd <- rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd <- rs op imm`.
    Alui {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `rd <- (rs op rt) ? 1 : 0`.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd <- rs op rt`, interpreting registers as `f64` bit patterns.
    Falu {
        /// Operation.
        op: FaluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd <- (rs op rt) ? 1 : 0`, interpreting operands as `f64`.
    Fcmp {
        /// Comparison.
        op: FcmpOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd <- sqrt(rs)` as `f64`.
    Fsqrt {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- (f64)(i64)rs`.
    I2f {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- (i64)(f64)rs` (truncating).
    F2i {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- mem64[rs + off]`.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `mem64[base + off] <- src`.
    St {
        /// Base address register.
        base: Reg,
        /// Value register.
        src: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `rd <- zero-extend(mem8[base + off])`.
    Ldb {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `mem8[base + off] <- low byte of src`.
    Stb {
        /// Base address register.
        base: Reg,
        /// Value register.
        src: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// Unconditional jump to an absolute byte address.
    Jmp {
        /// Target address.
        target: u64,
    },
    /// Jump if `rs == 0`.
    Jz {
        /// Condition register.
        rs: Reg,
        /// Target address.
        target: u64,
    },
    /// Jump if `rs != 0`.
    Jnz {
        /// Condition register.
        rs: Reg,
        /// Target address.
        target: u64,
    },
    /// Indirect jump to the address in `rs`.
    JmpR {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Push the next PC and jump to an absolute address.
    Call {
        /// Target address.
        target: u64,
    },
    /// Pop a return address and jump to it.
    Ret,
    /// `sp -= 8; mem64[sp] <- rs`.
    Push {
        /// Value register.
        rs: Reg,
    },
    /// `rd <- mem64[sp]; sp += 8`.
    Pop {
        /// Destination register.
        rd: Reg,
    },
}

/// An instruction that failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending opcode byte.
    pub opcode: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid opcode byte {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

// Some immediate-form opcodes are matched via ranges in `decode`, so the
// individual constants exist for documentation of the encoding table.
#[allow(dead_code)]
mod opc {
    pub const HALT: u8 = 0x00;
    pub const NOP: u8 = 0x01;
    pub const SYSCALL: u8 = 0x02;
    pub const MOVI: u8 = 0x03;
    pub const MOV: u8 = 0x04;

    pub const ADD: u8 = 0x10;
    pub const SUB: u8 = 0x11;
    pub const MUL: u8 = 0x12;
    pub const DIVU: u8 = 0x13;
    pub const REMU: u8 = 0x14;
    pub const AND: u8 = 0x15;
    pub const OR: u8 = 0x16;
    pub const XOR: u8 = 0x17;
    pub const SHL: u8 = 0x18;
    pub const SHR: u8 = 0x19;
    pub const SAR: u8 = 0x1a;

    pub const ADDI: u8 = 0x20;
    pub const SUBI: u8 = 0x21;
    pub const MULI: u8 = 0x22;
    pub const DIVUI: u8 = 0x23;
    pub const REMUI: u8 = 0x24;
    pub const ANDI: u8 = 0x25;
    pub const ORI: u8 = 0x26;
    pub const XORI: u8 = 0x27;
    pub const SHLI: u8 = 0x28;
    pub const SHRI: u8 = 0x29;
    pub const SARI: u8 = 0x2a;

    pub const CEQ: u8 = 0x30;
    pub const CNE: u8 = 0x31;
    pub const CLTU: u8 = 0x32;
    pub const CLTS: u8 = 0x33;
    pub const CLEU: u8 = 0x34;
    pub const CLES: u8 = 0x35;

    pub const FADD: u8 = 0x40;
    pub const FSUB: u8 = 0x41;
    pub const FMUL: u8 = 0x42;
    pub const FDIV: u8 = 0x43;
    pub const FLT: u8 = 0x44;
    pub const FLE: u8 = 0x45;
    pub const FEQ: u8 = 0x46;
    pub const I2F: u8 = 0x47;
    pub const F2I: u8 = 0x48;
    pub const FSQRT: u8 = 0x49;

    pub const LD: u8 = 0x50;
    pub const ST: u8 = 0x51;
    pub const LDB: u8 = 0x52;
    pub const STB: u8 = 0x53;

    pub const JMP: u8 = 0x60;
    pub const JZ: u8 = 0x61;
    pub const JNZ: u8 = 0x62;
    pub const CALL: u8 = 0x63;
    pub const RET: u8 = 0x64;
    pub const PUSH: u8 = 0x65;
    pub const POP: u8 = 0x66;
    pub const JMPR: u8 = 0x67;
}

fn alu_opcode(op: AluOp, imm: bool) -> u8 {
    let base = match op {
        AluOp::Add => opc::ADD,
        AluOp::Sub => opc::SUB,
        AluOp::Mul => opc::MUL,
        AluOp::Divu => opc::DIVU,
        AluOp::Remu => opc::REMU,
        AluOp::And => opc::AND,
        AluOp::Or => opc::OR,
        AluOp::Xor => opc::XOR,
        AluOp::Shl => opc::SHL,
        AluOp::Shr => opc::SHR,
        AluOp::Sar => opc::SAR,
    };
    if imm {
        base + 0x10
    } else {
        base
    }
}

fn alu_from_opcode(b: u8) -> AluOp {
    match b & 0x0f {
        0x0 => AluOp::Add,
        0x1 => AluOp::Sub,
        0x2 => AluOp::Mul,
        0x3 => AluOp::Divu,
        0x4 => AluOp::Remu,
        0x5 => AluOp::And,
        0x6 => AluOp::Or,
        0x7 => AluOp::Xor,
        0x8 => AluOp::Shl,
        0x9 => AluOp::Shr,
        0xa => AluOp::Sar,
        _ => unreachable!("caller checked the opcode range"),
    }
}

impl Inst {
    /// Encodes the instruction into its fixed 16-byte form.
    pub fn encode(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        let (op, a, c, d, imm): (u8, u8, u8, u8, i64) = match self {
            Inst::Halt => (opc::HALT, 0, 0, 0, 0),
            Inst::Nop => (opc::NOP, 0, 0, 0, 0),
            Inst::Syscall => (opc::SYSCALL, 0, 0, 0, 0),
            Inst::Movi { rd, imm } => (opc::MOVI, rd.0, 0, 0, imm),
            Inst::Mov { rd, rs } => (opc::MOV, rd.0, rs.0, 0, 0),
            Inst::Alu { op, rd, rs, rt } => (alu_opcode(op, false), rd.0, rs.0, rt.0, 0),
            Inst::Alui { op, rd, rs, imm } => (alu_opcode(op, true), rd.0, rs.0, 0, imm),
            Inst::Cmp { op, rd, rs, rt } => {
                let o = match op {
                    CmpOp::Eq => opc::CEQ,
                    CmpOp::Ne => opc::CNE,
                    CmpOp::LtU => opc::CLTU,
                    CmpOp::LtS => opc::CLTS,
                    CmpOp::LeU => opc::CLEU,
                    CmpOp::LeS => opc::CLES,
                };
                (o, rd.0, rs.0, rt.0, 0)
            }
            Inst::Falu { op, rd, rs, rt } => {
                let o = match op {
                    FaluOp::Add => opc::FADD,
                    FaluOp::Sub => opc::FSUB,
                    FaluOp::Mul => opc::FMUL,
                    FaluOp::Div => opc::FDIV,
                };
                (o, rd.0, rs.0, rt.0, 0)
            }
            Inst::Fcmp { op, rd, rs, rt } => {
                let o = match op {
                    FcmpOp::Lt => opc::FLT,
                    FcmpOp::Le => opc::FLE,
                    FcmpOp::Eq => opc::FEQ,
                };
                (o, rd.0, rs.0, rt.0, 0)
            }
            Inst::Fsqrt { rd, rs } => (opc::FSQRT, rd.0, rs.0, 0, 0),
            Inst::I2f { rd, rs } => (opc::I2F, rd.0, rs.0, 0, 0),
            Inst::F2i { rd, rs } => (opc::F2I, rd.0, rs.0, 0, 0),
            Inst::Ld { rd, base, off } => (opc::LD, rd.0, base.0, 0, off),
            Inst::St { base, src, off } => (opc::ST, base.0, src.0, 0, off),
            Inst::Ldb { rd, base, off } => (opc::LDB, rd.0, base.0, 0, off),
            Inst::Stb { base, src, off } => (opc::STB, base.0, src.0, 0, off),
            Inst::Jmp { target } => (opc::JMP, 0, 0, 0, target as i64),
            Inst::Jz { rs, target } => (opc::JZ, rs.0, 0, 0, target as i64),
            Inst::Jnz { rs, target } => (opc::JNZ, rs.0, 0, 0, target as i64),
            Inst::JmpR { rs } => (opc::JMPR, rs.0, 0, 0, 0),
            Inst::Call { target } => (opc::CALL, 0, 0, 0, target as i64),
            Inst::Ret => (opc::RET, 0, 0, 0, 0),
            Inst::Push { rs } => (opc::PUSH, rs.0, 0, 0, 0),
            Inst::Pop { rd } => (opc::POP, rd.0, 0, 0, 0),
        };
        b[0] = op;
        b[1] = a;
        b[2] = c;
        b[3] = d;
        b[4..12].copy_from_slice(&imm.to_le_bytes());
        b
    }

    /// Decodes a 16-byte instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode byte is not a valid instruction.
    pub fn decode(bytes: &[u8; 16]) -> Result<Inst, DecodeError> {
        let op = bytes[0];
        let ra = Reg(bytes[1] & 0x0f);
        let rb = Reg(bytes[2] & 0x0f);
        let rc = Reg(bytes[3] & 0x0f);
        let imm = i64::from_le_bytes(bytes[4..12].try_into().expect("slice is 8 bytes"));
        let inst = match op {
            opc::HALT => Inst::Halt,
            opc::NOP => Inst::Nop,
            opc::SYSCALL => Inst::Syscall,
            opc::MOVI => Inst::Movi { rd: ra, imm },
            opc::MOV => Inst::Mov { rd: ra, rs: rb },
            opc::ADD..=opc::SAR => Inst::Alu {
                op: alu_from_opcode(op),
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::ADDI..=opc::SARI => Inst::Alui {
                op: alu_from_opcode(op),
                rd: ra,
                rs: rb,
                imm,
            },
            opc::CEQ => Inst::Cmp {
                op: CmpOp::Eq,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::CNE => Inst::Cmp {
                op: CmpOp::Ne,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::CLTU => Inst::Cmp {
                op: CmpOp::LtU,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::CLTS => Inst::Cmp {
                op: CmpOp::LtS,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::CLEU => Inst::Cmp {
                op: CmpOp::LeU,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::CLES => Inst::Cmp {
                op: CmpOp::LeS,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FADD => Inst::Falu {
                op: FaluOp::Add,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FSUB => Inst::Falu {
                op: FaluOp::Sub,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FMUL => Inst::Falu {
                op: FaluOp::Mul,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FDIV => Inst::Falu {
                op: FaluOp::Div,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FLT => Inst::Fcmp {
                op: FcmpOp::Lt,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FLE => Inst::Fcmp {
                op: FcmpOp::Le,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::FEQ => Inst::Fcmp {
                op: FcmpOp::Eq,
                rd: ra,
                rs: rb,
                rt: rc,
            },
            opc::I2F => Inst::I2f { rd: ra, rs: rb },
            opc::F2I => Inst::F2i { rd: ra, rs: rb },
            opc::FSQRT => Inst::Fsqrt { rd: ra, rs: rb },
            opc::LD => Inst::Ld {
                rd: ra,
                base: rb,
                off: imm,
            },
            opc::ST => Inst::St {
                base: ra,
                src: rb,
                off: imm,
            },
            opc::LDB => Inst::Ldb {
                rd: ra,
                base: rb,
                off: imm,
            },
            opc::STB => Inst::Stb {
                base: ra,
                src: rb,
                off: imm,
            },
            opc::JMP => Inst::Jmp { target: imm as u64 },
            opc::JZ => Inst::Jz {
                rs: ra,
                target: imm as u64,
            },
            opc::JNZ => Inst::Jnz {
                rs: ra,
                target: imm as u64,
            },
            opc::JMPR => Inst::JmpR { rs: ra },
            opc::CALL => Inst::Call { target: imm as u64 },
            opc::RET => Inst::Ret,
            opc::PUSH => Inst::Push { rs: ra },
            opc::POP => Inst::Pop { rd: ra },
            _ => return Err(DecodeError { opcode: op }),
        };
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insts() -> Vec<Inst> {
        let mut v = vec![
            Inst::Halt,
            Inst::Nop,
            Inst::Syscall,
            Inst::Movi { rd: R3, imm: -77 },
            Inst::Mov { rd: R1, rs: R2 },
            Inst::Fsqrt { rd: R4, rs: R5 },
            Inst::I2f { rd: R6, rs: R7 },
            Inst::F2i { rd: R8, rs: R9 },
            Inst::Ld {
                rd: R1,
                base: R2,
                off: -8,
            },
            Inst::St {
                base: R3,
                src: R4,
                off: 16,
            },
            Inst::Ldb {
                rd: R5,
                base: R6,
                off: 1,
            },
            Inst::Stb {
                base: R7,
                src: R8,
                off: 0,
            },
            Inst::Jmp { target: 0x100 },
            Inst::Jz {
                rs: R9,
                target: 0x200,
            },
            Inst::Jnz {
                rs: R10,
                target: 0x300,
            },
            Inst::JmpR { rs: R11 },
            Inst::Call { target: 0x400 },
            Inst::Ret,
            Inst::Push { rs: R12 },
            Inst::Pop { rd: R13 },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Divu,
            AluOp::Remu,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
        ] {
            v.push(Inst::Alu {
                op,
                rd: R1,
                rs: R2,
                rt: R3,
            });
            v.push(Inst::Alui {
                op,
                rd: R4,
                rs: R5,
                imm: 1234,
            });
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::LtU,
            CmpOp::LtS,
            CmpOp::LeU,
            CmpOp::LeS,
        ] {
            v.push(Inst::Cmp {
                op,
                rd: R1,
                rs: R2,
                rt: R3,
            });
        }
        for op in [FaluOp::Add, FaluOp::Sub, FaluOp::Mul, FaluOp::Div] {
            v.push(Inst::Falu {
                op,
                rd: R1,
                rs: R2,
                rt: R3,
            });
        }
        for op in [FcmpOp::Lt, FcmpOp::Le, FcmpOp::Eq] {
            v.push(Inst::Fcmp {
                op,
                rd: R1,
                rs: R2,
                rt: R3,
            });
        }
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in all_sample_insts() {
            let bytes = inst.encode();
            let back = Inst::decode(&bytes).expect("valid encoding");
            assert_eq!(inst, back, "round trip failed for {inst:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xff;
        assert_eq!(Inst::decode(&bytes), Err(DecodeError { opcode: 0xff }));
    }

    #[test]
    fn opcodes_are_distinct() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for inst in all_sample_insts() {
            let op = inst.encode()[0];
            // Distinct *kinds* map to distinct opcode bytes; re-encounters of
            // the same kind reuse theirs.
            let back = Inst::decode(&inst.encode()).unwrap();
            assert_eq!(inst, back);
            seen.insert(op);
        }
        assert!(seen.len() > 40);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_new_validates() {
        let _ = Reg::new(16);
    }

    #[test]
    fn reg_display() {
        assert_eq!(SP.to_string(), "r15");
        assert_eq!(R0.to_string(), "r0");
    }
}
