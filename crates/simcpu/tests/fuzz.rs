//! Robustness properties of the guest VM: no input — not even garbage
//! memory executed as code — may panic the interpreter, and the instruction
//! codec is total over its valid range.

use proptest::prelude::*;
use simcpu::cpu::Cpu;
use simcpu::isa::{Inst, INST_SIZE};
use simcpu::mem::FlatMem;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(decode(x))) == decode(x): decoding any 16 bytes either
    /// fails or yields an instruction whose encoding decodes identically.
    #[test]
    fn decode_encode_idempotent(raw in proptest::array::uniform16(any::<u8>())) {
        if let Ok(inst) = Inst::decode(&raw) {
            let re = inst.encode();
            let inst2 = Inst::decode(&re).expect("round-trip encodings decode");
            prop_assert_eq!(inst, inst2);
        }
    }

    /// Executing arbitrary bytes never panics: every abnormal situation is
    /// a typed `CpuFault`, and the machine never runs past its step budget.
    #[test]
    fn executing_garbage_never_panics(
        mem_bytes in proptest::collection::vec(any::<u8>(), 256..2048),
        entry_frac in 0.0f64..1.0,
        sp in any::<u16>(),
    ) {
        let size = mem_bytes.len();
        let mut mem = FlatMem::new(size);
        use simcpu::mem::Memory;
        mem.store(0, &mem_bytes).unwrap();
        let entry = ((size as f64 * entry_frac) as u64 / INST_SIZE) * INST_SIZE;
        let mut cpu = Cpu::new(entry);
        cpu.set_reg(simcpu::isa::SP, sp as u64);
        // Run a bounded number of steps; faults are fine, panics are not.
        let _ = cpu.run(&mut mem, 10_000);
    }

    /// The register file and PC round-trip through checkpoint accessors for
    /// any state.
    #[test]
    fn cpu_state_round_trips(
        regs in proptest::array::uniform16(any::<u64>()),
        pc in any::<u64>(),
        halted in any::<bool>(),
    ) {
        let cpu = Cpu::restore(regs, pc, halted);
        prop_assert_eq!(*cpu.regs(), regs);
        prop_assert_eq!(cpu.pc(), pc);
        prop_assert_eq!(cpu.is_halted(), halted);
        let copy = Cpu::restore(*cpu.regs(), cpu.pc(), cpu.is_halted());
        prop_assert_eq!(cpu, copy);
    }
}
