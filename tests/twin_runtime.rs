//! The twin-runtime property (the runtime-seam acceptance test): the
//! deterministic DES backend and the loopback-UDP backend must restore
//! **byte-identical** images for the same pinned workload.
//!
//! The workload runs to completion before capture on both backends, so
//! its image bytes are independent of *when* the capture happened — the
//! only thing the two backends can legitimately disagree on is timing,
//! and the digest deliberately excludes it.
//!
//! The net-backend tests probe `loopback_available()` first and skip
//! cleanly where the sandbox forbids even `127.0.0.1` sockets.

use cruz_repro::cluster::netrt::loopback_available;
use cruz_repro::cluster::{ClusterParams, JobSpec, NetRuntime, PodSpec, SimRuntime};
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::compute::ComputeConfig;
use cruz_repro::zap::image::MacMode;

/// The pinned single-node workload: a short compute pod on node 0,
/// coordinator on node 2, node 1 held as the restore spare.
fn twin_spec() -> JobSpec {
    let cfg = ComputeConfig {
        outer: 40,
        inner: 50,
    };
    JobSpec {
        name: "twin".into(),
        coordinator_node: 2,
        pods: vec![PodSpec {
            name: "p0".into(),
            ip: IpAddr::from_octets([10, 0, 1, 9]),
            mac_mode: MacMode::Dedicated(MacAddr::from_index(3001)),
            node: 0,
            programs: vec![cfg.program()],
        }],
    }
}

#[test]
fn sim_and_net_backends_restore_identical_images() {
    let spec = twin_spec();
    let mut sim = SimRuntime::new(3, ClusterParams::default());
    let sim_rep = sim.run_cycle(&spec, 1).expect("sim cycle completes");
    assert_eq!(sim_rep.restored_pods, vec!["p0".to_string()]);

    if !loopback_available() {
        eprintln!("SKIPPED: loopback UDP unavailable in this environment");
        return;
    }
    let net = NetRuntime::new(3, ClusterParams::default());
    let net_rep = net.run_cycle(&spec, 1).expect("net cycle completes");
    assert_eq!(net_rep.restored_pods, sim_rep.restored_pods);
    assert_eq!(
        net_rep.restored_digest, sim_rep.restored_digest,
        "twin runtimes disagree on restored image bytes"
    );
}

#[test]
fn sim_cycle_is_replayable() {
    let spec = twin_spec();
    let a = SimRuntime::new(3, ClusterParams::default())
        .run_cycle(&spec, 1)
        .expect("first sim cycle");
    let b = SimRuntime::new(3, ClusterParams::default())
        .run_cycle(&spec, 1)
        .expect("second sim cycle");
    assert_eq!(a, b, "the DES backend must replay identically");
}

#[test]
fn net_runtime_shuts_down_cleanly_under_fault() {
    if !loopback_available() {
        eprintln!("SKIPPED: loopback UDP unavailable in this environment");
        return;
    }
    let spec = twin_spec();
    let net = NetRuntime::new(3, ClusterParams::default());
    let rep = net.run_cycle(&spec, 1).expect("net cycle completes");
    // Every OS thread spawned (3 nodes + store service) was joined — no
    // hung threads, and every socket they owned is closed with them.
    assert_eq!(rep.joined_threads, 4, "hung or leaked node threads");
    // Exactly the fault-injected node died fail-stop; the heartbeat pass
    // over real sockets converged on it.
    assert_eq!(rep.killed_threads, 1);
    assert_eq!(rep.failed_nodes, vec![0]);
    assert!(rep.workloads_finished >= 1);
    assert!(rep.pings_sent > 0);
    assert!(rep.pongs_received <= rep.pings_sent);
}
