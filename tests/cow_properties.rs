//! Property tests for copy-on-write snapshot capture: however the guest
//! races the drain, what drains out is byte-identical to a stop-the-world
//! capture of the same frozen instant.
//!
//! Two layers are checked. At the memory layer, an armed
//! [`AddressSpace`] snapshot subjected to arbitrary post-arm writes,
//! page installs, unmaps and remaps must drain exactly the pages a
//! frozen clone holds. At the cluster layer, twin worlds checkpointing
//! the same instant — one stop-the-world, one `CkptCaptureMode::Cow` —
//! must commit byte-identical epochs while both jobs run to a correct
//! finish.

use cruz_repro::cluster::world::CkptOptions;
use cruz_repro::cluster::{CkptCaptureMode, ClusterParams, JobSpec, PodSpec, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::simos::mem::{AddressSpace, PAGE_SIZE};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;
use proptest::prelude::*;

const AREA_A: u64 = 0x1_0000;
const AREA_A_PAGES: u64 = 16;
const AREA_B: u64 = 0x8_0000;
const AREA_B_PAGES: u64 = 8;

/// One step a guest (or the loader/restorer acting on its behalf) can take
/// against the address space.
#[derive(Debug, Clone)]
enum MemOp {
    /// Store a few bytes somewhere in a mapped area.
    Write { addr: u64, val: u8, len: usize },
    /// Install a whole page image (program load / restore path).
    Install { page: u64, fill: u8 },
    /// Drop area B and all its pages.
    UnmapB,
    /// Map area B again (demand-zero).
    RemapB,
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        6 => (
            0u64..(AREA_A_PAGES + AREA_B_PAGES) * PAGE_SIZE,
            any::<u8>(),
            1usize..64,
        )
            .prop_map(|(off, val, len)| {
                // Fold the flat offset into one of the two areas, keeping
                // the write inside a single page so it cannot run off the
                // end of the area.
                let (base, pages) = if off < AREA_A_PAGES * PAGE_SIZE {
                    (AREA_A, AREA_A_PAGES)
                } else {
                    (AREA_B, AREA_B_PAGES)
                };
                let off = off % (pages * PAGE_SIZE);
                let len = len.min((PAGE_SIZE - off % PAGE_SIZE) as usize);
                MemOp::Write { addr: base + off, val, len }
            }),
        2 => (0u64..AREA_A_PAGES + AREA_B_PAGES, any::<u8>()).prop_map(|(i, fill)| {
            let page = if i < AREA_A_PAGES {
                AREA_A + i * PAGE_SIZE
            } else {
                AREA_B + (i - AREA_A_PAGES) * PAGE_SIZE
            };
            MemOp::Install { page, fill }
        }),
        1 => Just(MemOp::UnmapB),
        1 => Just(MemOp::RemapB),
    ]
}

/// Applies one op, tracking whether area B is currently mapped so writes
/// are only aimed at mapped memory (unmapped stores fault in the guest;
/// here they would just clutter the generator with rejected cases).
fn apply(space: &mut AddressSpace, b_mapped: &mut bool, op: &MemOp) {
    match op {
        MemOp::Write { addr, val, len } => {
            if *addr >= AREA_B && !*b_mapped {
                return;
            }
            space
                .write_bytes(*addr, &vec![*val; *len])
                .expect("write to mapped area");
        }
        MemOp::Install { page, fill } => {
            if *page >= AREA_B && !*b_mapped {
                return;
            }
            space.install_page(*page, &vec![*fill; PAGE_SIZE as usize]);
        }
        MemOp::UnmapB => {
            if *b_mapped {
                assert!(space.unmap(AREA_B));
                *b_mapped = false;
            }
        }
        MemOp::RemapB => {
            if !*b_mapped {
                space.map(AREA_B, AREA_B_PAGES * PAGE_SIZE, "b").unwrap();
                *b_mapped = true;
            }
        }
    }
}

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// Runs the pingpong world to `at_us`, checkpoints with `opts`, and
/// returns the committed epoch's images plus the finished world.
fn checkpoint_at(at_us: u64, seed: u64, opts: CkptOptions) -> (Vec<(String, Vec<u8>)>, World) {
    let mut w = World::new(
        5,
        ClusterParams {
            seed,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&pingpong_spec(300)).unwrap();
    w.run_for(SimDuration::from_micros(at_us));
    let op = w.start_checkpoint_with("pp", opts).unwrap();
    assert!(w.run_until_op(op, 20_000_000), "checkpoint completes");
    let store = w.store("pp");
    assert!(store.is_committed(op), "epoch committed");
    let mut images = Vec::new();
    for pod in store.pods_in_epoch(op) {
        let bytes = store.get_image(&pod, op).expect("image reconstructs");
        images.push((pod, bytes));
    }
    (images, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An armed snapshot drains the frozen instant byte-for-byte, no matter
    /// what the owner writes, installs, unmaps or remaps in between — and
    /// the live space keeps the post-arm state untouched.
    #[test]
    fn cow_drain_matches_frozen_clone_under_arbitrary_writes(
        pre in proptest::collection::vec(arb_mem_op(), 0..32),
        clear_dirty_mid in any::<bool>(),
        post in proptest::collection::vec(arb_mem_op(), 0..32),
    ) {
        let mut space = AddressSpace::new();
        space.map(AREA_A, AREA_A_PAGES * PAGE_SIZE, "a").unwrap();
        space.map(AREA_B, AREA_B_PAGES * PAGE_SIZE, "b").unwrap();
        let mut b_mapped = true;
        for (i, op) in pre.iter().enumerate() {
            if clear_dirty_mid && i == pre.len() / 2 {
                // An earlier epoch captured here: the arm-time dirty set
                // (what incremental drains) is a strict subset of pages.
                space.clear_dirty();
            }
            apply(&mut space, &mut b_mapped, op);
        }

        // The stop-the-world reference: a clone frozen at the arm instant.
        let frozen = space.clone();
        space.cow_arm();
        for op in &post {
            apply(&mut space, &mut b_mapped, op);
        }

        let full: Vec<(u64, Vec<u8>)> = frozen
            .nonzero_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        prop_assert_eq!(&space.cow_snapshot_pages(), &full);
        prop_assert_eq!(
            space.cow_pending_bytes(false),
            full.len() as u64 * PAGE_SIZE
        );

        let dirty: Vec<(u64, Vec<u8>)> = frozen
            .dirty_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        prop_assert_eq!(&space.cow_snapshot_dirty_pages(), &dirty);
        prop_assert_eq!(
            space.cow_pending_bytes(true),
            dirty.len() as u64 * PAGE_SIZE
        );

        // Disarming frees the snapshot but not the live (post-arm) pages.
        let copied = space.cow_disarm();
        prop_assert!(copied.is_multiple_of(PAGE_SIZE));
        prop_assert!(!space.cow_armed());
        let live: Vec<(u64, Vec<u8>)> = space
            .nonzero_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        let mut replay = frozen;
        let mut b = replay.area_for(AREA_B).is_some();
        for op in &post {
            apply(&mut replay, &mut b, op);
        }
        let expect_live: Vec<(u64, Vec<u8>)> = replay
            .nonzero_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        prop_assert_eq!(live, expect_live);
    }

    /// Twin worlds checkpoint the same instant of the same run — one
    /// stop-the-world, one COW capture. The committed epochs must be
    /// byte-identical and both applications finish correctly: the capture
    /// discipline is invisible above the store API.
    #[test]
    fn cow_epoch_is_byte_identical_to_stop_the_world(
        at_us in 200u64..12_000,
        optimized in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mode = if optimized { ProtocolMode::Optimized } else { ProtocolMode::Blocking };
        let stw = CkptOptions { mode, ..CkptOptions::default() };
        let cow = CkptOptions {
            mode,
            capture: Some(CkptCaptureMode::Cow),
            ..CkptOptions::default()
        };
        let (stw_images, mut w_stw) = checkpoint_at(at_us, seed, stw);
        let (cow_images, mut w_cow) = checkpoint_at(at_us, seed, cow);

        prop_assert_eq!(stw_images.len(), cow_images.len());
        for ((pod_s, bytes_s), (pod_c, bytes_c)) in
            stw_images.iter().zip(cow_images.iter())
        {
            prop_assert_eq!(pod_s, pod_c, "pod inventory diverged");
            prop_assert_eq!(
                bytes_s, bytes_c,
                "image for pod `{}` differs between capture modes", pod_s
            );
        }
        for w in [&mut w_stw, &mut w_cow] {
            prop_assert!(w.run_until_pred(100_000_000, |w| w.job_finished("pp")));
            prop_assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
            prop_assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
        }
    }
}
