//! System-level property tests: checkpoints and restarts at *arbitrary*
//! moments must never corrupt a strictly-checked application.

use cruz_repro::cluster::{ClusterParams, JobSpec, PodSpec, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::{SimDuration, SimTime};
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;
use proptest::prelude::*;

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A checkpoint at any instant, under any protocol variant (blocking or
    /// optimized, full or COW), is invisible to a token exchange that
    /// checks every byte.
    #[test]
    fn checkpoint_at_any_moment_is_transparent(
        at_us in 200u64..15_000,
        optimized in any::<bool>(),
        cow in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut w = World::new(5, ClusterParams { seed, ..ClusterParams::default() });
        w.launch_job(&pingpong_spec(300)).unwrap();
        w.run_for(SimDuration::from_micros(at_us));
        let mode = if optimized { ProtocolMode::Optimized } else { ProtocolMode::Blocking };
        let op = w.start_checkpoint_opts("pp", mode, cow, None).unwrap();
        prop_assert!(w.run_until_op(op, 20_000_000));
        prop_assert!(w.run_until_pred(100_000_000, |w| w.job_finished("pp")));
        prop_assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
        prop_assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
        prop_assert!(w.store("pp").is_committed(op));
    }

    /// A random sequence of operational events — checkpoints (any flavour),
    /// live migrations, whole-job crash+restarts — never corrupts the
    /// application.
    #[test]
    fn random_operational_history_is_transparent(
        ops in proptest::collection::vec(0u8..6, 1..4),
        seed in 0u64..1_000,
    ) {
        let mut w = World::new(12, ClusterParams { seed, ..ClusterParams::default() });
        w.launch_job(&pingpong_spec(900)).unwrap();
        // Node pool for re-placements; the job starts on nodes 0 and 1.
        let mut fresh = vec![2usize, 3, 6, 7, 8, 9, 10, 11];
        let mut server_node = 0usize;
        let mut client_node = 1usize;
        let mut last_epoch = None;
        for op in ops {
            w.run_for(SimDuration::from_millis(2));
            if w.job_finished("pp") {
                break;
            }
            match op {
                // Checkpoints in every flavour.
                0..=3 => {
                    let mode = if op & 1 == 0 { ProtocolMode::Blocking } else { ProtocolMode::Optimized };
                    let cow = op & 2 != 0;
                    // A migration may still be settling: busy is a valid refusal.
                    if let Ok(e) = w.start_checkpoint_opts("pp", mode, cow, None) {
                        prop_assert!(w.run_until_op(e, 50_000_000));
                        last_epoch = Some(e);
                    }
                }
                // Live-migrate the server.
                4 => {
                    if let Some(dst) = fresh.pop() {
                        match w.migrate_pod("pp", "server", dst) {
                            Ok(()) => server_node = dst,
                            Err(_) => fresh.push(dst), // busy: keep the node
                        }
                    }
                }
                // Crash both app nodes and restart from the last epoch
                // (only when no migration/op is still settling — crashing
                // mid-operation is covered by the timeout-abort test).
                _ => {
                    if let (Some(e), true, false) =
                        (last_epoch, fresh.len() >= 2, w.job_busy("pp"))
                    {
                        w.crash_node(server_node);
                        w.crash_node(client_node);
                        let s = fresh.pop().unwrap();
                        let c = fresh.pop().unwrap();
                        let rs = w
                            .start_restart(
                                "pp",
                                e,
                                &[("server".into(), s), ("client".into(), c)],
                                ProtocolMode::Blocking,
                            )
                            .unwrap();
                        prop_assert!(w.run_until_op(rs, 50_000_000));
                        server_node = s;
                        client_node = c;
                    }
                }
            }
        }
        prop_assert!(w.run_until_pred(200_000_000, |w| w.job_finished("pp")));
        prop_assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
        prop_assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    }

    /// Crash-then-restart at any checkpointed instant replays to a correct
    /// completion, on whichever spare nodes the scheduler picks.
    #[test]
    fn restart_from_any_checkpoint_is_exactly_once(
        ckpt_at_us in 500u64..12_000,
        crash_after_us in 100u64..8_000,
        swap_nodes in any::<bool>(),
    ) {
        let mut w = World::new(5, ClusterParams::default());
        w.launch_job(&pingpong_spec(400)).unwrap();
        w.run_for(SimDuration::from_micros(ckpt_at_us));
        let ck = w.start_checkpoint("pp", ProtocolMode::Blocking, None).unwrap();
        prop_assert!(w.run_until_op(ck, 20_000_000));
        w.run_for(SimDuration::from_micros(crash_after_us));
        w.crash_node(0);
        w.crash_node(1);
        let (s, c) = if swap_nodes { (3usize, 2usize) } else { (2, 3) };
        let rs = w
            .start_restart(
                "pp",
                ck,
                &[("server".into(), s), ("client".into(), c)],
                ProtocolMode::Blocking,
            )
            .unwrap();
        prop_assert!(w.run_until_op(rs, 20_000_000));
        prop_assert!(w.run_until_pred(100_000_000, |w| w.job_finished("pp")));
        // Exit 7 would mean a duplicated/lost/reordered token; 9 a socket
        // error; only 0 is a correct exactly-once replay.
        prop_assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
        prop_assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    }
}

#[test]
fn determinism_same_seed_same_world() {
    let run = |seed: u64| -> (SimTime, Option<u64>, Option<u64>) {
        let mut w = World::new(
            5,
            ClusterParams {
                seed,
                ..ClusterParams::default()
            },
        );
        w.launch_job(&pingpong_spec(120)).unwrap();
        w.run_for(SimDuration::from_millis(3));
        let op = w
            .start_checkpoint("pp", ProtocolMode::Blocking, None)
            .unwrap();
        assert!(w.run_until_op(op, 20_000_000));
        assert!(w.run_until_pred(100_000_000, |w| w.job_finished("pp")));
        (
            w.now,
            w.pod_exit_code("pp", "server", 1),
            w.pod_exit_code("pp", "client", 1),
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "identical seeds must give bit-identical runs");
}
