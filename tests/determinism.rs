//! The determinism regression test: the invariant `cruz-lint` exists to
//! protect, checked end to end.
//!
//! Two runs of the same scenario with the same seed must be
//! indistinguishable: the same event trace (witnessed by the world's
//! FNV fold over every dispatched event) and **byte-identical**
//! checkpoint images. This is what makes simulated experiments
//! reproducible, and it is exactly what a stray `HashMap` iteration
//! breaks — `RandomState` reseeds per process, so iteration order (and
//! everything downstream of it) diverges between runs.

use cruz_repro::cluster::{CkptCaptureMode, ClusterParams, JobSpec, PodSpec, StoreConfig, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// Everything one run leaves behind that a divergent twin could differ
/// in: trace digest, event count, final clock, and every stored image.
#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    trace_digest: u64,
    events: u64,
    final_nanos: u64,
    /// (pod, epoch, image bytes) for every committed epoch, in order.
    images: Vec<(String, u64, Vec<u8>)>,
    exit_codes: (Option<u64>, Option<u64>),
}

fn run_scenario(seed: u64) -> RunOutcome {
    run_scenario_with(seed, StoreConfig::default())
}

fn run_scenario_with(seed: u64, store: StoreConfig) -> RunOutcome {
    run_scenario_params(ClusterParams {
        seed,
        store,
        ..ClusterParams::default()
    })
}

fn run_scenario_params(params: ClusterParams) -> RunOutcome {
    let mut w = World::new(5, params);
    w.launch_job(&pingpong_spec(200)).expect("job launches");
    w.run_for(SimDuration::from_millis(2));

    // Checkpoint mid-run, keep going, checkpoint again (so the store holds
    // several epochs' worth of images), then let the job finish.
    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("first checkpoint starts");
    assert!(w.run_until_op(op1, 20_000_000), "first checkpoint finishes");
    w.run_for(SimDuration::from_millis(2));
    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Optimized, None)
        .expect("second checkpoint starts");
    assert!(
        w.run_until_op(op2, 20_000_000),
        "second checkpoint finishes"
    );
    assert!(
        w.run_until_pred(100_000_000, |w| w.job_finished("pp")),
        "job runs to completion"
    );

    let store = w.store("pp");
    let mut images = Vec::new();
    for epoch in store.committed_epochs() {
        for pod in store.pods_in_epoch(epoch) {
            let bytes = store
                .get_image(&pod, epoch)
                .expect("committed image exists");
            images.push((pod, epoch, bytes));
        }
    }
    assert!(
        !images.is_empty(),
        "the scenario must actually store images"
    );

    RunOutcome {
        trace_digest: w.trace_digest(),
        events: w.events_processed(),
        final_nanos: w.now.as_nanos(),
        images,
        exit_codes: (
            w.pod_exit_code("pp", "server", 1),
            w.pod_exit_code("pp", "client", 1),
        ),
    }
}

fn assert_outcomes_identical(a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(
        a.trace_digest, b.trace_digest,
        "event traces diverged: some event source is nondeterministic"
    );
    assert_eq!(a.events, b.events, "event counts diverged");
    assert_eq!(a.final_nanos, b.final_nanos, "final clocks diverged");
    assert_eq!(a.exit_codes, b.exit_codes, "workload outcomes diverged");
    assert_eq!(
        a.images.len(),
        b.images.len(),
        "different number of stored images"
    );
    for ((pod_a, epoch_a, bytes_a), (pod_b, epoch_b, bytes_b)) in
        a.images.iter().zip(b.images.iter())
    {
        assert_eq!(
            (pod_a, epoch_a),
            (pod_b, epoch_b),
            "image inventory diverged"
        );
        assert_eq!(
            bytes_a, bytes_b,
            "checkpoint image for pod `{pod_a}` epoch {epoch_a} is not byte-identical"
        );
    }
}

#[test]
fn same_seed_same_trace_and_byte_identical_images() {
    let a = run_scenario(0xC0FFEE);
    let b = run_scenario(0xC0FFEE);
    assert_outcomes_identical(&a, &b);
}

#[test]
fn cow_capture_runs_are_deterministic() {
    // COW capture adds a whole new event flow — snapshot arming, the
    // deferred CkptDrain materialization, retroactive disk batches and
    // pre-image copies taken by resumed guests — all of which must replay
    // identically under the same seed.
    let params = |seed| ClusterParams {
        seed,
        capture: CkptCaptureMode::Cow,
        ..ClusterParams::default()
    };
    let a = run_scenario_params(params(0xC0FFEE));
    let b = run_scenario_params(params(0xC0FFEE));
    assert_outcomes_identical(&a, &b);
}

#[test]
fn dedup_store_runs_are_deterministic() {
    // The content-addressed store threads extra state through checkpoint
    // write-out (chunk hashing, refcounts, batched disk submission); two
    // same-seed runs over it must still be indistinguishable.
    let a = run_scenario_with(0xC0FFEE, StoreConfig::dedup_compress());
    let b = run_scenario_with(0xC0FFEE, StoreConfig::dedup_compress());
    assert_outcomes_identical(&a, &b);
}

/// What survives a crash-and-restart leg: whether the job completed, how
/// its programs exited, and the restored view of the first epoch's images.
#[derive(Debug)]
struct RestartOutcome {
    finished: bool,
    exit_codes: (Option<u64>, Option<u64>),
    /// (pod, reassembled image bytes) for the epoch the job restarts from.
    epoch_images: Vec<(String, Vec<u8>)>,
}

fn run_restart_scenario(store: StoreConfig) -> RestartOutcome {
    let mut w = World::new(
        5,
        ClusterParams {
            seed: 7,
            store,
            ..ClusterParams::default()
        },
    );
    w.launch_job(&pingpong_spec(200)).expect("job launches");
    w.run_for(SimDuration::from_millis(2));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("checkpoint starts");
    assert!(w.run_until_op(op, 20_000_000), "checkpoint finishes");

    // Snapshot the store's view of the epoch before timing diverges
    // between store variants (later sim times depend on disk traffic).
    let store_handle = w.store("pp");
    let mut epoch_images = Vec::new();
    for pod in store_handle.pods_in_epoch(op) {
        let bytes = store_handle
            .get_image(&pod, op)
            .expect("committed image reconstructs");
        epoch_images.push((pod, bytes));
    }

    // Lose both worker nodes and restart the job on the spares from the
    // epoch just taken.
    w.run_for(SimDuration::from_millis(1));
    w.crash_node(0);
    w.crash_node(1);
    let placement = vec![("server".to_string(), 2), ("client".to_string(), 3)];
    let rs = w
        .start_restart("pp", op, &placement, ProtocolMode::Blocking)
        .expect("restart starts");
    assert!(w.run_until_op(rs, 20_000_000), "restart completes");
    let finished = w.run_until_pred(100_000_000, |w| w.job_finished("pp"));
    RestartOutcome {
        finished,
        exit_codes: (
            w.pod_exit_code("pp", "server", 1),
            w.pod_exit_code("pp", "client", 1),
        ),
        epoch_images,
    }
}

#[test]
fn restart_from_dedup_store_matches_plain_full_image() {
    // The store representation must be invisible above the store API: a
    // world restarted from chunked+compressed manifests sees exactly the
    // bytes a plain full image would hand it, and the application reaches
    // the same outcome. (Traces are *not* compared — disk timing legitimately
    // differs between representations.)
    let plain = run_restart_scenario(StoreConfig::default());
    let dedup = run_restart_scenario(StoreConfig::dedup_compress());

    assert_eq!(
        plain.epoch_images.len(),
        dedup.epoch_images.len(),
        "stores disagree on the pods in the restart epoch"
    );
    for ((pod_p, bytes_p), (pod_d, bytes_d)) in
        plain.epoch_images.iter().zip(dedup.epoch_images.iter())
    {
        assert_eq!(pod_p, pod_d, "pod inventory diverged");
        assert_eq!(
            bytes_p, bytes_d,
            "restored image for pod `{pod_p}` differs between plain and dedup stores"
        );
    }
    assert!(plain.finished, "plain-store restart did not finish the job");
    assert!(dedup.finished, "dedup-store restart did not finish the job");
    assert_eq!(
        plain.exit_codes, dedup.exit_codes,
        "application outcomes diverged across store representations"
    );
}

#[test]
fn different_seeds_diverge() {
    // The digest must be a meaningful witness: runs that *should* differ
    // must not collide. The seed only feeds fault injection, so give it
    // something to decide: a lossy fabric (TCP retransmits carry the
    // workload through).
    let run = |seed: u64| -> u64 {
        let mut w = World::new(
            5,
            ClusterParams {
                seed,
                frame_loss: 0.05,
                ..ClusterParams::default()
            },
        );
        w.launch_job(&pingpong_spec(50)).expect("job launches");
        w.run_for(SimDuration::from_millis(40));
        w.trace_digest()
    };
    assert_ne!(
        run(1),
        run(2),
        "different seeds produced identical traces; the digest is vacuous"
    );
}
