//! Golden-trace regression: pinned pre-refactor `trace_digest` values.
//!
//! `tests/determinism.rs` proves *two runs of the same build* agree; this
//! suite proves *every future build* agrees with the build that pinned
//! these constants. The values below were captured from the cluster engine
//! before it was decomposed into the layered `transport`/`events`/`ops`/
//! `drain`/`heartbeat` modules, so a refactor that perturbs event order,
//! timing, or message flow in any way — even one that is internally
//! self-consistent — fails here byte-for-byte.
//!
//! If one of these asserts fires, the refactor changed behavior. Do not
//! re-pin the constants unless the behavior change is itself the point of
//! the PR (and say so in its description).

use cruz_repro::cluster::{
    CkptCaptureMode, ClusterParams, FaultPlan, JobSpec, PodSpec, StoreConfig, World,
};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;

/// One run's whole observable identity: the event-trace digest, the event
/// count, and the final simulated clock.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    trace_digest: u64,
    events: u64,
    final_nanos: u64,
}

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// The `tests/determinism.rs` scenario: launch, two checkpoints (blocking
/// then optimized), run to completion.
fn ckpt_run(params: ClusterParams) -> Fingerprint {
    let mut w = World::new(5, params);
    w.launch_job(&pingpong_spec(200)).expect("job launches");
    w.run_for(SimDuration::from_millis(2));
    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("first checkpoint starts");
    assert!(w.run_until_op(op1, 20_000_000), "first checkpoint finishes");
    w.run_for(SimDuration::from_millis(2));
    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Optimized, None)
        .expect("second checkpoint starts");
    assert!(
        w.run_until_op(op2, 20_000_000),
        "second checkpoint finishes"
    );
    assert!(
        w.run_until_pred(100_000_000, |w| w.job_finished("pp")),
        "job runs to completion"
    );
    Fingerprint {
        trace_digest: w.trace_digest(),
        events: w.events_processed(),
        final_nanos: w.now.as_nanos(),
    }
}

/// The `tests/chaos_properties.rs` replay scenario: clean baseline
/// checkpoint, seeded fault plan (round-tripped through its wire codec),
/// periodic checkpoints under fire, fixed horizon, recovery manager on.
fn chaos_run(world_seed: u64, plan_seed: u64) -> Fingerprint {
    let mut p = ClusterParams {
        seed: world_seed,
        store: StoreConfig::dedup(),
        ..ClusterParams::default()
    };
    p.recovery.enabled = true;
    let mut w = World::new(6, p);
    w.launch_job(&pingpong_spec(500)).expect("job launches");
    w.run_for(SimDuration::from_millis(2));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("baseline checkpoint starts");
    assert!(w.run_until_op(op, 20_000_000), "baseline checkpoint");
    let plan =
        FaultPlan::decode(&FaultPlan::random(plan_seed, 2).encode()).expect("plan round-trips");
    w.install_fault_plan(&plan);
    w.schedule_periodic_checkpoints(
        "pp",
        SimDuration::from_millis(4),
        ProtocolMode::Blocking,
        false,
    )
    .expect("periodic driver arms");
    w.run_for(SimDuration::from_millis(120));
    Fingerprint {
        trace_digest: w.trace_digest(),
        events: w.events_processed(),
        final_nanos: w.now.as_nanos(),
    }
}

fn check(label: &str, got: Fingerprint, want: Fingerprint) {
    assert_eq!(
        got, want,
        "`{label}` diverged from the pinned pre-refactor trace \
         (got {got:?}, pinned {want:?}): the engine is no longer \
         behavior-preserving"
    );
}

/// The determinism seed under the default stop-the-world capture and plain
/// store — the baseline protocol path (Fig. 2/Fig. 4 flows).
#[test]
fn golden_stw_plain_store() {
    check(
        "stw/plain",
        ckpt_run(ClusterParams {
            seed: 0xC0FFEE,
            ..ClusterParams::default()
        }),
        Fingerprint {
            trace_digest: 14988675401519487911,
            events: 2134,
            final_nanos: 209282169,
        },
    );
}

/// The same seed through the content-addressed dedup store: chunk hashing,
/// refcounts and batched disk submission all ride the trace.
#[test]
fn golden_dedup_store() {
    check(
        "stw/dedup",
        ckpt_run(ClusterParams {
            seed: 0xC0FFEE,
            store: StoreConfig::dedup_compress(),
            ..ClusterParams::default()
        }),
        Fingerprint {
            trace_digest: 902494253537125112,
            events: 2134,
            final_nanos: 209282169,
        },
    );
}

/// The same seed under COW capture: snapshot arming, early resume, the
/// deferred drain and retroactive disk batches (the `BENCH_cow_downtime`
/// event flow).
#[test]
fn golden_cow_capture() {
    check(
        "cow",
        ckpt_run(ClusterParams {
            seed: 0xC0FFEE,
            capture: CkptCaptureMode::Cow,
            ..ClusterParams::default()
        }),
        Fingerprint {
            trace_digest: 285306471815407570,
            events: 2154,
            final_nanos: 209282169,
        },
    );
}

/// The chaos replay seeds: heartbeat detection, force-abort, rollback and
/// automatic restart under seeded crash/disk/frame faults (the
/// `BENCH_recovery` event flow).
#[test]
fn golden_recovery_chaos() {
    let pinned = [
        (
            (1u64, 7u64),
            Fingerprint {
                trace_digest: 18056192805183332862,
                events: 846,
                final_nanos: 127733959,
            },
        ),
        (
            (2, 19),
            Fingerprint {
                trace_digest: 16242873961010553495,
                events: 1223,
                final_nanos: 127733959,
            },
        ),
        (
            (9, 104),
            Fingerprint {
                trace_digest: 7634430727536821022,
                events: 1184,
                final_nanos: 127733959,
            },
        ),
    ];
    for ((ws, ps), want) in pinned {
        check(&format!("chaos {ws}/{ps}"), chaos_run(ws, ps), want);
    }
}
