//! Chaos suite: seeded fault plans against the self-healing world.
//!
//! Three system-level properties must hold under *any* plan drawn from
//! [`FaultPlan::random`]:
//!
//! (a) no committed epoch is ever lost or made unreadable;
//! (b) a recovered job restarts from a committed epoch whose stored images
//!     are byte-identical to what was captured when the epoch committed;
//! (c) the world always quiesces — every started operation settles instead
//!     of hanging forever.
//!
//! On top of the properties, pinned-plan tests exercise the acceptance
//! scenario (crash mid-checkpoint → heartbeat detection → automatic restart
//! from the last committed epoch) and the coordinator-failover path, and a
//! replay test proves the same fault-plan seed reproduces the identical
//! event trace.

use std::collections::BTreeMap;

use cruz_repro::cluster::{
    ClusterParams, CrashFault, FaultPlan, JobSpec, PodSpec, ProtocolPoint, RecoveryCause,
    RecoveryOutcome, StoreConfig, World,
};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;
use proptest::prelude::*;

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// Six nodes, chunked store, recovery manager on.
fn chaos_params(seed: u64) -> ClusterParams {
    let mut p = ClusterParams {
        seed,
        store: StoreConfig::dedup(),
        ..ClusterParams::default()
    };
    p.recovery.enabled = true;
    p
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of every pod image in every currently committed epoch.
fn committed_digests(w: &World, job: &str) -> BTreeMap<(u64, String), u64> {
    let store = w.store(job);
    let mut out = BTreeMap::new();
    for e in store.committed_epochs() {
        for pod in store.pods_in_epoch(e) {
            if let Some(img) = store.get_image(&pod, e) {
                out.insert((e, pod), fnv(&img));
            }
        }
    }
    out
}

/// The ISSUE acceptance scenario: a node crashed mid-checkpoint by a seeded
/// plan is detected by heartbeat timeout and the job automatically restarts
/// from the last committed epoch with byte-identical stored images.
#[test]
fn crash_mid_checkpoint_heals_from_last_committed_epoch() {
    let mut w = World::new(6, chaos_params(11));
    w.launch_job(&pingpong_spec(1200)).unwrap();
    w.run_for(SimDuration::from_millis(2));

    // One clean committed epoch before any fault can strike.
    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op1, 20_000_000));
    assert!(w.store("pp").is_committed(op1));
    let before = committed_digests(&w, "pp");
    assert!(!before.is_empty());

    // Kill the client's node the moment its local save completes but before
    // the image is durable — the window the two-phase commit exists to cover.
    let mut plan = FaultPlan::none(5);
    plan.crashes.push(CrashFault {
        node: 1,
        point: ProtocolPoint::LocalDoneToDurable,
        nth: 0,
    });
    w.install_fault_plan(&plan);
    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    let healed = w.run_until_pred(60_000_000, |w| {
        w.recovery_reports()
            .iter()
            .any(|r| r.outcome == RecoveryOutcome::Recovered)
    });
    assert!(healed, "heartbeat timeout must detect the crash and heal");

    let r = w
        .recovery_reports()
        .iter()
        .find(|r| r.outcome == RecoveryOutcome::Recovered)
        .unwrap()
        .clone();
    assert_eq!(r.cause, RecoveryCause::HeartbeatTimeout);
    assert!(r.dead_nodes.contains(&1));
    assert_eq!(r.rollback_epoch, Some(op1));
    assert!(r.aborted_ops.contains(&op2));
    assert!(r.detection_latency() > SimDuration::ZERO);
    assert!(r.mttr().is_some());
    assert!(r.mttr().unwrap() >= r.detection_latency());

    // The interrupted epoch never became visible; committed state is
    // byte-identical to what was captured before the fault; nothing the
    // dead node half-wrote survives as an orphan chunk.
    assert!(!w.store("pp").is_committed(op2));
    assert_eq!(committed_digests(&w, "pp"), before);
    assert!(w.store("pp").orphan_chunks().is_empty());

    // And the application, re-homed onto a spare, still finishes clean.
    assert!(w.run_until_pred(400_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    assert_ne!(w.job("pp").unwrap().placement("client").unwrap().node, 1);
}

/// Killing the coordinator node re-homes the control plane: the next
/// heartbeat round notices, picks a new coordinator, and later operations
/// run from the new home while the application never notices.
#[test]
fn dead_coordinator_fails_over_and_the_job_completes() {
    let mut w = World::new(6, chaos_params(3));
    w.launch_job(&pingpong_spec(600)).unwrap();
    w.run_for(SimDuration::from_millis(1));
    w.crash_node(4);
    let moved = w.run_until_pred(50_000_000, |w| {
        w.recovery_reports()
            .iter()
            .any(|r| r.cause == RecoveryCause::CoordinatorFailover)
    });
    assert!(moved, "heartbeat must notice the dead coordinator");
    let new_coord = w.job("pp").unwrap().coordinator_node;
    assert_ne!(new_coord, 4);
    assert!(w.node_alive(new_coord));

    // The re-homed control plane still drives a full checkpoint.
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 20_000_000));
    assert!(w.store("pp").is_committed(op));
    assert!(w.run_until_pred(200_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

/// One full chaos run: clean baseline checkpoint, random plan installed,
/// periodic checkpoints, fixed sim horizon. Returns the replay fingerprint.
fn chaos_run(world_seed: u64, plan_seed: u64) -> (u64, u64) {
    let mut w = World::new(6, chaos_params(world_seed));
    w.launch_job(&pingpong_spec(500)).unwrap();
    w.run_for(SimDuration::from_millis(2));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 20_000_000));
    // Round-trip the plan through its wire form: the replayed bytes must
    // drive the run, not just the in-memory value.
    let plan = FaultPlan::decode(&FaultPlan::random(plan_seed, 2).encode()).unwrap();
    w.install_fault_plan(&plan);
    w.schedule_periodic_checkpoints(
        "pp",
        SimDuration::from_millis(4),
        ProtocolMode::Blocking,
        false,
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(120));
    (w.trace_digest(), w.events_processed())
}

/// The same world seed plus the same fault-plan seed reproduces the
/// identical event trace, byte for byte, through the encode/decode path.
#[test]
fn same_fault_plan_seed_replays_the_identical_trace() {
    for (ws, ps) in [(1u64, 7u64), (2, 19), (9, 104)] {
        assert_eq!(chaos_run(ws, ps), chaos_run(ws, ps), "seeds {ws}/{ps}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Properties (a), (b), (c) under arbitrary seeded fault plans.
    #[test]
    fn chaos_never_loses_committed_state(
        world_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
    ) {
        let mut w = World::new(6, chaos_params(world_seed));
        w.launch_job(&pingpong_spec(600)).unwrap();
        w.run_for(SimDuration::from_millis(2));

        // A clean committed baseline before any fault can strike.
        let op = w.start_checkpoint("pp", ProtocolMode::Blocking, None).unwrap();
        prop_assert!(w.run_until_op(op, 20_000_000));
        prop_assert!(w.store("pp").is_committed(op));

        w.install_fault_plan(&FaultPlan::random(plan_seed, 2));
        w.schedule_periodic_checkpoints(
            "pp",
            SimDuration::from_millis(4),
            ProtocolMode::Blocking,
            false,
        ).unwrap();

        // Drive the run, recording each epoch's digests the first time it
        // is seen committed.
        let mut recorded: BTreeMap<(u64, String), u64> = BTreeMap::new();
        for _ in 0..120 {
            w.run_for(SimDuration::from_millis(2));
            for (k, d) in committed_digests(&w, "pp") {
                recorded.entry(k).or_insert(d);
            }
            if w.job_finished("pp") {
                break;
            }
        }

        // (c) the world quiesces: every started operation settles.
        prop_assert!(
            w.run_until_pred(50_000_000, |w| !w.job_busy("pp")),
            "operations must settle (crash/timeout/abort), not hang",
        );

        // (a) every epoch ever seen committed is either pruned away whole
        // or still committed, readable, and byte-identical.
        let store = w.store("pp");
        for ((e, pod), d) in &recorded {
            if !store.is_committed(*e) {
                continue; // pruned by a later commit
            }
            let img = store.get_image(pod, *e);
            prop_assert!(img.is_some(), "committed epoch {} lost pod {}", e, pod);
            prop_assert_eq!(
                fnv(&img.unwrap()), *d,
                "committed epoch {} pod {} changed under faults", e, pod,
            );
        }

        // (b) every completed recovery rolled back to a committed epoch
        // whose stored images match the digests recorded at commit time.
        for r in w.recovery_reports() {
            if r.outcome != RecoveryOutcome::Recovered
                || r.cause != RecoveryCause::HeartbeatTimeout
            {
                continue;
            }
            let e = r.rollback_epoch.expect("recovered pass has a rollback epoch");
            for pod in store.pods_in_epoch(e) {
                let img = store.get_image(&pod, e);
                prop_assert!(img.is_some(), "rollback epoch {} unreadable", e);
                if let Some(d) = recorded.get(&(e, pod.clone())) {
                    prop_assert_eq!(fnv(&img.unwrap()), *d);
                }
            }
        }

        // Abort paths garbage-collect torn prefixes and half-written
        // epochs: nothing unreachable lingers in the chunk pool.
        prop_assert!(store.orphan_chunks().is_empty());
    }
}
