//! Replication suite: the k-way replicated checkpoint store under loss.
//!
//! Three properties must hold:
//!
//! (a) applying the operation log is deterministic and idempotent — the
//!     same op sequence drives every replica (and every independent store)
//!     to byte-identical trees, and re-running scrub over healthy replicas
//!     changes nothing;
//! (b) with k = 3, a pinned-seed fault plan may kill ANY two replica
//!     stores mid-checkpoint (crashes and mid-log-append torn writes
//!     included) and automatic recovery still restarts the job from the
//!     latest committed epoch with stored images byte-identical to a run
//!     whose replicas never faulted;
//! (c) scrub converges divergent replicas back to the writer's digest, for
//!     any corruption fraction and any victim replica.

use std::collections::BTreeMap;

use cruz_repro::cluster::{
    ClusterParams, CrashFault, FaultPlan, JobSpec, PodSpec, ProtocolPoint, RecoveryOutcome,
    ReplicaFault, ReplicaFaultKind, ReplicatedStore, StoreConfig, StoreOpPoint, World,
};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::cruz::replog::install_replica_faults;
use cruz_repro::cruz::store::PreparedPut;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::simos::fs::NetFs;
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;
use proptest::prelude::*;

// ---- core-level properties --------------------------------------------------

fn image(fill: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| fill.wrapping_add((i / 256) as u8))
        .collect()
}

fn dedup_cfg() -> StoreConfig {
    StoreConfig {
        chunk_bytes: 256,
        dedup: true,
        compress: true,
        threads: 1,
        replicas: 3,
    }
}

fn replica_digests(rs: &ReplicatedStore) -> Vec<u64> {
    (0..rs.replica_count()).map(|r| rs.tree_digest(r)).collect()
}

/// One interpreted op of the random program driving property (a).
fn apply_step(rs: &ReplicatedStore, cfg: &StoreConfig, next_epoch: &mut u64, fill: u8, kind: u8) {
    match kind {
        0 => {
            let raw = image(fill, 1024);
            let prep = rs.prepare_chunked(&raw, &[], cfg);
            rs.put_prepared("pod0", *next_epoch, PreparedPut::Chunked(prep));
            rs.commit(*next_epoch);
            *next_epoch += 1;
        }
        1 => {
            rs.put_prepared("pod0", *next_epoch, PreparedPut::Plain(image(fill, 700)));
            rs.commit(*next_epoch);
            *next_epoch += 1;
        }
        2 => {
            if let Some(e) = rs.latest_committed_epoch() {
                rs.discard_epoch(e);
            }
        }
        _ => {
            rs.gc_orphan_chunks();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property (a): any op program leaves all replicas of a store — and
    /// two independent stores fed the same program — byte-identical, and a
    /// scrub over the healthy result is a no-op.
    #[test]
    fn log_apply_is_deterministic_and_idempotent(
        program in proptest::collection::vec((any::<u8>(), 0u8..4), 1..10),
    ) {
        let cfg = dedup_cfg();
        let mut finals = Vec::new();
        for _ in 0..2 {
            let rs = ReplicatedStore::new(NetFs::new(), "job", 3).with_threads(1);
            let mut next_epoch = 1u64;
            for &(fill, kind) in &program {
                apply_step(&rs, &cfg, &mut next_epoch, fill, kind);
                let d = replica_digests(&rs);
                prop_assert_eq!(d[0], d[1], "replicas diverged after {:?}", (fill, kind));
                prop_assert_eq!(d[1], d[2], "replicas diverged after {:?}", (fill, kind));
            }
            let before = replica_digests(&rs);
            let rep = rs.scrub_and_repair();
            prop_assert!(rep.repaired.is_empty(), "healthy replicas need no repair");
            prop_assert!(rep.revived.is_empty());
            prop_assert_eq!(replica_digests(&rs), before.clone(), "scrub replay is idempotent");
            finals.push(before[0]);
        }
        prop_assert_eq!(finals[0], finals[1], "same program, same bytes");
    }

    /// Property (c): a torn-data fault on any victim replica, at any
    /// corruption fraction, diverges it; scrub converges every replica
    /// back to the writer's digest and the image still reads back exactly.
    #[test]
    fn scrub_converges_divergent_replicas_to_the_writer(
        fill in any::<u8>(),
        frac in 1u8..=254,
        victim in 0usize..3,
    ) {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        let base = image(fill, 1024);
        let prep = rs.prepare_chunked(&base, &[], &cfg);
        rs.put_prepared("pod0", 1, PreparedPut::Chunked(prep));
        rs.commit(1);
        install_replica_faults(&fs, &[ReplicaFault {
            replica: victim,
            point: StoreOpPoint::Put,
            nth: 0,
            kind: ReplicaFaultKind::TornChunk(frac),
        }]);
        let second = image(fill.wrapping_add(0x5b), 1024);
        let prep = rs.prepare_chunked(&second, &[], &cfg);
        rs.put_prepared("pod0", 2, PreparedPut::Chunked(prep));
        rs.commit(2);

        rs.scrub_and_repair();
        let d = replica_digests(&rs);
        prop_assert_eq!(d[0], d[1]);
        prop_assert_eq!(d[1], d[2]);
        prop_assert_eq!(rs.get_image("pod0", 2), Some(second));
        prop_assert_eq!(rs.get_image("pod0", 1), Some(base));
        prop_assert_eq!(rs.alive_replicas(), vec![0, 1, 2]);
    }
}

// ---- cluster-level acceptance -----------------------------------------------

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// Six nodes, chunked store replicated k = 3, recovery manager on.
fn replicated_params(seed: u64) -> ClusterParams {
    let mut p = ClusterParams {
        seed,
        store: StoreConfig {
            replicas: 3,
            ..StoreConfig::dedup()
        },
        ..ClusterParams::default()
    };
    p.recovery.enabled = true;
    p
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of every pod image in every currently committed epoch, read
/// through the quorum path.
fn committed_digests(w: &World, job: &str) -> BTreeMap<(u64, String), u64> {
    let store = w.store(job);
    let mut out = BTreeMap::new();
    for e in store.committed_epochs() {
        for pod in store.pods_in_epoch(e) {
            if let Some(img) = store.get_image(&pod, e) {
                out.insert((e, pod), fnv(&img));
            }
        }
    }
    out
}

/// Runs the acceptance scenario: clean committed baseline, then a node
/// crash mid-checkpoint plus the given replica faults, then automatic
/// recovery. Returns the committed digests after the world healed.
fn heal_run(replica_faults: &[ReplicaFault]) -> BTreeMap<(u64, String), u64> {
    let mut w = World::new(6, replicated_params(11));
    w.launch_job(&pingpong_spec(1200)).unwrap();
    w.run_for(SimDuration::from_millis(2));

    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op1, 20_000_000));
    assert!(w.store("pp").is_committed(op1));
    let baseline = committed_digests(&w, "pp");
    assert!(!baseline.is_empty());

    // Node 1 dies in the durability window; the replica stores die at the
    // same checkpoint's store traffic. Round-trip the plan through its
    // wire form so the CRZF v2 replica section drives the run.
    let mut plan = FaultPlan::none(5);
    plan.crashes.push(CrashFault {
        node: 1,
        point: ProtocolPoint::LocalDoneToDurable,
        nth: 0,
    });
    plan.replicas.extend_from_slice(replica_faults);
    let plan = FaultPlan::decode(&plan.encode()).unwrap();
    w.install_fault_plan(&plan);

    let _op2 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    let healed = w.run_until_pred(60_000_000, |w| {
        w.recovery_reports()
            .iter()
            .any(|r| r.outcome == RecoveryOutcome::Recovered)
    });
    assert!(healed, "recovery must survive the replica loss");

    let r = w
        .recovery_reports()
        .iter()
        .find(|r| r.outcome == RecoveryOutcome::Recovered)
        .unwrap()
        .clone();
    assert_eq!(r.rollback_epoch, Some(op1), "restart from last committed");
    if !replica_faults.is_empty() {
        assert!(
            !r.scrubbed_replicas.is_empty(),
            "the pre-rollback scrub must have rebuilt the lost replicas"
        );
    }

    let after = committed_digests(&w, "pp");
    assert_eq!(
        after.get(&(op1, "server".into())),
        baseline.get(&(op1, "server".into())),
        "rollback epoch unchanged by the heal"
    );
    after
}

/// Property (b): the ISSUE acceptance — k = 3, and a fault plan killing
/// ANY two of the three replica stores mid-checkpoint (one cold crash, one
/// mid-log-append torn write) still recovers from the latest committed
/// epoch with digests byte-identical to a run whose replicas never fault.
#[test]
fn any_two_of_three_replica_stores_can_die_mid_checkpoint() {
    let unfaulted = heal_run(&[]);
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let faults = [
            ReplicaFault {
                replica: a,
                point: StoreOpPoint::Put,
                nth: 0,
                kind: ReplicaFaultKind::Crash,
            },
            ReplicaFault {
                replica: b,
                point: StoreOpPoint::Put,
                nth: 0,
                kind: ReplicaFaultKind::TornLog(128),
            },
        ];
        let healed = heal_run(&faults);
        assert_eq!(
            healed, unfaulted,
            "subset ({a},{b}) dead: digests must match the unfaulted run"
        );
    }
}

/// Replication is invisible when nothing faults: a k = 3 run commits the
/// same image digests as a k = 1 run of the same world seed, and every
/// replica tree stays byte-identical throughout.
#[test]
fn unfaulted_replication_matches_the_plain_store() {
    let digests_for = |k: usize| {
        let mut p = replicated_params(7);
        p.store.replicas = k;
        let mut w = World::new(6, p);
        w.launch_job(&pingpong_spec(400)).unwrap();
        w.run_for(SimDuration::from_millis(2));
        let op = w
            .start_checkpoint("pp", ProtocolMode::Blocking, None)
            .unwrap();
        assert!(w.run_until_op(op, 20_000_000));
        let store = w.store("pp");
        assert!(store.is_committed(op));
        if k > 1 {
            let d: Vec<u64> = (0..k).map(|r| store.tree_digest(r)).collect();
            assert!(d.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
        }
        committed_digests(&w, "pp")
    };
    assert_eq!(digests_for(1), digests_for(3));
}
