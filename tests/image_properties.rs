//! Property tests on the checkpoint image codec: arbitrary images
//! round-trip exactly, and corruption is always detected.

use cruz_repro::simnet::addr::{IpAddr, MacAddr, SockAddr};
use cruz_repro::zap::image::{
    AreaImage, DescImage, GroupImage, ImageError, MacMode, PipeImage, PodImage, ProcImage,
    RunStateImage, SemImage, ShmImage, SockImage, TcpConnImage,
};
use proptest::prelude::*;

fn arb_sockaddr() -> impl Strategy<Value = SockAddr> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| SockAddr::new(IpAddr::from_bits(ip), port))
}

fn arb_conn() -> impl Strategy<Value = TcpConnImage> {
    (
        arb_sockaddr(),
        arb_sockaddr(),
        0u8..=9,
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(
            |(
                local,
                remote,
                state,
                snd_una,
                rcv_nxt,
                peer_window,
                nodelay,
                cork,
                inflight,
                unsent,
            )| {
                TcpConnImage {
                    local,
                    remote,
                    state,
                    snd_una,
                    rcv_nxt,
                    peer_window,
                    nodelay,
                    cork,
                    inflight,
                    unsent,
                }
            },
        )
}

fn arb_sock() -> impl Strategy<Value = SockImage> {
    prop_oneof![
        (
            arb_sockaddr(),
            1u32..16,
            proptest::collection::vec(
                (arb_conn(), proptest::collection::vec(any::<u8>(), 0..32)),
                0..3
            )
        )
            .prop_map(|(local, backlog, pending)| SockImage::Listen {
                local,
                backlog,
                pending
            }),
        (arb_conn(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(snap, alt_recv)| SockImage::Conn { snap, alt_recv }),
        (
            proptest::option::of(arb_sockaddr()),
            proptest::collection::vec(
                (
                    arb_sockaddr(),
                    proptest::collection::vec(any::<u8>(), 0..32)
                ),
                0..3
            )
        )
            .prop_map(|(bound, queue)| SockImage::Udp { bound, queue }),
        proptest::option::of(arb_sockaddr()).prop_map(|bound| SockImage::Fresh { bound }),
    ]
}

fn arb_desc() -> impl Strategy<Value = DescImage> {
    prop_oneof![
        Just(DescImage::Console),
        ("[a-z/]{1,12}", any::<u64>()).prop_map(|(path, offset)| DescImage::File { path, offset }),
        (0u32..4, any::<bool>())
            .prop_map(|(index, write_end)| DescImage::Pipe { index, write_end }),
        (0u32..4).prop_map(|index| DescImage::Socket { index }),
    ]
}

fn arb_group() -> impl Strategy<Value = GroupImage> {
    (
        proptest::collection::vec(
            (
                0u64..1u64 << 20,
                1u64..16,
                "[a-z]{1,8}",
                proptest::option::of(0u32..2),
            )
                .prop_map(|(page, pages, tag, shm_index)| AreaImage {
                    start: page * 4096,
                    len: pages * 4096,
                    tag,
                    shm_index,
                }),
            0..4,
        ),
        proptest::collection::vec(
            (
                0u64..1u64 << 20,
                proptest::collection::vec(any::<u8>(), 1..64),
            )
                .prop_map(|(page, data)| (page * 4096, data)),
            0..4,
        ),
        proptest::collection::vec((0u32..16, arb_desc()), 0..5),
    )
        .prop_map(|(areas, pages, fds)| GroupImage { areas, pages, fds })
}

fn arb_proc() -> impl Strategy<Value = ProcImage> {
    (
        1u32..100,
        0u32..100,
        0u32..4,
        proptest::array::uniform16(any::<u64>()),
        any::<u64>(),
        any::<bool>(),
        proptest::option::of((any::<u64>(), proptest::array::uniform5(any::<u64>()))),
        prop_oneof![
            Just(RunStateImage::Ready),
            any::<u64>().prop_map(RunStateImage::SleepUntil),
            any::<u64>().prop_map(RunStateImage::Zombie),
        ],
        proptest::collection::vec("[ -~]{0,20}", 0..3),
    )
        .prop_map(
            |(vpid, parent_vpid, group, regs, pc, halted, pending, run_state, console)| ProcImage {
                vpid,
                parent_vpid,
                group,
                regs,
                pc,
                halted,
                pending,
                run_state,
                console,
            },
        )
}

fn arb_image() -> impl Strategy<Value = PodImage> {
    (
        proptest::option::of(any::<u64>()),
        "[a-z0-9:]{1,16}",
        any::<u32>(),
        prop_oneof![
            proptest::array::uniform6(any::<u8>())
                .prop_map(|m| MacMode::Dedicated(MacAddr::new(m))),
            proptest::array::uniform6(any::<u8>()).prop_map(|m| MacMode::SharedPhysical {
                fake_mac: MacAddr::new(m)
            }),
        ],
        1u32..1000,
        proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(key, data)| ShmImage { key, data }),
            0..3,
        ),
        proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<i64>(), 1..4))
                .prop_map(|(key, values)| SemImage { key, values }),
            0..3,
        ),
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..64),
                0u32..4,
                0u32..4,
            )
                .prop_map(|(data, readers, writers)| PipeImage {
                    data,
                    readers,
                    writers,
                }),
            0..3,
        ),
        proptest::collection::vec(arb_sock(), 0..4),
        proptest::collection::vec(arb_group(), 0..3),
        proptest::collection::vec(arb_proc(), 0..4),
    )
        .prop_map(
            |(
                base_epoch,
                name,
                ip,
                mac_mode,
                next_vpid,
                shm,
                sems,
                pipes,
                sockets,
                groups,
                procs,
            )| PodImage {
                base_epoch,
                name,
                ip: IpAddr::from_bits(ip),
                mac_mode,
                next_vpid,
                shm,
                sems,
                pipes,
                sockets,
                groups,
                procs,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_images_round_trip(img in arb_image()) {
        let bytes = img.encode();
        let back = PodImage::decode(&bytes).expect("valid image decodes");
        prop_assert_eq!(img, back);
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        img in arb_image(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = img.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // Either the checksum catches it, or (if the flip is in the
        // checksum itself) the mismatch is still an error. A silent wrong
        // decode is the only forbidden outcome.
        match PodImage::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, img, "decode must not silently differ"),
        }
    }

    #[test]
    fn truncation_is_always_detected(img in arb_image(), cut_frac in 0.0f64..1.0) {
        let bytes = img.encode();
        let keep = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let r = PodImage::decode(&bytes[..keep]);
        prop_assert!(r.is_err(), "truncated image must not decode");
        let _ = matches!(r, Err(ImageError::Truncated) | Err(ImageError::BadChecksum));
    }
}
