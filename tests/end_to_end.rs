//! Whole-stack smoke tests through the umbrella crate: the public API a
//! downstream user sees.

use cruz_repro::cluster::{ClusterParams, JobSpec, PodSpec, RetryPolicy, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::workloads::slm::SlmConfig;
use cruz_repro::zap::image::MacMode;

fn pingpong_on(rounds: u64, coord: usize) -> (JobSpec, PingPongConfig) {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    let spec = JobSpec {
        name: "pp".into(),
        coordinator_node: coord,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::SharedPhysical {
                    fake_mac: MacAddr::from_index(2002),
                },
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    };
    (spec, cfg)
}

#[test]
fn checkpoint_chain_then_restart_from_middle_epoch() {
    let params = ClusterParams::default();
    let mut w = World::new(5, params);
    let (spec, _) = pingpong_on(800, 4);
    w.launch_job(&spec).unwrap();

    // Take three checkpoints at different execution points.
    let mut epochs = Vec::new();
    for _ in 0..3 {
        w.run_for(SimDuration::from_millis(4));
        let op = w
            .start_checkpoint("pp", ProtocolMode::Blocking, None)
            .unwrap();
        assert!(w.run_until_op(op, 10_000_000));
        epochs.push(op);
    }
    // All three are committed and restorable.
    let store = w.store("pp");
    assert_eq!(store.committed_epochs(), epochs);

    // Crash and restart from the *middle* epoch, not the newest.
    w.crash_node(0);
    w.crash_node(1);
    let rs = w
        .start_restart(
            "pp",
            epochs[1],
            &[("server".into(), 2), ("client".into(), 3)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(rs, 10_000_000));
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn double_restart_of_the_same_epoch() {
    // Restore, crash again, restore the same epoch again elsewhere: images
    // are immutable, so this must work repeatedly.
    let mut w = World::new(7, ClusterParams::default());
    let (spec, _) = pingpong_on(500, 6);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(6));
    let ck = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(ck, 10_000_000));

    w.crash_node(0);
    w.crash_node(1);
    let r1 = w
        .start_restart(
            "pp",
            ck,
            &[("server".into(), 2), ("client".into(), 3)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(r1, 10_000_000));
    w.run_for(SimDuration::from_millis(10));

    w.crash_node(2);
    w.crash_node(3);
    let r2 = w
        .start_restart(
            "pp",
            ck,
            &[("server".into(), 4), ("client".into(), 5)],
            ProtocolMode::Blocking,
        )
        .unwrap();
    assert!(w.run_until_op(r2, 10_000_000));
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn colocated_pods_checkpoint_together() {
    // Both pods of the job on ONE node: loopback TCP, one agent, the
    // degenerate single-agent protocol.
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds: 300,
    };
    let spec = JobSpec {
        name: "pp".into(),
        coordinator_node: 1,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 0,
                programs: vec![cfg.client_program()],
            },
        ],
    };
    let mut w = World::new(2, ClusterParams::default());
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(3));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    assert!(w.run_until_op(op, 10_000_000));
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
}

#[test]
fn frame_loss_does_not_break_checkpointing() {
    // A lossy fabric: TCP absorbs the loss; the coordination datagrams are
    // unreliable, so give the checkpoint a generous completion budget but
    // require the *application* to stay correct regardless.
    let mut w = World::new(
        3,
        ClusterParams {
            frame_loss: 0.02,
            ctl_retry: Some(RetryPolicy::fixed(SimDuration::from_millis(100), 16)),
            ..ClusterParams::default()
        },
    );
    let (spec, _) = pingpong_on(300, 2);
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(10));
    let op = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .unwrap();
    let completed = w.run_until_op(op, 20_000_000);
    // With retransmission the operation always completes, and the
    // application stays correct regardless of what the fabric dropped.
    assert!(completed, "retry-driven control plane completes under loss");
    assert!(w.run_until_pred(100_000_000, |w| w.job_finished("pp")));
    assert_eq!(w.pod_exit_code("pp", "server", 1), Some(0));
    assert_eq!(w.pod_exit_code("pp", "client", 1), Some(0));
    let _ = completed;
}

#[test]
fn slm_survives_migration_of_one_rank_mid_run() {
    let slm = SlmConfig {
        ranks: 3,
        state_bytes: 512 * 1024,
        iters: 60,
        compute_ns: 2_000_000,
        halo_bytes: 2048,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(5, ClusterParams::default());
    w.launch_job(&slm.job_spec("slm", 4)).unwrap();
    w.run_for(SimDuration::from_millis(40));
    // Move rank1 (which has live connections to both neighbours).
    w.migrate_pod("slm", "rank1", 3).unwrap();
    assert!(w.run_until_pred(100_000_000, |w| w.job_finished("slm")));
    for r in 0..3 {
        assert_eq!(w.pod_exit_code("slm", &format!("rank{r}"), 1), Some(0));
    }
    assert_eq!(w.job("slm").unwrap().placement("rank1").unwrap().node, 3);
}
