//! Twin-path property tests for the hot-path optimization pass: every
//! optimized kernel must be *extensionally identical* to the reference
//! implementation it replaced, under arbitrary inputs and arbitrary
//! page-write races.
//!
//! * the word-unrolled FNV fold vs the byte-serial fold;
//! * the scratch-reusing chunk codec vs fresh-allocation encode (including
//!   decode round-trips, which exercise the decoded-length preallocation);
//! * the zero-page shortcut vs the slow path;
//! * the packed-key event queue vs the two-field reference queue;
//! * the page-digest-cached `prepare_chunked_hinted` vs `prepare_chunked`
//!   across multi-epoch histories with arbitrary rewrites and false-dirty
//!   hints.

use bench::hotpath::{queue_optimized_churn, queue_reference_churn, RefQueue};
use cruz_repro::cruz::chunk::{self, ChunkId, CodecScratch};
use cruz_repro::cruz::pagecache::{DigestCache, PageHint};
use cruz_repro::cruz::store::{CheckpointStore, PreparedPut, StoreConfig};
use cruz_repro::des::digest;
use cruz_repro::des::{EventQueue, SimTime};
use cruz_repro::simos::fs::NetFs;
use proptest::prelude::*;

proptest! {
    /// The unrolled fold is bit-identical to the byte-serial reference for
    /// any data and any starting state.
    #[test]
    fn unrolled_fold_matches_bytewise(
        h in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        prop_assert_eq!(digest::fold(h, &data), digest::fold_bytewise(h, &data));
    }

    /// One scratch reused across a whole sequence of chunks produces the
    /// same container bytes as fresh allocations, and every container
    /// decodes back to the original bytes (through the decoded-length
    /// preallocation path).
    #[test]
    fn scratch_codec_matches_fresh_alloc(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..2048), 1..12),
        compress in any::<bool>(),
    ) {
        let mut scratch = CodecScratch::new();
        for data in &chunks {
            let reference = chunk::encode_chunk(data, compress);
            let scratched = chunk::encode_chunk_with(data, compress, &mut scratch);
            prop_assert_eq!(&reference, &scratched);
            prop_assert_eq!(&chunk::decode_chunk(&scratched).unwrap(), data);
        }
    }

    /// Highly repetitive inputs (the codec's best case, where stale scratch
    /// entries would be most tempting to reuse) also match across calls.
    #[test]
    fn scratch_codec_matches_on_repetitive_data(
        byte in any::<u8>(),
        len in 0usize..4096,
        period in 1usize..16,
    ) {
        let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add((i % period) as u8)).collect();
        let mut scratch = CodecScratch::new();
        // Twice through the same scratch: the second call sees a table
        // populated by the first and must still ignore every stale entry.
        for _ in 0..2 {
            prop_assert_eq!(
                chunk::encode_chunk(&data, true),
                chunk::encode_chunk_with(&data, true, &mut scratch)
            );
        }
    }

    /// The zero-page constants agree with the slow path, and the detector
    /// accepts exactly the all-zero page.
    #[test]
    fn zero_page_shortcut_is_exact(
        poke in proptest::option::of((0usize..4096, 1u8..=255)),
    ) {
        let mut page = vec![0u8; 4096];
        if let Some((i, b)) = poke {
            page[i] = b;
        }
        prop_assert_eq!(chunk::is_zero_page(&page), poke.is_none());
        if poke.is_none() {
            prop_assert_eq!(chunk::zero_page_id(), ChunkId::of(&page));
            for compress in [false, true] {
                prop_assert_eq!(
                    chunk::zero_page_encoded(compress),
                    &chunk::encode_chunk(&page, compress)[..]
                );
            }
        }
    }

    /// The packed-key queue delivers the exact sequence the two-field
    /// reference queue delivers, for arbitrary interleaved schedules.
    #[test]
    fn packed_queue_matches_reference_order(
        schedule in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..256),
    ) {
        prop_assert_eq!(
            queue_reference_churn(&schedule),
            queue_optimized_churn(&schedule)
        );
        // Plain drain as well (no interleaving), popping every event.
        let mut reference = RefQueue::new();
        let mut packed = EventQueue::new();
        for &(t, p) in &schedule {
            reference.push(SimTime::from_nanos(t), p);
            packed.push(SimTime::from_nanos(t), p);
        }
        loop {
            let (a, b) = (reference.pop(), packed.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

/// One epoch of the synthetic pod history: page contents plus which pages
/// the "guest" rewrote since the previous epoch.
#[derive(Debug, Clone)]
struct EpochPlan {
    /// Per page: `Some(seed)` rewrites the page with that seed's pattern.
    rewrites: Vec<Option<u8>>,
    /// Per page: claim dirty even if unchanged (false-dirty is always
    /// sound — it only costs recomputation).
    false_dirty: Vec<bool>,
    /// Header length for this epoch's serialization (metadata shifts the
    /// page cuts around between epochs).
    header_len: usize,
}

const PROP_PAGE: usize = 256;

fn page_pattern(seed: u8, index: usize) -> Vec<u8> {
    // A mix of constant, periodic, and "random-ish" pages, some zero.
    match seed % 4 {
        0 => vec![0u8; PROP_PAGE],
        1 => vec![seed; PROP_PAGE],
        2 => (0..PROP_PAGE).map(|i| seed.wrapping_add(i as u8)).collect(),
        _ => (0..PROP_PAGE)
            .map(|i| {
                (seed as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i * index) as u64) as u8
            })
            .collect(),
    }
}

fn arb_history(pages: usize) -> impl Strategy<Value = Vec<EpochPlan>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::option::of(any::<u8>()), pages..=pages),
            proptest::collection::vec(any::<bool>(), pages..=pages),
            0usize..48,
        )
            .prop_map(|(rewrites, false_dirty, header_len)| EpochPlan {
                rewrites,
                false_dirty,
                header_len,
            }),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Across arbitrary multi-epoch histories — pages rewritten or not,
    /// unchanged pages arbitrarily claimed dirty, metadata shifting the
    /// cuts — the cached prepare produces manifests and reconstructed
    /// images byte-identical to the reference path, with the cache
    /// contents surviving commits between epochs.
    #[test]
    fn cached_prepare_matches_reference_across_epochs(
        history in arb_history(6),
        chunk_bytes in prop_oneof![Just(64usize), Just(100), Just(256)],
        compress in any::<bool>(),
    ) {
        let pages = 6;
        let cfg = StoreConfig { chunk_bytes, dedup: true, compress, ..StoreConfig::default() };
        let fs = NetFs::new();
        let hinted_store = CheckpointStore::new(fs.clone(), "hinted");
        let reference_store = CheckpointStore::new(fs, "reference");
        let mut cache = DigestCache::new();
        let mut contents: Vec<Vec<u8>> = (0..pages).map(|i| page_pattern(7, i)).collect();

        for (epoch, plan) in history.iter().enumerate() {
            let mut clean = vec![false; pages];
            for (i, rw) in plan.rewrites.iter().enumerate() {
                match rw {
                    Some(seed) => contents[i] = page_pattern(*seed, i),
                    // Unchanged page: clean unless claimed false-dirty.
                    None => clean[i] = epoch > 0 && !plan.false_dirty[i],
                }
            }
            let mut raw = vec![0xEE; plan.header_len];
            let mut hints = Vec::with_capacity(pages);
            for (i, content) in contents.iter().enumerate() {
                hints.push(PageHint {
                    offset: raw.len(),
                    len: content.len(),
                    key: Some((0, i as u64 * 0x1000)),
                    clean: clean[i],
                });
                raw.extend_from_slice(content);
            }
            raw.extend_from_slice(&[0x77; 9]);
            let cuts: Vec<(usize, usize)> = hints.iter().map(|h| (h.offset, h.len)).collect();

            let hinted = hinted_store.prepare_chunked_hinted(&raw, &hints, &cfg, "pod", &mut cache);
            let reference = reference_store.prepare_chunked(&raw, &cuts, &cfg);
            prop_assert_eq!(hinted.manifest(), reference.manifest());
            prop_assert_eq!(hinted.novel_count(), reference.novel_count());
            prop_assert_eq!(hinted.new_bytes(), reference.new_bytes());

            // Commit both epochs so novelty accounting evolves, then prove
            // the hinted store reconstructs the exact image.
            let e = epoch as u64;
            hinted_store.put_prepared("pod", e, PreparedPut::Chunked(hinted));
            reference_store.put_prepared("pod", e, PreparedPut::Chunked(reference));
            let round = hinted_store.get_image("pod", e);
            prop_assert_eq!(round.as_deref(), Some(&raw[..]));
        }
    }
}
