//! Twin-path property tests for the parallel execution layer
//! (`cruz::parpool`): every pooled path must be *extensionally identical*
//! to the serial reference path at every thread count.
//!
//! * pooled `prepare_chunked` vs the verbatim `threads == 1` legacy loop,
//!   across arbitrary payloads, cut layouts, chunk sizes and codec
//!   settings;
//! * pooled restore (`get_image`) vs serial reassembly, including images
//!   persisted by a pooled prepare and read back serially (and vice
//!   versa — the store bytes are width-independent, so any combination
//!   round-trips);
//! * the page-digest-cached `prepare_chunked_hinted` at widths 1/2/4/8
//!   against the serial reference across multi-epoch histories with
//!   arbitrary rewrites, false-dirty claims and shifting metadata — with
//!   identical hit/miss accounting at every width;
//! * the pinned golden-trace fingerprint re-run with `CRUZ_THREADS=4`:
//!   the pool must be invisible in the event trace, the event count and
//!   the final clock.

use cruz_repro::cluster::{
    ClusterParams, JobSpec, PodSpec, StoreConfig as ClusterStoreConfig, World,
};
use cruz_repro::cruz::pagecache::{DigestCache, PageHint};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::cruz::store::{CheckpointStore, PreparedPut, StoreConfig};
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::simos::fs::NetFs;
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;
use proptest::prelude::*;

/// The pooled widths every twin-path case checks against the serial oracle.
const WIDTHS: &[usize] = &[2, 3, 4, 8];

/// Cut layout from a recipe of `(gap, len)` pairs: ascending, possibly
/// zero-width gaps of metadata between page payloads, truncated at the
/// payload end.
fn cuts_from(recipe: &[(usize, usize)], total: usize) -> Vec<(usize, usize)> {
    let mut cuts = Vec::new();
    let mut at = 0usize;
    for &(gap, len) in recipe {
        let start = at + gap;
        if len == 0 || start + len > total {
            break;
        }
        cuts.push((start, len));
        at = start + len;
    }
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled prepare produces byte-identical manifests and novelty
    /// accounting at every width, and the persisted image reconstructs
    /// identically through every pool width — regardless of which width
    /// wrote it.
    #[test]
    fn pooled_prepare_and_restore_match_serial(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        recipe in proptest::collection::vec((0usize..64, 1usize..1200), 0..8),
        chunk_bytes in prop_oneof![Just(64usize), Just(256), Just(1024)],
        compress in any::<bool>(),
        writer_width in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        let cuts = cuts_from(&recipe, data.len());
        let serial_cfg = StoreConfig { chunk_bytes, dedup: true, compress, threads: 1, replicas: 1 };
        let fs = NetFs::new();
        let store = CheckpointStore::new(fs.clone(), "j");
        let serial = store.prepare_chunked(&data, &cuts, &serial_cfg);
        for &t in WIDTHS {
            let cfg = StoreConfig { threads: t, ..serial_cfg };
            let pooled = store.prepare_chunked(&data, &cuts, &cfg);
            prop_assert_eq!(pooled.manifest(), serial.manifest(), "manifest at threads={}", t);
            prop_assert_eq!(pooled.novel_count(), serial.novel_count());
            prop_assert_eq!(pooled.new_bytes(), serial.new_bytes());
        }
        // Persist through an arbitrary width, read back through every
        // width: store bytes and reconstruction are width-independent.
        let put = store.prepare_chunked(&data, &cuts, &StoreConfig { threads: writer_width, ..serial_cfg });
        store.put_prepared("p", 1, PreparedPut::Chunked(put));
        for &t in [1usize, 2, 4, 8].iter() {
            let reader = CheckpointStore::new(fs.clone(), "j").with_threads(t);
            let round = reader.get_image("p", 1);
            prop_assert_eq!(round.as_deref(), Some(&data[..]), "restore at threads={}", t);
        }
    }
}

/// One epoch of the synthetic pod history (mirrors `hotpath_properties`):
/// page contents plus which pages the "guest" rewrote.
#[derive(Debug, Clone)]
struct EpochPlan {
    rewrites: Vec<Option<u8>>,
    false_dirty: Vec<bool>,
    header_len: usize,
}

const PROP_PAGE: usize = 256;

fn page_pattern(seed: u8, index: usize) -> Vec<u8> {
    match seed % 4 {
        0 => vec![0u8; PROP_PAGE],
        1 => vec![seed; PROP_PAGE],
        2 => (0..PROP_PAGE).map(|i| seed.wrapping_add(i as u8)).collect(),
        _ => (0..PROP_PAGE)
            .map(|i| {
                (seed as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i * index) as u64) as u8
            })
            .collect(),
    }
}

fn arb_history(pages: usize) -> impl Strategy<Value = Vec<EpochPlan>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::option::of(any::<u8>()), pages..=pages),
            proptest::collection::vec(any::<bool>(), pages..=pages),
            0usize..48,
        )
            .prop_map(|(rewrites, false_dirty, header_len)| EpochPlan {
                rewrites,
                false_dirty,
                header_len,
            }),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hinted (digest-cached) prepare at widths 1/2/4/8 — each width
    /// with its own store and cache, evolving independently over the same
    /// multi-epoch history — stays byte-identical to the serial reference
    /// path, with the same cache hit/miss counts at every width (the cache
    /// is a bytes-level contract, so the pool cannot change what hits).
    #[test]
    fn hinted_prepare_matches_serial_at_every_width(
        history in arb_history(6),
        chunk_bytes in prop_oneof![Just(64usize), Just(100), Just(256)],
        compress in any::<bool>(),
    ) {
        let pages = 6;
        let widths = [1usize, 2, 4, 8];
        let fs = NetFs::new();
        let reference_store = CheckpointStore::new(fs.clone(), "reference");
        let mut lanes: Vec<(StoreConfig, CheckpointStore, DigestCache)> = widths
            .iter()
            .map(|&t| {
                (
                    StoreConfig { chunk_bytes, dedup: true, compress, threads: t, replicas: 1 },
                    CheckpointStore::new(fs.clone(), format!("hinted{t}")),
                    DigestCache::new(),
                )
            })
            .collect();
        let mut contents: Vec<Vec<u8>> = (0..pages).map(|i| page_pattern(7, i)).collect();

        for (epoch, plan) in history.iter().enumerate() {
            let mut clean = vec![false; pages];
            for (i, rw) in plan.rewrites.iter().enumerate() {
                match rw {
                    Some(seed) => contents[i] = page_pattern(*seed, i),
                    None => clean[i] = epoch > 0 && !plan.false_dirty[i],
                }
            }
            let mut raw = vec![0xEE; plan.header_len];
            let mut hints = Vec::with_capacity(pages);
            for (i, content) in contents.iter().enumerate() {
                hints.push(PageHint {
                    offset: raw.len(),
                    len: content.len(),
                    key: Some((0, i as u64 * 0x1000)),
                    clean: clean[i],
                });
                raw.extend_from_slice(content);
            }
            raw.extend_from_slice(&[0x77; 9]);
            let cuts: Vec<(usize, usize)> = hints.iter().map(|h| (h.offset, h.len)).collect();

            let serial_cfg = StoreConfig { chunk_bytes, dedup: true, compress, threads: 1, replicas: 1 };
            let reference = reference_store.prepare_chunked(&raw, &cuts, &serial_cfg);
            let mut counts: Option<(u64, u64)> = None;
            for (cfg, store, cache) in lanes.iter_mut() {
                let hinted = store.prepare_chunked_hinted(&raw, &hints, cfg, "pod", cache);
                prop_assert_eq!(
                    hinted.manifest(), reference.manifest(),
                    "manifest at threads={} epoch={}", cfg.threads, epoch
                );
                prop_assert_eq!(hinted.novel_count(), reference.novel_count());
                store.put_prepared("pod", epoch as u64, PreparedPut::Chunked(hinted));
                let got = (cache.hits(), cache.misses());
                match counts {
                    None => counts = Some(got),
                    Some(want) => prop_assert_eq!(
                        got, want,
                        "cache accounting at threads={} epoch={}", cfg.threads, epoch
                    ),
                }
            }
            reference_store.put_prepared("pod", epoch as u64, PreparedPut::Chunked(reference));
            // Every lane reconstructs the exact image it persisted.
            for (cfg, store, _) in lanes.iter() {
                let round = store.get_image("pod", epoch as u64);
                prop_assert_eq!(
                    round.as_deref(),
                    Some(&raw[..]),
                    "round-trip at threads={} epoch={}", cfg.threads, epoch
                );
            }
        }
    }
}

// ---- golden trace under CRUZ_THREADS=4 ------------------------------------

fn pingpong_spec(rounds: u64) -> JobSpec {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds,
    };
    JobSpec {
        name: "pp".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    }
}

/// The `tests/golden_trace.rs` dedup scenario, re-run with the worker pool
/// forced to 4 threads via the environment (the cluster default leaves
/// `store.threads` on auto). The fingerprint constants below are the SAME
/// pinned values the serial golden test asserts: the pool must change
/// nothing observable — not the trace digest, not the event count, not a
/// nanosecond of simulated time.
#[test]
fn golden_dedup_trace_is_pinned_at_four_threads() {
    std::env::set_var("CRUZ_THREADS", "4");
    let mut w = World::new(
        5,
        ClusterParams {
            seed: 0xC0FFEE,
            store: ClusterStoreConfig::dedup_compress(),
            ..ClusterParams::default()
        },
    );
    w.launch_job(&pingpong_spec(200)).expect("job launches");
    w.run_for(SimDuration::from_millis(2));
    let op1 = w
        .start_checkpoint("pp", ProtocolMode::Blocking, None)
        .expect("first checkpoint starts");
    assert!(w.run_until_op(op1, 20_000_000), "first checkpoint finishes");
    w.run_for(SimDuration::from_millis(2));
    let op2 = w
        .start_checkpoint("pp", ProtocolMode::Optimized, None)
        .expect("second checkpoint starts");
    assert!(
        w.run_until_op(op2, 20_000_000),
        "second checkpoint finishes"
    );
    assert!(
        w.run_until_pred(100_000_000, |w| w.job_finished("pp")),
        "job runs to completion"
    );
    std::env::remove_var("CRUZ_THREADS");
    assert_eq!(
        (w.trace_digest(), w.events_processed(), w.now.as_nanos()),
        (902494253537125112u64, 2134u64, 209282169u64),
        "pooled capture perturbed the pinned golden dedup trace"
    );
}
