/root/repo/target/release/libdes.rlib: /root/repo/crates/des/src/lib.rs /root/repo/crates/des/src/queue.rs /root/repo/crates/des/src/rng.rs /root/repo/crates/des/src/time.rs
