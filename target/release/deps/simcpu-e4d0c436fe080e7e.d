/root/repo/target/release/deps/simcpu-e4d0c436fe080e7e.d: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

/root/repo/target/release/deps/libsimcpu-e4d0c436fe080e7e.rlib: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

/root/repo/target/release/deps/libsimcpu-e4d0c436fe080e7e.rmeta: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

crates/simcpu/src/lib.rs:
crates/simcpu/src/asm.rs:
crates/simcpu/src/cpu.rs:
crates/simcpu/src/isa.rs:
crates/simcpu/src/mem.rs:
