/root/repo/target/release/deps/zap-e789536c1791fb42.d: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

/root/repo/target/release/deps/libzap-e789536c1791fb42.rlib: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

/root/repo/target/release/deps/libzap-e789536c1791fb42.rmeta: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

crates/zap/src/lib.rs:
crates/zap/src/image.rs:
crates/zap/src/interpose.rs:
crates/zap/src/manager.rs:
crates/zap/src/pod.rs:
