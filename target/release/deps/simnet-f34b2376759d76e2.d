/root/repo/target/release/deps/simnet-f34b2376759d76e2.d: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

/root/repo/target/release/deps/libsimnet-f34b2376759d76e2.rlib: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

/root/repo/target/release/deps/libsimnet-f34b2376759d76e2.rmeta: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/addr.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/dhcp.rs:
crates/simnet/src/filter.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/link.rs:
crates/simnet/src/stack.rs:
crates/simnet/src/switch.rs:
crates/simnet/src/tcp/mod.rs:
crates/simnet/src/tcp/buffer.rs:
crates/simnet/src/tcp/rto.rs:
crates/simnet/src/tcp/segment.rs:
crates/simnet/src/tcp/seq.rs:
crates/simnet/src/tcp/tcb.rs:
crates/simnet/src/udp.rs:
