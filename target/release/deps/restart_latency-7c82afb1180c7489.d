/root/repo/target/release/deps/restart_latency-7c82afb1180c7489.d: crates/bench/src/bin/restart_latency.rs

/root/repo/target/release/deps/restart_latency-7c82afb1180c7489: crates/bench/src/bin/restart_latency.rs

crates/bench/src/bin/restart_latency.rs:
