/root/repo/target/release/deps/overhead-d70b83629453f24e.d: crates/bench/src/bin/overhead.rs

/root/repo/target/release/deps/overhead-d70b83629453f24e: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
