/root/repo/target/release/deps/bench-b4ae6c5c18715690.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libbench-b4ae6c5c18715690.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libbench-b4ae6c5c18715690.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/compare.rs:
crates/bench/src/dedup.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/overhead.rs:
crates/bench/src/util.rs:
