/root/repo/target/release/deps/cruz_lint-679840ff7d8c6faa.d: crates/lint/src/main.rs

/root/repo/target/release/deps/cruz_lint-679840ff7d8c6faa: crates/lint/src/main.rs

crates/lint/src/main.rs:
