/root/repo/target/release/deps/scalability-1b64dba012f01b88.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-1b64dba012f01b88: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
