/root/repo/target/release/deps/comm_window-57414d81154224e7.d: crates/bench/src/bin/comm_window.rs

/root/repo/target/release/deps/comm_window-57414d81154224e7: crates/bench/src/bin/comm_window.rs

crates/bench/src/bin/comm_window.rs:
