/root/repo/target/release/deps/baseline-22ce97405e863437.d: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

/root/repo/target/release/deps/libbaseline-22ce97405e863437.rlib: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

/root/repo/target/release/deps/libbaseline-22ce97405e863437.rmeta: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

crates/baseline/src/lib.rs:
crates/baseline/src/flush.rs:
crates/baseline/src/logging.rs:
