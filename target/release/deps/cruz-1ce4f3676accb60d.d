/root/repo/target/release/deps/cruz-1ce4f3676accb60d.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

/root/repo/target/release/deps/libcruz-1ce4f3676accb60d.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

/root/repo/target/release/deps/libcruz-1ce4f3676accb60d.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/chunk.rs:
crates/core/src/coordinator.rs:
crates/core/src/error.rs:
crates/core/src/proto.rs:
crates/core/src/store.rs:
