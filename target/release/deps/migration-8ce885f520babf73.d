/root/repo/target/release/deps/migration-8ce885f520babf73.d: crates/bench/src/bin/migration.rs

/root/repo/target/release/deps/migration-8ce885f520babf73: crates/bench/src/bin/migration.rs

crates/bench/src/bin/migration.rs:
