/root/repo/target/release/deps/fig5b-9d4fd58fa0424831.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-9d4fd58fa0424831: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
