/root/repo/target/release/deps/incremental_ckpt-097e4903a7d5ffda.d: crates/bench/src/bin/incremental_ckpt.rs

/root/repo/target/release/deps/incremental_ckpt-097e4903a7d5ffda: crates/bench/src/bin/incremental_ckpt.rs

crates/bench/src/bin/incremental_ckpt.rs:
