/root/repo/target/release/deps/store_dedup-d968141dd594541e.d: crates/bench/src/bin/store_dedup.rs

/root/repo/target/release/deps/store_dedup-d968141dd594541e: crates/bench/src/bin/store_dedup.rs

crates/bench/src/bin/store_dedup.rs:
