/root/repo/target/release/deps/fig5a-b36be2b4f774220b.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-b36be2b4f774220b: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
