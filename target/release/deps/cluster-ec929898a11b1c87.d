/root/repo/target/release/deps/cluster-ec929898a11b1c87.d: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

/root/repo/target/release/deps/libcluster-ec929898a11b1c87.rlib: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

/root/repo/target/release/deps/libcluster-ec929898a11b1c87.rmeta: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

crates/cluster/src/lib.rs:
crates/cluster/src/jobs.rs:
crates/cluster/src/params.rs:
crates/cluster/src/world.rs:
