/root/repo/target/release/deps/fig6-fa5dca7f6a4276c3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-fa5dca7f6a4276c3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
