/root/repo/target/release/deps/workloads-2d32a94b23b7826f.d: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

/root/repo/target/release/deps/libworkloads-2d32a94b23b7826f.rlib: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

/root/repo/target/release/deps/libworkloads-2d32a94b23b7826f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

crates/workloads/src/lib.rs:
crates/workloads/src/allreduce.rs:
crates/workloads/src/common.rs:
crates/workloads/src/compute.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/slm.rs:
crates/workloads/src/streaming.rs:
