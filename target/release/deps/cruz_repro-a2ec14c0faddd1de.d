/root/repo/target/release/deps/cruz_repro-a2ec14c0faddd1de.d: src/lib.rs

/root/repo/target/release/deps/libcruz_repro-a2ec14c0faddd1de.rlib: src/lib.rs

/root/repo/target/release/deps/libcruz_repro-a2ec14c0faddd1de.rmeta: src/lib.rs

src/lib.rs:
