/root/repo/target/release/deps/ablation_optimized-1de2b58cdd457cf3.d: crates/bench/src/bin/ablation_optimized.rs

/root/repo/target/release/deps/ablation_optimized-1de2b58cdd457cf3: crates/bench/src/bin/ablation_optimized.rs

crates/bench/src/bin/ablation_optimized.rs:
