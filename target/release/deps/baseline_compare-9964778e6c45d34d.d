/root/repo/target/release/deps/baseline_compare-9964778e6c45d34d.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/release/deps/baseline_compare-9964778e6c45d34d: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
