/root/repo/target/release/cruz-lint: /root/repo/crates/lint/src/main.rs
