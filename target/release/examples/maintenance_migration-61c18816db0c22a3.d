/root/repo/target/release/examples/maintenance_migration-61c18816db0c22a3.d: examples/maintenance_migration.rs

/root/repo/target/release/examples/maintenance_migration-61c18816db0c22a3: examples/maintenance_migration.rs

examples/maintenance_migration.rs:
