/root/repo/target/release/examples/quickstart-96af46e035ffb8d2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-96af46e035ffb8d2: examples/quickstart.rs

examples/quickstart.rs:
