/root/repo/target/release/examples/grid_suspend_resume-ba332ab17445a9c3.d: examples/grid_suspend_resume.rs

/root/repo/target/release/examples/grid_suspend_resume-ba332ab17445a9c3: examples/grid_suspend_resume.rs

examples/grid_suspend_resume.rs:
