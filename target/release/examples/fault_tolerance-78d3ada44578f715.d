/root/repo/target/release/examples/fault_tolerance-78d3ada44578f715.d: examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-78d3ada44578f715: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
