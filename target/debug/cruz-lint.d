/root/repo/target/debug/cruz-lint: /root/repo/crates/lint/src/main.rs
