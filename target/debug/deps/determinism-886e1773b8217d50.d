/root/repo/target/debug/deps/determinism-886e1773b8217d50.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-886e1773b8217d50: tests/determinism.rs

tests/determinism.rs:
