/root/repo/target/debug/deps/comm_window-7c8389e5128f9e66.d: crates/bench/src/bin/comm_window.rs

/root/repo/target/debug/deps/comm_window-7c8389e5128f9e66: crates/bench/src/bin/comm_window.rs

crates/bench/src/bin/comm_window.rs:
