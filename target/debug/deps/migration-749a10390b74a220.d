/root/repo/target/debug/deps/migration-749a10390b74a220.d: crates/bench/src/bin/migration.rs

/root/repo/target/debug/deps/migration-749a10390b74a220: crates/bench/src/bin/migration.rs

crates/bench/src/bin/migration.rs:
