/root/repo/target/debug/deps/fig6-8dc181a55ed1bb31.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8dc181a55ed1bb31: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
