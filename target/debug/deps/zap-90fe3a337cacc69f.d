/root/repo/target/debug/deps/zap-90fe3a337cacc69f.d: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

/root/repo/target/debug/deps/libzap-90fe3a337cacc69f.rlib: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

/root/repo/target/debug/deps/libzap-90fe3a337cacc69f.rmeta: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

crates/zap/src/lib.rs:
crates/zap/src/image.rs:
crates/zap/src/interpose.rs:
crates/zap/src/manager.rs:
crates/zap/src/pod.rs:
