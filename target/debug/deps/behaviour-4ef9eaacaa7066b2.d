/root/repo/target/debug/deps/behaviour-4ef9eaacaa7066b2.d: crates/workloads/tests/behaviour.rs

/root/repo/target/debug/deps/behaviour-4ef9eaacaa7066b2: crates/workloads/tests/behaviour.rs

crates/workloads/tests/behaviour.rs:
