/root/repo/target/debug/deps/cruz_repro-86005b13bfaa8d63.d: src/lib.rs

/root/repo/target/debug/deps/libcruz_repro-86005b13bfaa8d63.rlib: src/lib.rs

/root/repo/target/debug/deps/libcruz_repro-86005b13bfaa8d63.rmeta: src/lib.rs

src/lib.rs:
