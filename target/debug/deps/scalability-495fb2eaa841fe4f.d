/root/repo/target/debug/deps/scalability-495fb2eaa841fe4f.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-495fb2eaa841fe4f: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
