/root/repo/target/debug/deps/baseline-82ff5f5147d8116d.d: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

/root/repo/target/debug/deps/libbaseline-82ff5f5147d8116d.rlib: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

/root/repo/target/debug/deps/libbaseline-82ff5f5147d8116d.rmeta: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

crates/baseline/src/lib.rs:
crates/baseline/src/flush.rs:
crates/baseline/src/logging.rs:
