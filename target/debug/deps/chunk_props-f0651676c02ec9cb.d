/root/repo/target/debug/deps/chunk_props-f0651676c02ec9cb.d: crates/core/tests/chunk_props.rs

/root/repo/target/debug/deps/chunk_props-f0651676c02ec9cb: crates/core/tests/chunk_props.rs

crates/core/tests/chunk_props.rs:
