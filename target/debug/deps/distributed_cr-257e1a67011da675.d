/root/repo/target/debug/deps/distributed_cr-257e1a67011da675.d: crates/cluster/tests/distributed_cr.rs

/root/repo/target/debug/deps/distributed_cr-257e1a67011da675: crates/cluster/tests/distributed_cr.rs

crates/cluster/tests/distributed_cr.rs:
