/root/repo/target/debug/deps/restart_latency-4193ce08f53b8dfa.d: crates/bench/src/bin/restart_latency.rs

/root/repo/target/debug/deps/restart_latency-4193ce08f53b8dfa: crates/bench/src/bin/restart_latency.rs

crates/bench/src/bin/restart_latency.rs:
