/root/repo/target/debug/deps/restart_latency-07e6c132d6917cbb.d: crates/bench/src/bin/restart_latency.rs

/root/repo/target/debug/deps/restart_latency-07e6c132d6917cbb: crates/bench/src/bin/restart_latency.rs

crates/bench/src/bin/restart_latency.rs:
