/root/repo/target/debug/deps/fig5b-4529d8d3a393b711.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-4529d8d3a393b711: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
