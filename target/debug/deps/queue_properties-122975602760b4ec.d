/root/repo/target/debug/deps/queue_properties-122975602760b4ec.d: crates/des/tests/queue_properties.rs

/root/repo/target/debug/deps/queue_properties-122975602760b4ec: crates/des/tests/queue_properties.rs

crates/des/tests/queue_properties.rs:
