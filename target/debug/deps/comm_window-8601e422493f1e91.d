/root/repo/target/debug/deps/comm_window-8601e422493f1e91.d: crates/bench/src/bin/comm_window.rs

/root/repo/target/debug/deps/comm_window-8601e422493f1e91: crates/bench/src/bin/comm_window.rs

crates/bench/src/bin/comm_window.rs:
