/root/repo/target/debug/deps/cruz_lint-6f1d5991caa6df60.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/cruz_lint-6f1d5991caa6df60: crates/lint/src/main.rs

crates/lint/src/main.rs:
