/root/repo/target/debug/deps/stack_integration-5cd02256ea976145.d: crates/simnet/tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-5cd02256ea976145: crates/simnet/tests/stack_integration.rs

crates/simnet/tests/stack_integration.rs:
