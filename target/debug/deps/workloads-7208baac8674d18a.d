/root/repo/target/debug/deps/workloads-7208baac8674d18a.d: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

/root/repo/target/debug/deps/workloads-7208baac8674d18a: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

crates/workloads/src/lib.rs:
crates/workloads/src/allreduce.rs:
crates/workloads/src/common.rs:
crates/workloads/src/compute.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/slm.rs:
crates/workloads/src/streaming.rs:
