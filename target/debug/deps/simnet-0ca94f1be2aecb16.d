/root/repo/target/debug/deps/simnet-0ca94f1be2aecb16.d: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

/root/repo/target/debug/deps/libsimnet-0ca94f1be2aecb16.rlib: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

/root/repo/target/debug/deps/libsimnet-0ca94f1be2aecb16.rmeta: crates/simnet/src/lib.rs crates/simnet/src/addr.rs crates/simnet/src/arp.rs crates/simnet/src/dhcp.rs crates/simnet/src/filter.rs crates/simnet/src/frame.rs crates/simnet/src/link.rs crates/simnet/src/stack.rs crates/simnet/src/switch.rs crates/simnet/src/tcp/mod.rs crates/simnet/src/tcp/buffer.rs crates/simnet/src/tcp/rto.rs crates/simnet/src/tcp/segment.rs crates/simnet/src/tcp/seq.rs crates/simnet/src/tcp/tcb.rs crates/simnet/src/udp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/addr.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/dhcp.rs:
crates/simnet/src/filter.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/link.rs:
crates/simnet/src/stack.rs:
crates/simnet/src/switch.rs:
crates/simnet/src/tcp/mod.rs:
crates/simnet/src/tcp/buffer.rs:
crates/simnet/src/tcp/rto.rs:
crates/simnet/src/tcp/segment.rs:
crates/simnet/src/tcp/seq.rs:
crates/simnet/src/tcp/tcb.rs:
crates/simnet/src/udp.rs:
