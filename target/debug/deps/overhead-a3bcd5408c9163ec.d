/root/repo/target/debug/deps/overhead-a3bcd5408c9163ec.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-a3bcd5408c9163ec: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
