/root/repo/target/debug/deps/cluster-578822c04104145f.d: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

/root/repo/target/debug/deps/libcluster-578822c04104145f.rlib: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

/root/repo/target/debug/deps/libcluster-578822c04104145f.rmeta: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

crates/cluster/src/lib.rs:
crates/cluster/src/jobs.rs:
crates/cluster/src/params.rs:
crates/cluster/src/world.rs:
