/root/repo/target/debug/deps/simos-f12435efceaa99f2.d: crates/simos/src/lib.rs crates/simos/src/disk.rs crates/simos/src/error.rs crates/simos/src/fd.rs crates/simos/src/fs.rs crates/simos/src/guest.rs crates/simos/src/kernel.rs crates/simos/src/mem.rs crates/simos/src/pipe.rs crates/simos/src/proc.rs crates/simos/src/program.rs crates/simos/src/sem.rs crates/simos/src/syscall.rs

/root/repo/target/debug/deps/simos-f12435efceaa99f2: crates/simos/src/lib.rs crates/simos/src/disk.rs crates/simos/src/error.rs crates/simos/src/fd.rs crates/simos/src/fs.rs crates/simos/src/guest.rs crates/simos/src/kernel.rs crates/simos/src/mem.rs crates/simos/src/pipe.rs crates/simos/src/proc.rs crates/simos/src/program.rs crates/simos/src/sem.rs crates/simos/src/syscall.rs

crates/simos/src/lib.rs:
crates/simos/src/disk.rs:
crates/simos/src/error.rs:
crates/simos/src/fd.rs:
crates/simos/src/fs.rs:
crates/simos/src/guest.rs:
crates/simos/src/kernel.rs:
crates/simos/src/mem.rs:
crates/simos/src/pipe.rs:
crates/simos/src/proc.rs:
crates/simos/src/program.rs:
crates/simos/src/sem.rs:
crates/simos/src/syscall.rs:
