/root/repo/target/debug/deps/store_dedup-a7d9870c8c88ceb4.d: crates/bench/src/bin/store_dedup.rs

/root/repo/target/debug/deps/store_dedup-a7d9870c8c88ceb4: crates/bench/src/bin/store_dedup.rs

crates/bench/src/bin/store_dedup.rs:
