/root/repo/target/debug/deps/incremental_ckpt-20e886bc8b1040ed.d: crates/bench/src/bin/incremental_ckpt.rs

/root/repo/target/debug/deps/incremental_ckpt-20e886bc8b1040ed: crates/bench/src/bin/incremental_ckpt.rs

crates/bench/src/bin/incremental_ckpt.rs:
