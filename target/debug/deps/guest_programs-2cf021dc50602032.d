/root/repo/target/debug/deps/guest_programs-2cf021dc50602032.d: crates/simos/tests/guest_programs.rs

/root/repo/target/debug/deps/guest_programs-2cf021dc50602032: crates/simos/tests/guest_programs.rs

crates/simos/tests/guest_programs.rs:
