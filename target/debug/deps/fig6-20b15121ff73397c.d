/root/repo/target/debug/deps/fig6-20b15121ff73397c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-20b15121ff73397c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
