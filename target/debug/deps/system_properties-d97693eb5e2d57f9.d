/root/repo/target/debug/deps/system_properties-d97693eb5e2d57f9.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-d97693eb5e2d57f9: tests/system_properties.rs

tests/system_properties.rs:
