/root/repo/target/debug/deps/checkpoint_restart-4327ad4c55a75553.d: crates/zap/tests/checkpoint_restart.rs

/root/repo/target/debug/deps/checkpoint_restart-4327ad4c55a75553: crates/zap/tests/checkpoint_restart.rs

crates/zap/tests/checkpoint_restart.rs:
