/root/repo/target/debug/deps/zap-0b651fa2f44ae8a5.d: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

/root/repo/target/debug/deps/zap-0b651fa2f44ae8a5: crates/zap/src/lib.rs crates/zap/src/image.rs crates/zap/src/interpose.rs crates/zap/src/manager.rs crates/zap/src/pod.rs

crates/zap/src/lib.rs:
crates/zap/src/image.rs:
crates/zap/src/interpose.rs:
crates/zap/src/manager.rs:
crates/zap/src/pod.rs:
