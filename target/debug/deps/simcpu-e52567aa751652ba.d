/root/repo/target/debug/deps/simcpu-e52567aa751652ba.d: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

/root/repo/target/debug/deps/libsimcpu-e52567aa751652ba.rlib: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

/root/repo/target/debug/deps/libsimcpu-e52567aa751652ba.rmeta: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

crates/simcpu/src/lib.rs:
crates/simcpu/src/asm.rs:
crates/simcpu/src/cpu.rs:
crates/simcpu/src/isa.rs:
crates/simcpu/src/mem.rs:
