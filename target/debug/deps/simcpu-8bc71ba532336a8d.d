/root/repo/target/debug/deps/simcpu-8bc71ba532336a8d.d: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

/root/repo/target/debug/deps/simcpu-8bc71ba532336a8d: crates/simcpu/src/lib.rs crates/simcpu/src/asm.rs crates/simcpu/src/cpu.rs crates/simcpu/src/isa.rs crates/simcpu/src/mem.rs

crates/simcpu/src/lib.rs:
crates/simcpu/src/asm.rs:
crates/simcpu/src/cpu.rs:
crates/simcpu/src/isa.rs:
crates/simcpu/src/mem.rs:
