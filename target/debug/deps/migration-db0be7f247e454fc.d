/root/repo/target/debug/deps/migration-db0be7f247e454fc.d: crates/bench/src/bin/migration.rs

/root/repo/target/debug/deps/migration-db0be7f247e454fc: crates/bench/src/bin/migration.rs

crates/bench/src/bin/migration.rs:
