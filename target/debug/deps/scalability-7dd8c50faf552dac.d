/root/repo/target/debug/deps/scalability-7dd8c50faf552dac.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-7dd8c50faf552dac: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
