/root/repo/target/debug/deps/cruz-8227a9621196dfea.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

/root/repo/target/debug/deps/cruz-8227a9621196dfea: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/chunk.rs:
crates/core/src/coordinator.rs:
crates/core/src/error.rs:
crates/core/src/proto.rs:
crates/core/src/store.rs:
