/root/repo/target/debug/deps/error_paths-4f653c8503d3fa09.d: crates/simos/tests/error_paths.rs

/root/repo/target/debug/deps/error_paths-4f653c8503d3fa09: crates/simos/tests/error_paths.rs

crates/simos/tests/error_paths.rs:
