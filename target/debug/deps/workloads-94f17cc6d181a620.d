/root/repo/target/debug/deps/workloads-94f17cc6d181a620.d: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

/root/repo/target/debug/deps/libworkloads-94f17cc6d181a620.rlib: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

/root/repo/target/debug/deps/libworkloads-94f17cc6d181a620.rmeta: crates/workloads/src/lib.rs crates/workloads/src/allreduce.rs crates/workloads/src/common.rs crates/workloads/src/compute.rs crates/workloads/src/pingpong.rs crates/workloads/src/slm.rs crates/workloads/src/streaming.rs

crates/workloads/src/lib.rs:
crates/workloads/src/allreduce.rs:
crates/workloads/src/common.rs:
crates/workloads/src/compute.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/slm.rs:
crates/workloads/src/streaming.rs:
