/root/repo/target/debug/deps/fig5b-7286873f50373ad7.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-7286873f50373ad7: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
