/root/repo/target/debug/deps/overhead-1041371b54ee5db7.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-1041371b54ee5db7: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
