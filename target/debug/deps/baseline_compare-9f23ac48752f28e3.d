/root/repo/target/debug/deps/baseline_compare-9f23ac48752f28e3.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/debug/deps/baseline_compare-9f23ac48752f28e3: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
