/root/repo/target/debug/deps/cluster-b997723326af2d0b.d: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

/root/repo/target/debug/deps/cluster-b997723326af2d0b: crates/cluster/src/lib.rs crates/cluster/src/jobs.rs crates/cluster/src/params.rs crates/cluster/src/world.rs

crates/cluster/src/lib.rs:
crates/cluster/src/jobs.rs:
crates/cluster/src/params.rs:
crates/cluster/src/world.rs:
