/root/repo/target/debug/deps/cruz-722950d358e6c099.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libcruz-722950d358e6c099.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libcruz-722950d358e6c099.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/chunk.rs crates/core/src/coordinator.rs crates/core/src/error.rs crates/core/src/proto.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/chunk.rs:
crates/core/src/coordinator.rs:
crates/core/src/error.rs:
crates/core/src/proto.rs:
crates/core/src/store.rs:
