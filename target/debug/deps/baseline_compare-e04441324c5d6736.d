/root/repo/target/debug/deps/baseline_compare-e04441324c5d6736.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/debug/deps/baseline_compare-e04441324c5d6736: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
