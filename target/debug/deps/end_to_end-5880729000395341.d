/root/repo/target/debug/deps/end_to_end-5880729000395341.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5880729000395341: tests/end_to_end.rs

tests/end_to_end.rs:
