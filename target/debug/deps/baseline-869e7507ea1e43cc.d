/root/repo/target/debug/deps/baseline-869e7507ea1e43cc.d: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

/root/repo/target/debug/deps/baseline-869e7507ea1e43cc: crates/baseline/src/lib.rs crates/baseline/src/flush.rs crates/baseline/src/logging.rs

crates/baseline/src/lib.rs:
crates/baseline/src/flush.rs:
crates/baseline/src/logging.rs:
