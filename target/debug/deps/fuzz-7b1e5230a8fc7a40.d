/root/repo/target/debug/deps/fuzz-7b1e5230a8fc7a40.d: crates/simcpu/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-7b1e5230a8fc7a40: crates/simcpu/tests/fuzz.rs

crates/simcpu/tests/fuzz.rs:
