/root/repo/target/debug/deps/ablation_optimized-c0a90ab839bbdc66.d: crates/bench/src/bin/ablation_optimized.rs

/root/repo/target/debug/deps/ablation_optimized-c0a90ab839bbdc66: crates/bench/src/bin/ablation_optimized.rs

crates/bench/src/bin/ablation_optimized.rs:
