/root/repo/target/debug/deps/fig5a-27f7272be2ca1207.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-27f7272be2ca1207: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
