/root/repo/target/debug/deps/incremental_ckpt-1d51f85904f41af4.d: crates/bench/src/bin/incremental_ckpt.rs

/root/repo/target/debug/deps/incremental_ckpt-1d51f85904f41af4: crates/bench/src/bin/incremental_ckpt.rs

crates/bench/src/bin/incremental_ckpt.rs:
