/root/repo/target/debug/deps/image_properties-41fc6e5faa7a81c3.d: tests/image_properties.rs

/root/repo/target/debug/deps/image_properties-41fc6e5faa7a81c3: tests/image_properties.rs

tests/image_properties.rs:
