/root/repo/target/debug/deps/fig5a-91bb261e607f1ad6.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-91bb261e607f1ad6: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
