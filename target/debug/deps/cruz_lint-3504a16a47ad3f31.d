/root/repo/target/debug/deps/cruz_lint-3504a16a47ad3f31.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/cruz_lint-3504a16a47ad3f31: crates/lint/src/main.rs

crates/lint/src/main.rs:
