/root/repo/target/debug/deps/ablation_optimized-4f2fe6a25ad4037d.d: crates/bench/src/bin/ablation_optimized.rs

/root/repo/target/debug/deps/ablation_optimized-4f2fe6a25ad4037d: crates/bench/src/bin/ablation_optimized.rs

crates/bench/src/bin/ablation_optimized.rs:
