/root/repo/target/debug/deps/bench-0a461aedfc95fa32.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libbench-0a461aedfc95fa32.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libbench-0a461aedfc95fa32.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/compare.rs crates/bench/src/dedup.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/overhead.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/compare.rs:
crates/bench/src/dedup.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/overhead.rs:
crates/bench/src/util.rs:
