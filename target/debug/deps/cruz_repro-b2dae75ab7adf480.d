/root/repo/target/debug/deps/cruz_repro-b2dae75ab7adf480.d: src/lib.rs

/root/repo/target/debug/deps/cruz_repro-b2dae75ab7adf480: src/lib.rs

src/lib.rs:
