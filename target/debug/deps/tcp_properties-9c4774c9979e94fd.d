/root/repo/target/debug/deps/tcp_properties-9c4774c9979e94fd.d: crates/simnet/tests/tcp_properties.rs

/root/repo/target/debug/deps/tcp_properties-9c4774c9979e94fd: crates/simnet/tests/tcp_properties.rs

crates/simnet/tests/tcp_properties.rs:
