/root/repo/target/debug/deps/des-b02b1b3b2c78428d.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

/root/repo/target/debug/deps/des-b02b1b3b2c78428d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/time.rs:
