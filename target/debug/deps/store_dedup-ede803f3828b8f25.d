/root/repo/target/debug/deps/store_dedup-ede803f3828b8f25.d: crates/bench/src/bin/store_dedup.rs

/root/repo/target/debug/deps/store_dedup-ede803f3828b8f25: crates/bench/src/bin/store_dedup.rs

crates/bench/src/bin/store_dedup.rs:
