/root/repo/target/debug/examples/grid_suspend_resume-790298b46c4bb3cd.d: examples/grid_suspend_resume.rs

/root/repo/target/debug/examples/grid_suspend_resume-790298b46c4bb3cd: examples/grid_suspend_resume.rs

examples/grid_suspend_resume.rs:
