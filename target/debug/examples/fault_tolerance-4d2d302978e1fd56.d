/root/repo/target/debug/examples/fault_tolerance-4d2d302978e1fd56.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-4d2d302978e1fd56: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
