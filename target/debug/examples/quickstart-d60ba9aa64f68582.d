/root/repo/target/debug/examples/quickstart-d60ba9aa64f68582.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d60ba9aa64f68582: examples/quickstart.rs

examples/quickstart.rs:
