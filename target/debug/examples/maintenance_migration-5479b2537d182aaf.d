/root/repo/target/debug/examples/maintenance_migration-5479b2537d182aaf.d: examples/maintenance_migration.rs

/root/repo/target/debug/examples/maintenance_migration-5479b2537d182aaf: examples/maintenance_migration.rs

examples/maintenance_migration.rs:
